"""Tests for the programmable parser state machine."""

import pytest

from repro.net.headers import IPPROTO_UDP, RaShimHeader, ip_to_int
from repro.net.packet import Packet
from repro.pisa.parser_engine import (
    ACCEPT,
    REJECT,
    FieldExtract,
    ParserSpec,
    ParserState,
)
from repro.pisa.programs import standard_parser
from repro.util.errors import PipelineError


def make_packet(shim=None, payload=b"pp"):
    return Packet.udp_packet(
        src_mac=0xA, dst_mac=0xB,
        src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int("10.0.0.2"),
        src_port=53, dst_port=5353, payload=payload, ra_shim=shim,
    )


class TestStandardParser:
    def test_parses_udp_packet(self):
        fields, headers, payload = standard_parser().parse(make_packet().encode())
        assert headers == ["eth", "ipv4", "udp"]
        assert fields["ipv4.src"] == ip_to_int("10.0.0.1")
        assert fields["udp.dst_port"] == 5353
        assert payload == b"pp"

    def test_parses_ra_shim(self):
        shim = RaShimHeader(flags=3, hop_count=2, body=b"body")
        fields, headers, payload = standard_parser().parse(
            make_packet(shim=shim).encode()
        )
        assert "ra" in headers
        assert fields["ra.flags"] == 3
        assert fields["ra.hop_count"] == 2
        # The shim body is left in the payload view (varlen tail).
        assert payload.startswith(b"body")

    def test_parses_tcp_packet(self):
        pkt = Packet.tcp_packet(1, 2, 3, 4, 80, 443, payload=b"xyz", flags=0x12)
        fields, headers, payload = standard_parser().parse(pkt.encode())
        assert headers == ["eth", "ipv4", "tcp"]
        assert fields["tcp.dst_port"] == 443
        assert payload == b"xyz"

    def test_non_ip_accepted_at_eth(self):
        from repro.net.headers import EthernetHeader

        raw = EthernetHeader(dst=1, src=2, ethertype=0x86DD).encode() + b"rest"
        fields, headers, payload = standard_parser().parse(raw)
        assert headers == ["eth"]
        assert payload == b"rest"

    def test_truncated_packet_rejected(self):
        wire = make_packet().encode()
        with pytest.raises(PipelineError, match="truncated"):
            standard_parser().parse(wire[:20])

    def test_field_values_match_packet_model(self):
        pkt = make_packet()
        fields, _, _ = standard_parser().parse(pkt.encode())
        assert fields["eth.dst"] == pkt.eth.dst
        assert fields["ipv4.ttl"] == pkt.ipv4.ttl
        assert fields["ipv4.protocol"] == IPPROTO_UDP


class TestParserSpecValidation:
    def test_duplicate_state_names_rejected(self):
        state = ParserState("s", "h", (FieldExtract("f", 8),))
        with pytest.raises(PipelineError, match="duplicate"):
            ParserSpec(states=(state, state), start="s")

    def test_unknown_start_rejected(self):
        state = ParserState("s", "h", (FieldExtract("f", 8),))
        with pytest.raises(PipelineError, match="start"):
            ParserSpec(states=(state,), start="ghost")

    def test_unknown_transition_rejected(self):
        state = ParserState(
            "s", "h", (FieldExtract("f", 8),),
            select_field="h.f", transitions=((1, "ghost"),),
        )
        with pytest.raises(PipelineError, match="unknown"):
            ParserSpec(states=(state,), start="s")

    def test_non_byte_aligned_header_rejected(self):
        state = ParserState("s", "h", (FieldExtract("f", 4),))
        spec = ParserSpec(states=(state,), start="s")
        with pytest.raises(PipelineError, match="byte-aligned"):
            spec.parse(b"\x00")

    def test_reject_state(self):
        state = ParserState(
            "s", "h", (FieldExtract("f", 8),),
            select_field="h.f", transitions=((0xFF, REJECT),), default_next=ACCEPT,
        )
        spec = ParserSpec(states=(state,), start="s")
        with pytest.raises(PipelineError, match="rejected"):
            spec.parse(b"\xff")
        fields, headers, _ = spec.parse(b"\x01")
        assert fields["h.f"] == 1

    def test_loop_guard(self):
        state = ParserState("s", "h", (FieldExtract("f", 8),), default_next="s")
        spec = ParserSpec(states=(state,), start="s")
        with pytest.raises(PipelineError, match="loop"):
            spec.parse(b"\x00" * 200)

    def test_zero_width_field_rejected(self):
        with pytest.raises(PipelineError):
            FieldExtract("f", 0)

    def test_describe_changes_with_structure(self):
        base = standard_parser()
        # Removing a transition must change the canonical description.
        altered_states = []
        for state in base.states:
            if state.name == "parse_udp":
                altered_states.append(
                    ParserState(
                        name=state.name, header=state.header, fields=state.fields,
                        select_field=None, transitions=(), default_next=ACCEPT,
                    )
                )
            else:
                altered_states.append(state)
        altered = ParserSpec(states=tuple(altered_states), start=base.start)
        assert base.describe() != altered.describe()

    def test_multibit_field_extraction(self):
        state = ParserState(
            "s", "h",
            (FieldExtract("hi", 4), FieldExtract("lo", 4), FieldExtract("word", 16)),
        )
        spec = ParserSpec(states=(state,), start="s")
        fields, _, _ = spec.parse(bytes([0xAB, 0x12, 0x34]))
        assert fields["h.hi"] == 0xA
        assert fields["h.lo"] == 0xB
        assert fields["h.word"] == 0x1234
