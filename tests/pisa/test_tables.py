"""Tests for match-action tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pisa.actions import ActionCall, drop_action, forward_action
from repro.pisa.tables import InstalledEntry, MatchKey, MatchKind, MatchTable
from repro.util.errors import PipelineError


def fwd(port):
    return ActionCall(action=forward_action(), params=(port,))


def default_drop():
    return ActionCall(action=drop_action(), params=())


class TestMatchKey:
    def test_exact(self):
        key = MatchKey(MatchKind.EXACT, value=5)
        assert key.matches(5)
        assert not key.matches(6)

    def test_lpm(self):
        key = MatchKey(MatchKind.LPM, value=0x0A000000, prefix_len=8)
        assert key.matches(0x0A123456)
        assert not key.matches(0x0B000000)

    def test_lpm_zero_prefix_matches_all(self):
        key = MatchKey(MatchKind.LPM, value=0, prefix_len=0)
        assert key.matches(0xFFFFFFFF)

    def test_ternary(self):
        key = MatchKey(MatchKind.TERNARY, value=0x80, mask=0xF0)
        assert key.matches(0x8F)
        assert not key.matches(0x70)

    def test_lpm_requires_prefix(self):
        with pytest.raises(PipelineError):
            MatchKey(MatchKind.LPM, value=0)

    def test_ternary_requires_mask(self):
        with pytest.raises(PipelineError):
            MatchKey(MatchKind.TERNARY, value=0)

    def test_prefix_out_of_range(self):
        with pytest.raises(PipelineError):
            MatchKey(MatchKind.LPM, value=0, prefix_len=33)

    def test_specificity(self):
        assert MatchKey(MatchKind.EXACT, value=1).specificity() == 32
        assert MatchKey(MatchKind.LPM, value=0, prefix_len=24).specificity() == 24
        assert MatchKey(MatchKind.TERNARY, value=0, mask=0xFF).specificity() == 8

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=32))
    def test_lpm_matches_own_prefix(self, value, prefix):
        key = MatchKey(MatchKind.LPM, value=value, prefix_len=prefix)
        assert key.matches(value)


class TestMatchTable:
    def test_exact_hit_and_miss(self):
        table = MatchTable("t", ["f"], default_drop())
        table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, 7),), fwd(3)))
        call, hit = table.lookup([7])
        assert hit and call.params == (3,)
        call, hit = table.lookup([8])
        assert not hit and call.action.name == "drop"

    def test_lpm_longest_prefix_wins(self):
        table = MatchTable("t", ["f"], default_drop())
        table.insert(InstalledEntry(
            (MatchKey(MatchKind.LPM, 0x0A000000, prefix_len=8),), fwd(1)))
        table.insert(InstalledEntry(
            (MatchKey(MatchKind.LPM, 0x0A0A0000, prefix_len=16),), fwd(2)))
        call, hit = table.lookup([0x0A0A0001])
        assert hit and call.params == (2,)
        call, hit = table.lookup([0x0A0B0001])
        assert hit and call.params == (1,)

    def test_ternary_priority_wins(self):
        table = MatchTable("t", ["f"], default_drop())
        table.insert(InstalledEntry(
            (MatchKey(MatchKind.TERNARY, 0, mask=0),), fwd(1), priority=1))
        table.insert(InstalledEntry(
            (MatchKey(MatchKind.TERNARY, 5, mask=0xFF),), fwd(2), priority=10))
        call, hit = table.lookup([5])
        assert call.params == (2,)
        call, hit = table.lookup([6])
        assert call.params == (1,)

    def test_multi_field_keys(self):
        table = MatchTable("t", ["a", "b"], default_drop())
        table.insert(InstalledEntry(
            (MatchKey(MatchKind.EXACT, 1), MatchKey(MatchKind.EXACT, 2)), fwd(9)))
        assert table.lookup([1, 2])[1]
        assert not table.lookup([1, 3])[1]

    def test_key_arity_checked(self):
        table = MatchTable("t", ["a", "b"], default_drop())
        with pytest.raises(PipelineError):
            table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, 1),), fwd(1)))
        with pytest.raises(PipelineError):
            table.lookup([1])

    def test_duplicate_exact_rejected(self):
        table = MatchTable("t", ["f"], default_drop())
        entry = InstalledEntry((MatchKey(MatchKind.EXACT, 1),), fwd(1))
        table.insert(entry)
        with pytest.raises(PipelineError, match="duplicate"):
            table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, 1),), fwd(2)))

    def test_capacity_enforced(self):
        table = MatchTable("t", ["f"], default_drop(), max_entries=2)
        for i in range(2):
            table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, i),), fwd(1)))
        with pytest.raises(PipelineError, match="full"):
            table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, 99),), fwd(1)))

    def test_remove(self):
        table = MatchTable("t", ["f"], default_drop())
        entry = InstalledEntry((MatchKey(MatchKind.EXACT, 1),), fwd(1))
        table.insert(entry)
        assert table.remove(entry)
        assert not table.lookup([1])[1]
        assert not table.remove(entry)

    def test_clear(self):
        table = MatchTable("t", ["f"], default_drop())
        table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, 1),), fwd(1)))
        table.clear()
        assert len(table) == 0
        assert not table.lookup([1])[1]

    def test_exact_beats_ternary_at_equal_priority(self):
        table = MatchTable("t", ["f"], default_drop())
        table.insert(InstalledEntry(
            (MatchKey(MatchKind.TERNARY, 0, mask=0),), fwd(1), priority=0))
        table.insert(InstalledEntry(
            (MatchKey(MatchKind.EXACT, 5),), fwd(2), priority=0))
        call, _ = table.lookup([5])
        assert call.params == (2,)  # exact is maximally specific

    def test_measure_content_order_independent(self):
        def build(order):
            table = MatchTable("t", ["f"], default_drop())
            for i in order:
                table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, i),), fwd(i)))
            return table.measure_content()

        assert build([1, 2, 3]) == build([3, 1, 2])

    def test_measure_content_detects_change(self):
        table = MatchTable("t", ["f"], default_drop())
        table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, 1),), fwd(1)))
        before = dict(table.measure_content())
        table.insert(InstalledEntry((MatchKey(MatchKind.EXACT, 2),), fwd(2)))
        assert table.measure_content() != before
