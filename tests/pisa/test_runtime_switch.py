"""Tests for the P4Runtime API and the simulator-bound switch."""

import pytest

from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.pisa.programs import (
    athens_rogue_program,
    firewall_program,
    ipv4_forwarding_program,
)
from repro.pisa.runtime import P4Runtime, TableEntry
from repro.pisa.switch import PisaSwitch
from repro.pisa.tables import MatchKey, MatchKind
from repro.util.errors import PipelineError


class TestArbitration:
    def test_first_controller_becomes_master(self):
        runtime = P4Runtime("s1")
        assert runtime.arbitrate("ctl-a", 1)
        assert runtime.master == "ctl-a"

    def test_higher_election_id_takes_over(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl-a", 1)
        assert runtime.arbitrate("rogue", 2)
        assert runtime.master == "rogue"

    def test_lower_election_id_rejected(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl-a", 5)
        assert not runtime.arbitrate("late", 3)
        assert runtime.master == "ctl-a"

    def test_non_master_writes_rejected(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl-a", 1)
        with pytest.raises(PipelineError, match="not master"):
            runtime.set_forwarding_pipeline_config("intruder", ipv4_forwarding_program())

    def test_invalid_election_id(self):
        with pytest.raises(PipelineError):
            P4Runtime("s1").arbitrate("x", 0)


class TestPipelineConfig:
    def test_install_and_read_back(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl", 1)
        program = firewall_program()
        runtime.set_forwarding_pipeline_config("ctl", program)
        assert runtime.get_forwarding_pipeline_config() is program
        assert runtime.config_history == ["firewall_v5"]

    def test_swap_clears_entries(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl", 1)
        runtime.set_forwarding_pipeline_config("ctl", ipv4_forwarding_program())
        runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, 0, prefix_len=0),),
            action="forward", params=(1,),
        ))
        runtime.set_forwarding_pipeline_config("ctl", ipv4_forwarding_program())
        assert runtime.read_entries("ipv4_lpm") == []

    def test_write_requires_pipeline(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl", 1)
        with pytest.raises(PipelineError, match="no forwarding pipeline"):
            runtime.write("ctl", TableEntry(
                table="t", keys=(), action="drop",
            ))

    def test_disallowed_action_rejected(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl", 1)
        runtime.set_forwarding_pipeline_config("ctl", ipv4_forwarding_program())
        with pytest.raises(PipelineError, match="not allowed"):
            runtime.write("ctl", TableEntry(
                table="ipv4_lpm",
                keys=(MatchKey(MatchKind.LPM, 0, prefix_len=0),),
                action="to_cpu",
            ))

    def test_delete_entry(self):
        runtime = P4Runtime("s1")
        runtime.arbitrate("ctl", 1)
        runtime.set_forwarding_pipeline_config("ctl", ipv4_forwarding_program())
        entry = TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, 0, prefix_len=0),),
            action="forward", params=(1,),
        )
        runtime.write("ctl", entry)
        assert runtime.delete("ctl", entry)
        assert runtime.read_entries("ipv4_lpm") == []

    def test_digest_subscription(self):
        runtime = P4Runtime("s1")
        seen = []
        runtime.subscribe_digest("packet_in", seen.append)
        count = runtime.emit_digest("packet_in", {"port": 3})
        assert count == 1
        assert seen[0].payload == {"port": 3}
        assert runtime.emit_digest("other", {}) == 0


def build_forwarding_network():
    """h-src — s1 — h-dst with an installed router program."""
    topo = Topology()
    topo.add_node("h-src", kind="host")
    topo.add_node("h-dst", kind="host")
    topo.add_node("s1")
    topo.add_link("h-src", 1, "s1", 1)
    topo.add_link("s1", 2, "h-dst", 1)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    switch = PisaSwitch("s1")
    sim.bind(src)
    sim.bind(dst)
    sim.bind(switch)
    switch.runtime.arbitrate("ctl", 1)
    switch.runtime.set_forwarding_pipeline_config("ctl", ipv4_forwarding_program())
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    return sim, src, dst, switch


class TestPisaSwitchInSimulator:
    def test_forwarding_end_to_end(self):
        sim, src, dst, switch = build_forwarding_network()
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
                     payload=b"hi")
        sim.run()
        assert len(dst.received_packets) == 1
        assert switch.packets_processed == 1

    def test_unrouted_dropped(self):
        sim, src, dst, switch = build_forwarding_network()
        src.send_udp(dst_mac=dst.mac, dst_ip=ip_to_int("172.16.0.1"),
                     src_port=1, dst_port=2)
        sim.run()
        assert dst.received_packets == []
        assert switch.packets_dropped == 1

    def test_no_pipeline_drops(self):
        topo = Topology()
        topo.add_node("h", kind="host")
        topo.add_node("s1")
        topo.add_link("h", 1, "s1", 1)
        sim = Simulator(topo)
        host = Host("h", mac=1, ip=2)
        switch = PisaSwitch("s1")
        sim.bind(host)
        sim.bind(switch)
        host.send_udp(dst_mac=9, dst_ip=9, src_port=1, dst_port=2)
        sim.run()
        assert switch.packets_dropped == 1

    def test_rogue_clone_exfiltrates(self):
        """The Athens scenario: the rogue program duplicates traffic."""
        topo = Topology()
        for name, kind in [("h-src", "host"), ("h-dst", "host"),
                           ("h-spy", "host"), ("s1", "switch")]:
            topo.add_node(name, kind=kind)
        topo.add_link("h-src", 1, "s1", 1)
        topo.add_link("s1", 2, "h-dst", 1)
        topo.add_link("s1", 3, "h-spy", 1)
        sim = Simulator(topo)
        src = Host("h-src", mac=1, ip=ip_to_int("10.0.0.1"))
        dst = Host("h-dst", mac=2, ip=ip_to_int("10.0.1.1"))
        spy = Host("h-spy", mac=3, ip=ip_to_int("10.9.9.9"))
        switch = PisaSwitch("s1")
        for node in (src, dst, spy, switch):
            sim.bind(node)
        switch.runtime.arbitrate("attacker", 99)
        switch.runtime.set_forwarding_pipeline_config("attacker", athens_rogue_program())
        switch.runtime.write("attacker", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switch.runtime.write("attacker", TableEntry(
            table="intercept",
            keys=(MatchKey(MatchKind.TERNARY, ip_to_int("10.0.0.1"),
                           mask=0xFFFFFFFF),),
            action="clone_to", params=(3,), priority=1,
        ))
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
                     payload=b"secret call")
        sim.run()
        # Traffic arrives normally AND is duplicated to the spy.
        assert len(dst.received_packets) == 1
        assert len(spy.received_packets) == 1
        assert spy.received_packets[0].payload == b"secret call"
