"""Tests for the pipeline, registers, program objects and actions."""

import pytest

from repro.net.headers import ip_to_int
from repro.net.packet import Packet
from repro.pisa.actions import Action, ActionCall, Primitive, Step
from repro.pisa.pipeline import CPU_PORT, DROP_PORT, PacketContext, Pipeline
from repro.pisa.programs import (
    athens_rogue_program,
    firewall_program,
    ipv4_forwarding_program,
    l2_forwarding_program,
    scanner_program,
)
from repro.pisa.registers import Counter, Meter, Register
from repro.pisa.tables import MatchKey, MatchKind
from repro.pisa.runtime import P4Runtime, TableEntry
from repro.util.errors import PipelineError


def make_packet(dst="10.0.1.5"):
    return Packet.udp_packet(
        src_mac=1, dst_mac=2,
        src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int(dst),
        src_port=1000, dst_port=2000, payload=b"data",
    )


def routed_pipeline():
    """An ipv4 router with 10.0.1.0/24 -> port 2."""
    pipeline = Pipeline(ipv4_forwarding_program())
    runtime = P4Runtime("s1")
    runtime.arbitrate("ctl", 1)
    runtime.pipeline = pipeline
    runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    return pipeline


class TestPipelineExecution:
    def test_lpm_forwarding(self):
        pipeline = routed_pipeline()
        ctx = PacketContext.from_packet(make_packet(), ingress_port=1)
        pipeline.process(ctx)
        assert ctx.egress_spec == 2

    def test_default_drop_on_miss(self):
        pipeline = routed_pipeline()
        ctx = PacketContext.from_packet(make_packet(dst="192.168.0.1"), 1)
        pipeline.process(ctx)
        assert ctx.egress_spec == DROP_PORT

    def test_cost_accumulates(self):
        pipeline = routed_pipeline()
        ctx = PacketContext.from_packet(make_packet(), 1)
        pipeline.process(ctx)
        assert ctx.cost > 0

    def test_trace_records_tables(self):
        pipeline = routed_pipeline()
        ctx = PacketContext.from_packet(make_packet(), 1)
        pipeline.process(ctx)
        assert ctx.trace == ["ipv4_lpm:hit->forward"]

    def test_firewall_drop_beats_forwarding(self):
        pipeline = Pipeline(firewall_program())
        runtime = P4Runtime("fw")
        runtime.arbitrate("ctl", 1)
        runtime.pipeline = pipeline
        runtime.write("ctl", TableEntry(
            table="acl",
            keys=(
                MatchKey(MatchKind.TERNARY, ip_to_int("10.0.0.1"), mask=0xFFFFFFFF),
                MatchKey(MatchKind.TERNARY, 0, mask=0),
                MatchKey(MatchKind.TERNARY, 0, mask=0),
            ),
            action="drop", priority=10,
        ))
        runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        ctx = PacketContext.from_packet(make_packet(), 1)
        pipeline.process(ctx)
        assert ctx.egress_spec == DROP_PORT  # ACL dropped before LPM could forward

    def test_missing_field_raises(self):
        pipeline = routed_pipeline()
        non_ip = Packet.decode(
            b"\x00" * 6 + b"\x00" * 6 + b"\x86\xdd" + b"payload"
        )
        ctx = PacketContext.from_packet(non_ip, 1)
        with pytest.raises(PipelineError, match="no field"):
            pipeline.process(ctx)


class TestDeparse:
    def test_rebuild_without_changes_is_identity(self):
        ctx = PacketContext.from_packet(make_packet(), 1)
        assert ctx.rebuild_packet() == ctx.packet

    def test_rebuild_applies_forwarding_rewrites(self):

        ctx = PacketContext.from_packet(make_packet(), 1)
        ctx.fields["eth.dst"] = 0x99
        ctx.fields["ipv4.ttl"] = 17
        ctx.fields["ipv4.dscp"] = 46
        rebuilt = ctx.rebuild_packet()
        assert rebuilt.eth.dst == 0x99
        assert rebuilt.ipv4.ttl == 17
        assert rebuilt.ipv4.dscp == 46
        # Non-forwarding fields are untouched even if the context holds
        # scratch values for them.
        ctx.fields["udp.dst_port"] = 9999
        assert ctx.rebuild_packet().udp.dst_port == 2000

    def test_rebuild_round_trips_on_wire(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=50, deadline=None)
        @given(
            ttl=st.integers(min_value=1, max_value=255),
            dscp=st.integers(min_value=0, max_value=63),
            dst_mac=st.integers(min_value=0, max_value=2**48 - 1),
        )
        def check(ttl, dscp, dst_mac):
            ctx = PacketContext.from_packet(make_packet(), 1)
            ctx.fields["ipv4.ttl"] = ttl
            ctx.fields["ipv4.dscp"] = dscp
            ctx.fields["eth.dst"] = dst_mac
            rebuilt = ctx.rebuild_packet()
            assert Packet.decode(rebuilt.encode()) == rebuilt

        check()

    def test_rebuild_requires_packet(self):
        ctx = PacketContext(fields={}, headers=[], payload=b"")
        with pytest.raises(PipelineError):
            ctx.rebuild_packet()


class TestActionPrimitives:
    def run_action(self, action, params=()):
        pipeline = Pipeline(ipv4_forwarding_program())
        pipeline.add_register(Register("r", size=4))
        pipeline.add_counter(Counter("c", size=4))
        ctx = PacketContext.from_packet(make_packet(), 1)
        pipeline._execute(ActionCall(action=action, params=params), ctx)
        return pipeline, ctx

    def test_set_field(self):
        action = Action("a", (Step(Primitive.SET_FIELD, ("ipv4.dscp", 46)),))
        _, ctx = self.run_action(action)
        assert ctx.fields["ipv4.dscp"] == 46

    def test_copy_field(self):
        action = Action("a", (Step(Primitive.COPY_FIELD, ("scratch", "ipv4.ttl")),))
        _, ctx = self.run_action(action)
        assert ctx.fields["scratch"] == 64

    def test_add_to_field(self):
        action = Action("a", (Step(Primitive.ADD_TO_FIELD, ("ipv4.ttl", -1)),))
        _, ctx = self.run_action(action)
        assert ctx.fields["ipv4.ttl"] == 63

    def test_register_write_read(self):
        action = Action("a", (
            Step(Primitive.REGISTER_WRITE, ("r", 2, 77)),
            Step(Primitive.REGISTER_READ, ("r", 2, "scratch")),
        ))
        pipeline, ctx = self.run_action(action)
        assert ctx.fields["scratch"] == 77
        assert pipeline.registers["r"].read(2) == 77

    def test_count(self):
        action = Action("a", (Step(Primitive.COUNT, ("c", 1)),))
        pipeline, ctx = self.run_action(action)
        assert pipeline.counters["c"].read(1)["packets"] == 1

    def test_clone(self):
        action = Action("a", (Step(Primitive.CLONE, (7,)),))
        _, ctx = self.run_action(action)
        assert ctx.clone_spec == 7

    def test_mark_ra(self):
        action = Action("a", (Step(Primitive.MARK_RA),))
        _, ctx = self.run_action(action)
        assert ctx.mark_ra

    def test_to_cpu(self):
        action = Action("a", (Step(Primitive.TO_CPU),))
        _, ctx = self.run_action(action)
        assert ctx.egress_spec == CPU_PORT

    def test_param_substitution(self):
        action = Action("a", (Step(Primitive.FORWARD, ("$0",)),), param_count=1)
        _, ctx = self.run_action(action, params=(5,))
        assert ctx.egress_spec == 5

    def test_param_count_enforced(self):
        action = Action("a", (Step(Primitive.FORWARD, ("$0",)),), param_count=1)
        with pytest.raises(PipelineError):
            ActionCall(action=action, params=())

    def test_param_reference_out_of_range(self):
        action = Action("a", (Step(Primitive.FORWARD, ("$3",)),), param_count=1)
        pipeline = Pipeline(ipv4_forwarding_program())
        ctx = PacketContext.from_packet(make_packet(), 1)
        with pytest.raises(PipelineError, match="parameter"):
            pipeline._execute(ActionCall(action=action, params=(1,)), ctx)

    def test_unknown_register_raises(self):
        action = Action("a", (Step(Primitive.REGISTER_WRITE, ("ghost", 0, 0)),))
        pipeline = Pipeline(ipv4_forwarding_program())
        ctx = PacketContext.from_packet(make_packet(), 1)
        with pytest.raises(PipelineError, match="register"):
            pipeline._execute(ActionCall(action=action), ctx)


class TestRegistersCountersMeters:
    def test_register_bounds(self):
        reg = Register("r", size=2)
        with pytest.raises(PipelineError):
            reg.read(2)
        with pytest.raises(PipelineError):
            reg.write(-1, 0)

    def test_register_width_mask(self):
        reg = Register("r", size=1, bit_width=8)
        reg.write(0, 0x1FF)
        assert reg.read(0) == 0xFF

    def test_register_snapshot_changes(self):
        reg = Register("r", size=2)
        before = reg.snapshot()
        reg.write(0, 1)
        assert reg.snapshot() != before

    def test_register_reset(self):
        reg = Register("r", size=2)
        reg.write(0, 5)
        reg.reset()
        assert reg.read(0) == 0

    def test_counter_accumulates(self):
        counter = Counter("c", size=2)
        counter.count(0, packet_bytes=100)
        counter.count(0, packet_bytes=50)
        assert counter.read(0) == {"packets": 2, "bytes": 150}

    def test_counter_bounds(self):
        with pytest.raises(PipelineError):
            Counter("c", size=1).count(5)

    def test_meter_colors(self):
        meter = Meter("m", rate_bps=8000, burst_bytes=1000)  # 1000 B/s
        assert meter.execute(0.0, 500) == Meter.GREEN
        assert meter.execute(0.0, 500) == Meter.GREEN
        # Buckets empty; next packet at same instant exceeds both.
        assert meter.execute(0.0, 800) == Meter.YELLOW
        assert meter.execute(0.0, 800) == Meter.RED
        # After a second, tokens refill.
        assert meter.execute(1.0, 500) == Meter.GREEN

    def test_validation(self):
        with pytest.raises(PipelineError):
            Register("r", size=0)
        with pytest.raises(PipelineError):
            Counter("c", size=0)
        with pytest.raises(PipelineError):
            Meter("m", rate_bps=0)


class TestProgramMeasurement:
    def test_distinct_programs_distinct_measurements(self):
        measurements = {
            p.measurement()
            for p in [
                ipv4_forwarding_program(),
                l2_forwarding_program(),
                firewall_program(),
                scanner_program(),
                athens_rogue_program(),
            ]
        }
        assert len(measurements) == 5

    def test_measurement_deterministic(self):
        assert firewall_program().measurement() == firewall_program().measurement()

    def test_version_changes_measurement(self):
        assert firewall_program("v5").measurement() != firewall_program("v6").measurement()

    def test_rogue_program_detected_by_measurement(self):
        # Same name, same version string — still a different measurement.
        genuine = firewall_program("v5")
        rogue = athens_rogue_program("v5")
        assert genuine.full_name == rogue.full_name
        assert genuine.measurement() != rogue.measurement()

    def test_duplicate_table_names_rejected(self):
        program = ipv4_forwarding_program()
        with pytest.raises(PipelineError):
            type(program)(
                name="x", version="v1", parser=program.parser,
                tables=program.tables + program.tables, actions=program.actions,
            )

    def test_table_with_unknown_action_rejected(self):
        from repro.pisa.program import TableSpec

        program = ipv4_forwarding_program()
        bad_table = TableSpec(
            name="bad", key_fields=("f",), key_kinds=("exact",),
            allowed_actions=("ghost",), default_action="ghost",
        )
        with pytest.raises(PipelineError, match="unknown action"):
            type(program)(
                name="x", version="v1", parser=program.parser,
                tables=(bad_table,), actions=program.actions,
            )

    def test_accessors(self):
        program = firewall_program()
        assert program.action("drop").name == "drop"
        assert program.table_spec("acl").name == "acl"
        with pytest.raises(PipelineError):
            program.action("ghost")
        with pytest.raises(PipelineError):
            program.table_spec("ghost")
