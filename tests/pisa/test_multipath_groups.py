"""Action-selector groups: SELECT_FORWARD, write_group, measurement."""

import pytest

from repro.net.headers import ip_to_int
from repro.net.packet import Packet
from repro.pisa.pipeline import PacketContext, Pipeline
from repro.pisa.programs import fabric_multipath_program
from repro.pisa.runtime import P4Runtime, TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.util.errors import PipelineError


def make_packet(dst="10.0.1.5", src_port=1000):
    return Packet.udp_packet(
        src_mac=1, dst_mac=2,
        src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int(dst),
        src_port=src_port, dst_port=2000, payload=b"data",
    )


def multipath_runtime():
    """A fabric program with 10.0.1.0/24 spread over group 1."""
    runtime = P4Runtime("s1")
    runtime.arbitrate("ctl", 1)
    runtime.pipeline = Pipeline(fabric_multipath_program())
    runtime.write_group("ctl", 1, (4, 2, 3))
    runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="ecmp_select", params=(1,),
    ))
    return runtime


class TestWriteGroup:
    def test_groups_read_back_sorted(self):
        runtime = multipath_runtime()
        assert runtime.read_groups() == {1: (2, 3, 4)}

    def test_master_gating(self):
        runtime = multipath_runtime()
        with pytest.raises(PipelineError, match="not master"):
            runtime.write_group("intruder", 2, (1,))

    def test_invalid_groups_rejected(self):
        runtime = multipath_runtime()
        with pytest.raises(PipelineError):
            runtime.write_group("ctl", 0, (1,))
        with pytest.raises(PipelineError):
            runtime.write_group("ctl", 2, ())


class TestSelectForward:
    def test_default_selector_takes_lowest_member(self):
        runtime = multipath_runtime()
        ctx = PacketContext.from_packet(make_packet(), 1)
        runtime.pipeline.process(ctx)
        assert ctx.egress_spec == 2

    def test_member_selector_hook_drives_choice(self):
        runtime = multipath_runtime()
        seen = {}

        def selector(members, ctx):
            seen["members"] = members
            return members[-1]

        runtime.pipeline.member_selector = selector
        ctx = PacketContext.from_packet(make_packet(), 1)
        runtime.pipeline.process(ctx)
        assert ctx.egress_spec == 4
        assert seen["members"] == (2, 3, 4)

    def test_missing_group_is_a_pipeline_error(self):
        runtime = multipath_runtime()
        runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(
                MatchKey(MatchKind.LPM, ip_to_int("10.0.9.0"), prefix_len=24),
            ),
            action="ecmp_select", params=(99,),
        ))
        ctx = PacketContext.from_packet(make_packet(dst="10.0.9.1"), 1)
        with pytest.raises(PipelineError, match="group 99"):
            runtime.pipeline.process(ctx)


class TestGroupMeasurement:
    def test_groups_are_measured(self):
        runtime = multipath_runtime()
        content = runtime.pipeline.measure_tables()
        assert content["__group__1"] == b"2,3,4"

    def test_tampered_group_changes_measurement(self):
        runtime = multipath_runtime()
        before = dict(runtime.pipeline.measure_tables())
        runtime.write_group("ctl", 1, (2, 3, 5))
        after = runtime.pipeline.measure_tables()
        assert before["__group__1"] != after["__group__1"]

    def test_groups_cleared_on_program_swap(self):
        runtime = multipath_runtime()
        runtime.set_forwarding_pipeline_config(
            "ctl", fabric_multipath_program()
        )
        assert runtime.read_groups() == {}
