"""Tests for the attestation audit journal and its renderers."""

import pytest

from repro.telemetry import (
    AuditJournal,
    AuditKind,
    Check,
    NULL_JOURNAL,
    Telemetry,
    TraceContext,
    classify_failure,
    explain_verdict,
    narrative,
)
from repro.telemetry.audit import describe_event
from repro.util.clock import SimClock


class TestJournal:
    def test_record_sequences_and_hex_digests(self):
        journal = AuditJournal()
        first = journal.record(
            AuditKind.EVIDENCE_CREATED, "s1",
            trace="abcdef012345", hop=1, digest=b"\xde\xad", place="s1",
        )
        second = journal.record(AuditKind.VERDICT_ISSUED, "A", accepted=True)
        assert (first.seq, second.seq) == (1, 2)
        assert first.digest == "dead"
        assert first.detail == {"place": "s1"}
        assert second.trace is None

    def test_as_dict_omits_absent_fields(self):
        journal = AuditJournal()
        bare = journal.record(AuditKind.PACKET_DELIVERED, "h2").as_dict()
        assert bare == {
            "seq": 1, "time_s": 0.0,
            "kind": AuditKind.PACKET_DELIVERED, "actor": "h2",
        }
        full = journal.record(
            AuditKind.SIGNATURE_VERIFIED, "A",
            trace="abcdef012345", hop=2, digest=b"\x01", ok=True,
        ).as_dict()
        assert full["trace"] == "abcdef012345"
        assert full["hop"] == 2
        assert full["digest"] == "01"
        assert full["detail"] == {"ok": True}

    def test_ring_bound_counts_evictions(self):
        journal = AuditJournal(max_events=4)
        for index in range(6):
            journal.record(AuditKind.MEASUREMENT_TAKEN, f"s{index}")
        assert len(journal) == 4
        assert journal.dropped == 2
        assert [e.seq for e in journal.events] == [3, 4, 5, 6]

    def test_trace_queries(self):
        journal = AuditJournal()
        journal.record(AuditKind.TRACE_STARTED, "h1", trace="a" * 12)
        journal.record(AuditKind.PACKET_FORWARDED, "sim", trace="b" * 12)
        journal.record(AuditKind.PACKET_DELIVERED, "h2", trace="a" * 12)
        journal.record(AuditKind.CONTROL_SENT, "s1")  # untraced
        assert journal.trace_ids() == ["a" * 12, "b" * 12]
        assert [e.kind for e in journal.for_trace("a" * 12)] == [
            AuditKind.TRACE_STARTED, AuditKind.PACKET_DELIVERED,
        ]
        assert journal.for_trace(None) == []

    def test_bound_clock_timestamps(self):
        clock = SimClock()
        journal = AuditJournal(clock=clock)
        clock.advance_to(1.5)
        assert journal.record(AuditKind.PACKET_DROPPED, "sim").time_s == 1.5

    def test_null_journal_is_inert(self):
        assert NULL_JOURNAL.record(AuditKind.VERDICT_ISSUED, "A") is None
        assert len(NULL_JOURNAL) == 0


class TestTelemetryIntegration:
    def test_audit_event_unpacks_trace_context(self):
        tel = Telemetry()
        ctx = TraceContext(trace_id="abcdef012345", hop=2)
        event = tel.audit_event(
            AuditKind.EVIDENCE_PUSHED, "s1", trace=ctx,
            digest=b"\x99", bytes=42,
        )
        assert event.trace == "abcdef012345"
        assert event.hop == 2
        assert event.digest == "99"

    def test_inactive_telemetry_records_nothing(self):
        tel = Telemetry(active=False)
        assert tel.audit_event(AuditKind.VERDICT_ISSUED, "A") is None
        assert tel.audit is NULL_JOURNAL


class TestClassifyFailure:
    @pytest.mark.parametrize("message, expected", [
        ("record 0 (s1): signature invalid or signer untrusted",
         Check.SIGNATURE),
        ("nonce replayed", Check.NONCE),
        ("record 1 (s2): chain head does not extend its predecessor",
         Check.CHAIN),
        ("record 0 (s1): packet digest does not match this traffic",
         Check.BINDING),
        ("PROGRAM measurement does not match the vetted value",
         Check.MEASUREMENT),
        ("evidence stripped: 3 attesting hops but only 2 records",
         Check.COVERAGE),
        ("path lacks required function 'firewall'", Check.FUNCTION),
        ("packet carries no RA shim header", Check.SHIM),
        ("something completely different", Check.OTHER),
    ])
    def test_keyword_mapping(self, message, expected):
        assert classify_failure(message) == expected


def _story_journal():
    journal = AuditJournal()
    tid = "abcdef012345"
    journal.record(AuditKind.TRACE_STARTED, "h1", trace=tid, hop=0)
    journal.record(
        AuditKind.PACKET_FORWARDED, "sim", trace=tid, hop=1, link="h1->s1",
    )
    journal.record(
        AuditKind.MEASUREMENT_TAKEN, "s1", trace=tid, hop=1,
        digest=b"\x01\x02", inertia="program",
    )
    journal.record(
        AuditKind.CHECK_FAILED, "A", trace=tid, hop=2,
        check=Check.MEASUREMENT, message="does not match", place="s1",
    )
    return journal, tid


class TestNarrative:
    def test_header_and_hop_prefixes(self):
        journal, tid = _story_journal()
        text = narrative(journal.events, trace_id=tid)
        lines = text.splitlines()
        assert lines[0] == f"trace {tid}: 4 events over 2 hop(s)"
        assert "hop 0" in lines[1] and "h1: trace started" in lines[1]
        assert "forwarded over h1->s1" in text
        assert "measured program [0102]" in text

    def test_accepts_exported_dicts(self):
        journal, tid = _story_journal()
        docs = [event.as_dict() for event in journal.events]
        assert narrative(docs, trace_id=tid) == narrative(
            journal.events, trace_id=tid
        )

    def test_empty_trace(self):
        assert "no audit events" in narrative([], trace_id="f" * 12)

    def test_describe_event_fallback(self):
        journal = AuditJournal()
        event = journal.record("custom.kind", "x", why="because")
        assert describe_event(event) == "x: custom.kind {'why': 'because'}"


class _FakeVerdict:
    def __init__(self, accepted, failures=(), trace_id=None):
        self.accepted = accepted
        self.failures = tuple(failures)
        self.trace_id = trace_id


class TestExplainVerdict:
    def test_rejected_lists_failures(self):
        journal, tid = _story_journal()
        verdict = _FakeVerdict(
            False, ["measurement does not match"], trace_id=tid
        )
        text = explain_verdict(verdict, journal.events)
        assert "conclusion: REJECTED — 1 check(s) failed" in text
        assert "  - measurement does not match" in text
        assert text.startswith(f"trace {tid}:")

    def test_accepted(self):
        journal, tid = _story_journal()
        verdict = _FakeVerdict(True, trace_id=tid)
        text = explain_verdict(verdict, journal.events)
        assert "conclusion: ACCEPTED — every check passed" in text
