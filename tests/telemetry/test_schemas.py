"""Exported documents must validate against the checked-in JSON Schemas.

This is the tier-1 guard behind ``docs/schemas/``: a change to the
export layout without a schema bump (or vice versa) fails here, not in
a downstream consumer of CI artifacts.
"""

import json
import pathlib

import pytest

from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.telemetry import Telemetry
from repro.telemetry.export import audit_snapshot, chrome_trace
from repro.telemetry.report import chrome_trace_from_snapshot
from repro.telemetry.schema import assert_valid, load_schema, validate

SCHEMA_DIR = pathlib.Path(__file__).resolve().parents[2] / "docs" / "schemas"
AUDIT_SCHEMA = load_schema(SCHEMA_DIR / "audit_v1.schema.json")
TRACE_SCHEMA = load_schema(SCHEMA_DIR / "chrome_trace_v1.schema.json")
TIMESERIES_SCHEMA_DOC = load_schema(SCHEMA_DIR / "timeseries_v1.schema.json")


def traced_run() -> Telemetry:
    """A real (tiny) simulated run with tracing + audit events."""
    tel = Telemetry()
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("h2", kind="host")
    topo.add_link("h1", 1, "h2", 1)
    sim = Simulator(topo, telemetry=tel)
    h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=2, ip=ip_to_int("10.0.0.2"))
    sim.bind(h1)
    sim.bind(h2)
    h1.send_udp(
        dst_mac=2, dst_ip=ip_to_int("10.0.0.2"),
        src_port=1000, dst_port=2000, payload=b"x",
    )
    sim.run()
    return tel


class TestExportedDocuments:
    def test_audit_export_matches_schema(self):
        doc = audit_snapshot(traced_run())
        assert doc["events"], "the run should have recorded audit events"
        assert_valid(doc, AUDIT_SCHEMA, label="audit export")

    def test_audit_export_survives_json_round_trip(self, tmp_path):
        path = tmp_path / "audit.json"
        path.write_text(json.dumps(audit_snapshot(traced_run())))
        assert_valid(
            json.loads(path.read_text()), AUDIT_SCHEMA, label="audit json"
        )

    def test_chrome_trace_matches_schema(self):
        doc = chrome_trace(traced_run())
        assert_valid(doc, TRACE_SCHEMA, label="chrome trace")

    def test_rebuilt_chrome_trace_matches_schema(self):
        from repro.telemetry.export import snapshot

        doc = chrome_trace_from_snapshot(snapshot(traced_run()))
        assert_valid(doc, TRACE_SCHEMA, label="rebuilt chrome trace")

    def test_chaos_timeseries_matches_schema(self):
        from repro.core.chaos import run_chaos_athens, standard_chaos_rules

        result = run_chaos_athens(health=standard_chaos_rules())
        doc = result.timeseries()
        assert doc["frames"], "the chaos run should have recorded frames"
        assert doc["alerts"], "the chaos run should have raised alerts"
        assert_valid(doc, TIMESERIES_SCHEMA_DOC, label="timeseries export")

    def test_timeseries_survives_json_round_trip(self, tmp_path):
        from repro.core.chaos import run_chaos_athens, standard_chaos_rules
        from repro.telemetry.timeseries import dump_timeseries

        result = run_chaos_athens(health=standard_chaos_rules())
        path = tmp_path / "TIMESERIES.json"
        dump_timeseries(result.timeseries(), path)
        assert_valid(
            json.loads(path.read_text()),
            TIMESERIES_SCHEMA_DOC,
            label="timeseries json",
        )

    def test_sharded_timeseries_runtime_section_allowed(self):
        from repro.core.chaos import run_chaos_athens, standard_chaos_rules
        from repro.telemetry.timeseries import timeseries_snapshot

        result = run_chaos_athens(shards=2, health=standard_chaos_rules())
        doc = timeseries_snapshot(
            result.frames,
            result.sampling.interval_s,
            frames_dropped=result.frames_dropped,
            alerts=result.health.alerts,
            rules=result.health.rules,
            runtime={"shards": result.sharded.frames_runtime},
        )
        assert_valid(doc, TIMESERIES_SCHEMA_DOC, label="timeseries+runtime")


class TestSubsetValidator:
    def test_accepts_valid_audit_document(self):
        doc = {
            "schema": "repro.audit/v1",
            "events_dropped": 0,
            "events": [{
                "seq": 1, "time_s": 0.0, "kind": "trace.started",
                "actor": "h1", "trace": "a" * 12, "hop": 0,
            }],
        }
        assert validate(doc, AUDIT_SCHEMA) == []

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda d: d.update(schema="repro.audit/v2"), "const"),
        (lambda d: d.pop("events_dropped"), "missing required"),
        (lambda d: d["events"][0].update(trace="NOT-HEX"), "does not match"),
        (lambda d: d["events"][0].update(seq=0), "below minimum"),
        (lambda d: d["events"][0].update(surprise=1), "unexpected property"),
        (lambda d: d["events"][0].update(hop="one"), "expected type"),
    ])
    def test_rejects_malformed_audit_documents(self, mutate, fragment):
        doc = {
            "schema": "repro.audit/v1",
            "events_dropped": 0,
            "events": [{
                "seq": 1, "time_s": 0.0, "kind": "trace.started",
                "actor": "h1", "trace": "a" * 12, "hop": 0,
            }],
        }
        mutate(doc)
        errors = validate(doc, AUDIT_SCHEMA)
        assert errors, "mutation should have been caught"
        assert any(fragment in error for error in errors)

    def test_rejects_bad_trace_phase(self):
        doc = {
            "traceEvents": [
                {"name": "x", "ph": "B", "pid": 1, "tid": 1},
            ],
            "otherData": {"schema": "repro.trace/v1", "timebase": "wall"},
        }
        errors = validate(doc, TRACE_SCHEMA)
        assert any("not in enum" in error for error in errors)

    def test_assert_valid_raises_with_every_violation(self):
        with pytest.raises(ValueError, match="audit export"):
            assert_valid({"events": []}, AUDIT_SCHEMA, label="audit export")
