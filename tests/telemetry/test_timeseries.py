"""The flight recorder's windowing, codec, and determinism contracts.

Unit-level coverage of :mod:`repro.telemetry.timeseries`: the sparse
delta codec (including a property test over arbitrary cumulative
views), the virtual-tick rule (frame ``w`` covers ``[w·Δ, (w+1)·Δ)``,
ticks never touch the event queue), empty-window omission, ring
eviction accounting, canonical stream merging, and the idempotence of
the gauge collectors the recorder's cumulative view depends on.
"""

import pytest

from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.simulator import NetworkError, Simulator
from repro.net.topology import Topology
from repro.telemetry import Telemetry
from repro.telemetry.instrument import collect_globals, collect_simulator
from repro.telemetry.timeseries import (
    FlightRecorder,
    SamplingSpec,
    apply_delta,
    cumulative_at,
    delta_encode,
    install_recorder,
    merge_frame_streams,
    renumber_frame_times,
    timeseries_export,
    timeseries_snapshot,
)


class TestSamplingSpec:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingSpec(interval_s=0.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_frames"):
            SamplingSpec(interval_s=1.0, max_frames=0)


class TestDeltaCodec:
    def test_delta_is_sparse(self):
        prev = {"a": 1.0, "b": 2.0, "c": 3.0}
        curr = {"a": 1.0, "b": 5.0, "c": 3.0, "d": 4.0}
        assert delta_encode(prev, curr) == {"b": 3.0, "d": 4.0}

    def test_apply_delta_round_trips(self):
        prev = {"a": 1.0, "b": 2.0}
        curr = {"a": 4.0, "b": 2.0, "c": 7.0}
        folded = apply_delta(prev, delta_encode(prev, curr))
        assert folded == curr

    def test_cumulative_at_replays_prefix(self):
        frames = [
            {"w": 0, "t": 1.0, "v": {"x": 2.0}},
            {"w": 2, "t": 3.0, "v": {"x": 1.0, "y": 5.0}},
            {"w": 4, "t": 5.0, "v": {"x": -1.0}},
        ]
        assert cumulative_at(frames, 0) == {"x": 2.0}
        assert cumulative_at(frames, 3) == {"x": 3.0, "y": 5.0}
        assert cumulative_at(frames, 4) == {"x": 2.0, "y": 5.0}


class TestDeltaCodecProperties:
    """Hypothesis: encode/apply is exact for any pair of views."""

    def test_round_trip_over_arbitrary_views(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        keys = st.text(
            alphabet="abcdefg.{}=", min_size=1, max_size=8
        )
        # Counters are integer-valued floats in practice; integers keep
        # the float arithmetic exact so the round trip is equality.
        views = st.dictionaries(
            keys,
            st.integers(min_value=0, max_value=2**40).map(float),
            max_size=12,
        )

        @hypothesis.given(prev=views, curr=views)
        @hypothesis.settings(max_examples=200, deadline=None)
        def round_trip(prev, curr):
            delta = delta_encode(prev, curr)
            # Sparseness: no zero entries ever stored.
            assert all(step != 0.0 for step in delta.values())
            folded = apply_delta(prev, delta)
            # Keys that disappeared from curr keep their prev value
            # (counters are monotone; the codec never deletes), and a
            # zero-valued key never seen before stays absent — a zero
            # counter is indistinguishable from no counter.
            expected = dict(prev)
            for key, value in curr.items():
                if value != 0.0 or key in prev:
                    expected[key] = value
            assert folded == expected

        round_trip()


def _ticking_recorder(interval_s=1.0, max_frames=8192):
    tel = Telemetry(active=True)
    rec = FlightRecorder(
        SamplingSpec(interval_s=interval_s, max_frames=max_frames), tel
    )
    return tel, rec


class TestFlightRecorder:
    def test_frame_covers_half_open_window(self):
        tel, rec = _ticking_recorder()
        tel.counter("pkts").inc()        # t in [0, 1) -> window 0
        rec.advance_to(1.0)              # tick at exactly t=1 fires first
        tel.counter("pkts").inc()        # the event at t=1 -> window 1
        rec.finish(1.5)
        assert rec.frames == [
            {"w": 0, "t": 1.0, "v": {"pkts": 1.0}},
            {"w": 1, "t": 2.0, "v": {"pkts": 1.0}},
        ]

    def test_idle_windows_produce_no_frames(self):
        tel, rec = _ticking_recorder()
        tel.counter("pkts").inc()
        rec.advance_to(10.0)             # nine idle windows in between
        tel.counter("pkts").inc()
        rec.finish(10.2)
        assert [f["w"] for f in rec.frames] == [0, 10]

    def test_frame_times_are_nominal_not_clock_reads(self):
        tel, rec = _ticking_recorder(interval_s=0.5)
        tel.counter("pkts").inc()
        rec.advance_to(1.7)              # irregular event times
        assert rec.frames[0]["t"] == pytest.approx(0.5)

    def test_finish_is_idempotent(self):
        tel, rec = _ticking_recorder()
        tel.counter("pkts").inc()
        rec.finish(0.3)
        first = rec.frames
        rec.finish(5.0)
        tel.counter("pkts").inc()
        rec.finish(9.0)
        assert rec.frames == first

    def test_ring_eviction_is_counted(self):
        tel, rec = _ticking_recorder(max_frames=3)
        for window in range(6):
            tel.counter("pkts").inc()
            rec.advance_to(float(window + 1))
        assert len(rec.frames) == 3
        assert rec.frames_dropped == 3
        assert [f["w"] for f in rec.frames] == [3, 4, 5]

    def test_sim_seconds_histograms_join_the_view(self):
        tel, rec = _ticking_recorder()
        tel.histogram("ra.appraise_sim_seconds", appraiser="a").observe(0.25)
        tel.histogram("ra.appraise_seconds", appraiser="a").observe(0.25)
        rec.finish(0.1)
        (frame,) = rec.frames
        assert frame["v"] == {
            "ra.appraise_sim_seconds.count{appraiser=a}": 1.0,
            "ra.appraise_sim_seconds.sum{appraiser=a}": 0.25,
        }, "wall-clock histograms must stay out of frames"


class TestSimulatorIntegration:
    def _sim(self):
        tel = Telemetry(active=True)
        topo = Topology()
        topo.add_node("h1", kind="host")
        topo.add_node("h2", kind="host")
        topo.add_link("h1", 1, "h2", 1)
        sim = Simulator(topo, telemetry=tel)
        h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
        h2 = Host("h2", mac=2, ip=ip_to_int("10.0.0.2"))
        sim.bind(h1)
        sim.bind(h2)
        return sim, h1

    def _send(self, h1, seq):
        h1.send_udp(
            dst_mac=2, dst_ip=ip_to_int("10.0.0.2"),
            src_port=1000, dst_port=2000, payload=bytes([seq]),
        )

    def test_virtual_ticks_leave_event_count_untouched(self):
        sim_plain, h1 = self._sim()
        for i in range(4):
            sim_plain.schedule(i * 1e-3, lambda s=i: self._send(h1, s))
        sim_plain.run()

        sim_rec, h1b = self._sim()
        install_recorder(sim_rec, SamplingSpec(interval_s=1e-3))
        for i in range(4):
            sim_rec.schedule(i * 1e-3, lambda s=i: self._send(h1b, s))
        sim_rec.run()

        assert (
            sim_rec.stats.events_processed
            == sim_plain.stats.events_processed
        )
        assert sim_rec.recorder.frames, "sampling should have recorded"

    def test_install_recorder_twice_raises(self):
        sim, _ = self._sim()
        install_recorder(sim, SamplingSpec(interval_s=1.0))
        with pytest.raises(NetworkError, match="already"):
            install_recorder(sim, SamplingSpec(interval_s=1.0))


class TestStreamMerging:
    def test_merge_sums_per_window(self):
        a = [
            {"w": 0, "t": 1.0, "v": {"x": 1.0}},
            {"w": 2, "t": 3.0, "v": {"x": 2.0}},
        ]
        b = [
            {"w": 0, "t": 1.0, "v": {"x": 3.0, "y": 1.0}},
            {"w": 1, "t": 2.0, "v": {"y": 4.0}},
        ]
        merged = merge_frame_streams([a, b])
        assert [f["w"] for f in merged] == [0, 1, 2]
        assert merged[0]["v"] == {"x": 4.0, "y": 1.0}
        assert merged[1]["v"] == {"y": 4.0}

    def test_merge_drops_windows_that_cancel(self):
        a = [{"w": 0, "t": 1.0, "v": {"x": 1.0}}]
        b = [{"w": 0, "t": 1.0, "v": {"x": -1.0}}]
        assert merge_frame_streams([a, b]) == []

    def test_renumber_stamps_nominal_times(self):
        frames = merge_frame_streams(
            [[{"w": 3, "t": None, "v": {"x": 1.0}}]]
        )
        renumber_frame_times(frames, 0.5)
        assert frames[0]["t"] == pytest.approx(2.0)

    def test_single_stream_merge_is_identity_on_frames(self):
        stream = [
            {"w": 0, "t": 1.0, "v": {"x": 1.0}},
            {"w": 4, "t": 5.0, "v": {"x": 2.0, "y": 1.0}},
        ]
        merged = renumber_frame_times(merge_frame_streams([stream]), 1.0)
        assert merged == stream


class TestExportDocument:
    def test_runtime_section_excluded_from_canonical_export(self):
        frames = [{"w": 0, "t": 1.0, "v": {"x": 1.0}}]
        with_runtime = timeseries_snapshot(
            frames, 1.0, runtime={"busy_s": 0.123}
        )
        without = timeseries_snapshot(frames, 1.0)
        assert "runtime" in with_runtime
        assert timeseries_export(with_runtime) == timeseries_export(without)


class TestCollectorIdempotence:
    """The recorder samples gauges the collectors own: collecting twice
    must not double-count (gauges are point-in-time, last writer wins)."""

    def test_collect_simulator_twice_is_stable(self):
        tel = Telemetry(active=True)
        topo = Topology()
        topo.add_node("h1", kind="host")
        topo.add_node("h2", kind="host")
        topo.add_link("h1", 1, "h2", 1)
        sim = Simulator(topo, telemetry=tel)
        h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
        h2 = Host("h2", mac=2, ip=ip_to_int("10.0.0.2"))
        sim.bind(h1)
        sim.bind(h2)
        h1.send_udp(
            dst_mac=2, dst_ip=ip_to_int("10.0.0.2"),
            src_port=1000, dst_port=2000, payload=b"x",
        )
        sim.run()  # runs collect_simulator once itself
        collect_simulator(tel, sim)
        once = tel.metrics.snapshot()
        collect_simulator(tel, sim)
        collect_simulator(tel, sim)
        assert tel.metrics.snapshot() == once

    def test_collect_globals_twice_is_stable(self):
        tel = Telemetry(active=True)
        collect_globals(tel)
        once = tel.metrics.snapshot()
        collect_globals(tel)
        assert tel.metrics.snapshot() == once
