"""The health/SLO rule engine's semantics, rule by rule.

Each rule family's raise/clear contract from docs/MONITORING.md is
pinned on tiny hand-built frame streams (windows are cheap to write
out literally), plus the alert-event shape the audit fold depends on
and the purity property that makes post-merge evaluation canonical.
"""

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.audit import AuditKind, event_from_dict
from repro.telemetry.health import (
    AbsenceRule,
    HEALTH_ACTOR,
    ImbalanceRule,
    LevelRule,
    RatioRule,
    ThresholdRule,
    evaluate_health,
    fold_alerts,
    label_filter,
)


def frames_from(*window_deltas):
    """Build a sparse frame list from per-window delta dicts."""
    frames = []
    for window, delta in window_deltas:
        frames.append({"w": window, "t": float(window + 1), "v": delta})
    return frames


class TestThresholdRule:
    def test_raises_and_clears_on_window_deltas(self):
        rule = ThresholdRule(name="drops", metric="net.link.dropped")
        frames = frames_from(
            (0, {"net.link.dropped": 2.0}),
            (1, {"other": 1.0}),
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        kinds = [(a["kind"], a["detail"]["window"]) for a in report.alerts]
        assert kinds == [("alert.raised", 0), ("alert.cleared", 1)]
        assert report.active == {}

    def test_respects_label_filter(self):
        rule = ThresholdRule(
            name="rejects",
            metric="verdicts",
            labels=label_filter(accepted=False),
        )
        frames = frames_from(
            (0, {"verdicts{accepted=True}": 5.0}),
            (1, {"verdicts{accepted=False}": 1.0}),
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.first_raise_window("rejects") == 1

    def test_over_windows_requires_a_streak(self):
        rule = ThresholdRule(
            name="sustained", metric="m", threshold=0.0, over_windows=2
        )
        frames = frames_from(
            (0, {"m": 1.0}),
            (1, {"other": 1.0}),  # streak broken
            (2, {"m": 1.0}),
            (3, {"m": 1.0}),      # second consecutive breach -> raise
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.first_raise_window("sustained") == 3

    def test_absent_windows_count_as_zero_deltas(self):
        rule = ThresholdRule(name="drops", metric="m")
        frames = frames_from(
            (0, {"m": 1.0}),
            (5, {"m": 1.0}),  # windows 1-4 omitted entirely
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        cleared = [a for a in report.alerts if a["kind"] == "alert.cleared"]
        assert cleared[0]["detail"]["window"] == 1

    def test_still_raised_at_end_is_active(self):
        rule = ThresholdRule(name="drops", metric="m")
        report = evaluate_health(
            frames_from((0, {"m": 1.0})), [rule], interval_s=1.0
        )
        assert report.active == {"drops": 0}
        assert report.raised and not report.cleared


class TestLevelRule:
    def test_raises_on_cumulative_level_not_delta(self):
        """A queue filling by small deltas crosses the level threshold
        even though no single window's delta does."""
        rule = LevelRule(name="depth", metric="q.depth", threshold=5.0)
        frames = frames_from(
            (0, {"q.depth": 3.0}),
            (1, {"q.depth": 3.0}),   # cumulative 6 > 5 -> raise
            (2, {"q.depth": -4.0}),  # cumulative 2 <= 5 -> clear
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        kinds = [(a["kind"], a["detail"]["window"]) for a in report.alerts]
        assert kinds == [("alert.raised", 1), ("alert.cleared", 2)]

    def test_max_aggregate_bounds_worst_key(self):
        rule = LevelRule(name="depth", metric="q.depth", threshold=5.0)
        frames = frames_from(
            (0, {"q.depth{node=a}": 2.0, "q.depth{node=b}": 6.0}),
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.first_raise_window("depth") == 0

    def test_sum_aggregate_bounds_total(self):
        rule = LevelRule(
            name="depth", metric="q.depth", threshold=5.0, aggregate="sum"
        )
        frames = frames_from(
            (0, {"q.depth{node=a}": 3.0, "q.depth{node=b}": 3.0}),
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.first_raise_window("depth") == 0
        # max aggregate over the same frames stays quiet (worst key 3).
        quiet = evaluate_health(
            frames,
            [LevelRule(name="depth", metric="q.depth", threshold=5.0)],
            interval_s=1.0,
        )
        assert quiet.alerts == []

    def test_no_matching_series_stays_silent(self):
        rule = LevelRule(name="depth", metric="q.depth", threshold=0.0)
        frames = frames_from((0, {"other": 100.0}))
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.alerts == []

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError):
            LevelRule(name="x", metric="m", threshold=1.0, aggregate="avg")


class TestRatioRule:
    def test_trailing_window_aggregation(self):
        rule = RatioRule(
            name="fail-rate",
            numerator="v",
            numerator_labels=label_filter(ok=False),
            denominator="v",
            threshold=0.25,
            over_windows=2,
        )
        # Window 0: 1 failure / 2 total = 0.5 -> raise.
        # Window 1 adds 6 passes: trailing ratio 1/8 = 0.125 -> clear.
        frames = frames_from(
            (0, {"v{ok=False}": 1.0, "v{ok=True}": 1.0}),
            (1, {"v{ok=True}": 6.0}),
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        kinds = [a["kind"] for a in report.alerts]
        assert kinds == ["alert.raised", "alert.cleared"]

    def test_zero_denominator_is_compliant(self):
        rule = RatioRule(
            name="rate", numerator="bad", denominator="all", threshold=0.1
        )
        frames = frames_from((0, {"unrelated": 3.0}))
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.alerts == []


class TestAbsenceRule:
    def test_arms_then_raises_after_silence_then_clears(self):
        rule = AbsenceRule(name="stall", metric="seals", for_windows=2)
        frames = frames_from(
            (0, {"seals": 1.0}),   # arms
            (3, {"seals": 1.0}),   # silent at 1, 2 -> raised at 2; resumes
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        kinds = [(a["kind"], a["detail"]["window"]) for a in report.alerts]
        assert kinds == [("alert.raised", 2), ("alert.cleared", 3)]

    def test_never_arms_without_activity(self):
        rule = AbsenceRule(name="stall", metric="seals", for_windows=1)
        frames = frames_from((0, {"other": 1.0}), (5, {"other": 1.0}))
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.alerts == []


class TestImbalanceRule:
    def test_bounds_max_over_mean_per_group(self):
        rule = ImbalanceRule(
            name="ecmp", metric="tx", bound=1.4, min_total=4.0
        )
        frames = frames_from(
            (0, {"tx{link=s1:1->a:1}": 6.0, "tx{link=s1:2->b:1}": 2.0}),
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.first_raise_window("ecmp") == 0
        detail = report.raised[0]["detail"]
        assert detail["value"] == pytest.approx(1.5)  # max 6 / mean 4
        assert detail["threshold"] == pytest.approx(1.4)

    def test_quiet_groups_are_skipped(self):
        rule = ImbalanceRule(
            name="ecmp", metric="tx", bound=1.2, min_total=100.0
        )
        frames = frames_from(
            (0, {"tx{link=s1:1->a:1}": 6.0, "tx{link=s1:2->b:1}": 1.0}),
        )
        report = evaluate_health(frames, [rule], interval_s=1.0)
        assert report.alerts == []


class TestAlertEvents:
    def test_alert_shape_matches_audit_export(self):
        rule = ThresholdRule(name="drops", metric="m")
        report = evaluate_health(
            frames_from((0, {"m": 1.0})), [rule], interval_s=0.5
        )
        (alert,) = report.alerts
        assert alert["actor"] == HEALTH_ACTOR
        assert alert["time_s"] == pytest.approx(0.5)  # window close time
        # The exact dict round-trips through the audit event loader.
        event = event_from_dict(alert)
        assert event.kind == AuditKind.ALERT_RAISED

    def test_fold_alerts_orders_canonically(self):
        tel = Telemetry(active=True)
        tel.audit_event("fault.injected", "injector")
        rule = ThresholdRule(name="drops", metric="m")
        report = evaluate_health(
            frames_from((0, {"m": 1.0})), [rule], interval_s=1.0
        )
        fold_alerts(tel.audit, report.alerts)
        kinds = [e.kind for e in tel.audit.events]
        assert "alert.raised" in kinds
        assert [e.seq for e in tel.audit.events] == list(
            range(1, len(kinds) + 1)
        )

    def test_evaluation_is_pure(self):
        rule = ThresholdRule(name="drops", metric="m")
        frames = frames_from((0, {"m": 1.0}), (1, {"x": 1.0}))
        first = evaluate_health(frames, [rule], interval_s=1.0)
        second = evaluate_health(frames, [rule], interval_s=1.0)
        assert first.alerts == second.alerts
        assert first.rules == second.rules
