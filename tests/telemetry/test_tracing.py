"""Tests for causal trace contexts and their end-to-end propagation."""

import dataclasses

import pytest

from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.telemetry import (
    AuditKind,
    Telemetry,
    TraceContext,
    new_trace_id,
    reset_trace_ids,
    start_trace,
)
from repro.telemetry.tracing import TRACE_ID_LEN


class TestTraceContext:
    def test_hopped_advances_hop_and_lineage(self):
        ctx = start_trace("h1")
        assert ctx.hop == 0
        assert ctx.origin == "h1"
        assert ctx.lineage == ()
        later = ctx.hopped("s1").hopped("s2")
        assert later.trace_id == ctx.trace_id
        assert later.hop == 2
        assert later.lineage == ("s1", "s2")

    def test_span_args(self):
        ctx = TraceContext(trace_id="abcdef012345", hop=3)
        assert ctx.span_args() == {"trace": "abcdef012345", "hop": 3}

    def test_frozen(self):
        ctx = start_trace("h1")
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.hop = 9


class TestTraceIds:
    def test_shape(self):
        tid = new_trace_id("h1")
        assert len(tid) == TRACE_ID_LEN
        assert all(c in "0123456789abcdef" for c in tid)

    def test_deterministic_across_reset(self):
        reset_trace_ids()
        first = [new_trace_id("h1") for _ in range(3)]
        reset_trace_ids()
        second = [new_trace_id("h1") for _ in range(3)]
        assert first == second
        assert len(set(first)) == 3  # consecutive ids differ


class TestPacketCarriage:
    def _packet(self):
        return Packet.udp_packet(
            src_mac=1, dst_mac=2,
            src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int("10.0.0.2"),
            src_port=1000, dst_port=2000, payload=b"hi",
        )

    def test_trace_is_not_on_the_wire(self):
        plain = self._packet()
        traced = plain.with_trace(start_trace("h1"))
        assert traced == plain  # excluded from equality
        assert traced.encode() == plain.encode()
        assert Packet.decode(traced.encode()).trace is None
        assert "TraceContext" not in repr(traced)

    def test_with_trace_carries_cached_wire(self):
        plain = self._packet()
        wire = plain.encode()  # populate the cache first
        traced = plain.with_trace(start_trace("h1"))
        assert traced.encode() == wire


def _host_pair(telemetry):
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("h2", kind="host")
    topo.add_link("h1", 1, "h2", 1)
    sim = Simulator(topo, telemetry=telemetry)
    h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=2, ip=ip_to_int("10.0.0.2"))
    sim.bind(h1)
    sim.bind(h2)
    return sim, h1, h2


class TestPropagation:
    def test_host_stamps_and_simulator_hops(self):
        tel = Telemetry()
        sim, h1, h2 = _host_pair(tel)
        sent = h1.send_udp(
            dst_mac=2, dst_ip=ip_to_int("10.0.0.2"),
            src_port=1000, dst_port=2000, payload=b"x",
        )
        sim.run()
        assert sent.trace is not None and sent.trace.hop == 0
        delivered = h2.received_packets[0].trace
        assert delivered.trace_id == sent.trace.trace_id
        assert delivered.hop == 1
        assert delivered.lineage == ("h1",)
        kinds = [e.kind for e in tel.audit.for_trace(sent.trace.trace_id)]
        assert kinds == [
            AuditKind.TRACE_STARTED,
            AuditKind.PACKET_FORWARDED,
            AuditKind.PACKET_DELIVERED,
        ]

    def test_disabled_telemetry_stamps_nothing(self):
        sim, h1, h2 = _host_pair(None)
        h1.send_udp(
            dst_mac=2, dst_ip=ip_to_int("10.0.0.2"),
            src_port=1000, dst_port=2000, payload=b"x",
        )
        sim.run()
        assert h2.received_packets[0].trace is None

    def test_caller_supplied_context_is_kept(self):
        tel = Telemetry()
        sim, h1, h2 = _host_pair(tel)
        mine = TraceContext(trace_id="abcdef012345", origin="app")
        packet = Packet.udp_packet(
            src_mac=1, dst_mac=2,
            src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int("10.0.0.2"),
            src_port=1, dst_port=2,
        ).with_trace(mine)
        h1.send(packet)
        sim.run()
        assert h2.received_packets[0].trace.trace_id == "abcdef012345"
        # The host must not have restamped an already-traced packet.
        started = [
            e for e in tel.audit.events
            if e.kind == AuditKind.TRACE_STARTED
        ]
        assert started == []
