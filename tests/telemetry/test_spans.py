"""Tests for the span recorder: nesting, clocks, bounding, no-op path."""

from repro.telemetry.spans import NULL_SPAN, SpanRecorder, _NullSpan
from repro.util.clock import SimClock


class TestSpans:
    def test_records_both_clocks(self):
        clock = SimClock()
        rec = SpanRecorder(clock)
        with rec.span("work") as span:
            clock.advance_to(2.5)
        assert span.sim_start == 0.0
        assert span.sim_end == 2.5
        assert span.sim_duration == 2.5
        assert span.wall_duration >= 0.0
        assert rec.records == [span]

    def test_nesting_tracks_depth(self):
        rec = SpanRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                pass
        assert outer.depth == 0
        assert inner.depth == 1
        # Finished inner-first (completion order).
        assert [s.name for s in rec.records] == ["inner", "outer"]

    def test_depth_recovers_after_exit(self):
        rec = SpanRecorder()
        with rec.span("a"):
            pass
        with rec.span("b") as b:
            pass
        assert b.depth == 0

    def test_note_attaches_args(self):
        rec = SpanRecorder()
        with rec.span("lookup", table="ipv4_lpm") as span:
            span.note(hit=True)
        assert span.args == {"table": "ipv4_lpm", "hit": True}

    def test_bind_clock_rebinds_sim_timestamps(self):
        rec = SpanRecorder()
        late = SimClock()
        late.advance_to(10.0)
        rec.bind_clock(late)
        with rec.span("x") as span:
            pass
        assert span.sim_start == 10.0

    def test_ring_bounds_finished_spans(self):
        rec = SpanRecorder(max_spans=2)
        for i in range(5):
            with rec.span(f"s{i}"):
                pass
        assert len(rec) == 2
        assert rec.dropped == 3
        assert [s.name for s in rec.records] == ["s3", "s4"]

    def test_clear(self):
        rec = SpanRecorder()
        with rec.span("x"):
            pass
        rec.clear()
        assert len(rec) == 0


class TestNullSpan:
    def test_noop_context_manager(self):
        with NULL_SPAN as span:
            span.note(anything="goes")
        assert isinstance(span, _NullSpan)

    def test_exceptions_propagate(self):
        try:
            with NULL_SPAN:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("null span swallowed the exception")

    def test_shared_singleton_has_no_state(self):
        assert not hasattr(NULL_SPAN, "__dict__")
