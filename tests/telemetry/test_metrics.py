"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.telemetry.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    render_name,
)


class TestCounter:
    def test_inc(self):
        c = Counter("pkts")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == 3.5

    def test_kind(self):
        assert Counter("x").kind == "counter"


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_observe_buckets(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)   # bucket <= 1.0
        h.observe(1.0)   # inclusive upper bound
        h.observe(5.0)   # bucket <= 10.0
        h.observe(99.0)  # overflow
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(105.5)
        assert h.mean == pytest.approx(105.5 / 4)

    def test_default_buckets(self):
        h = Histogram("lat")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS
        assert len(h.counts) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))

    def test_empty_mean_is_zero(self):
        assert Histogram("lat").mean == 0.0

    def test_snapshot_shape(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["buckets"] == [1.0]
        assert snap["counts"] == [1, 0]
        assert snap["count"] == 1
        assert snap["mean"] == pytest.approx(0.5)


class TestNullObjects:
    def test_null_mutators_are_noops(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_GAUGE.add(5)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_nulls_still_quack(self):
        # Instrumented code holds these without type checks.
        assert NULL_COUNTER.kind == "counter"
        assert NULL_GAUGE.kind == "gauge"
        assert NULL_HISTOGRAM.kind == "histogram"


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("pkts", switch="s1")
        b = reg.counter("pkts", switch="s1")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("pkts", a="1", b="2")
        b = reg.counter("pkts", b="2", a="1")
        assert a is b

    def test_different_labels_are_different_children(self):
        reg = MetricsRegistry()
        s1 = reg.counter("pkts", switch="s1")
        s2 = reg.counter("pkts", switch="s2")
        assert s1 is not s2
        s1.inc()
        assert s2.value == 0.0
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_non_string_label_values_coerced(self):
        reg = MetricsRegistry()
        a = reg.counter("verdicts", accepted=True)
        b = reg.counter("verdicts", accepted="True")
        assert a is b

    def test_snapshot_keys(self):
        reg = MetricsRegistry()
        reg.counter("pkts", switch="s1").inc(3)
        reg.gauge("depth").set(7)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        doc = reg.snapshot()
        assert doc["counters"] == {"pkts{switch=s1}": 3.0}
        assert doc["gauges"] == {"depth": 7.0}
        assert doc["histograms"]["lat"]["count"] == 1


class TestRenderName:
    def test_no_labels(self):
        assert render_name("pkts", ()) == "pkts"

    def test_with_labels(self):
        assert (
            render_name("pkts", (("link", "a->b"), ("switch", "s1")))
            == "pkts{link=a->b,switch=s1}"
        )
