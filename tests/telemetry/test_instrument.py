"""Tests for telemetry wiring: defaults, collectors, end-to-end runs."""

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    default_telemetry,
    global_telemetry,
    reset_default,
    use_default,
)
from repro.telemetry.instrument import ENV_VAR


@pytest.fixture(autouse=True)
def _isolated_default():
    """Leave the ambient default exactly as this test found it."""
    previous = use_default(None)
    yield
    use_default(previous)


class TestDefaultResolution:
    def test_default_is_null_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        reset_default()
        assert default_telemetry() is NULL_TELEMETRY
        assert not default_telemetry().active

    def test_env_var_enables_global(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        reset_default()
        assert default_telemetry() is global_telemetry()
        assert default_telemetry().active

    def test_falsey_env_values_stay_null(self, monkeypatch):
        for value in ("0", "false", "off", "no", ""):
            monkeypatch.setenv(ENV_VAR, value)
            reset_default()
            assert default_telemetry() is NULL_TELEMETRY

    def test_use_default_overrides_and_restores(self):
        mine = Telemetry()
        previous = use_default(mine)
        try:
            assert default_telemetry() is mine
        finally:
            use_default(previous)

    def test_global_is_a_singleton(self):
        assert global_telemetry() is global_telemetry()


class TestGatedAccessors:
    def test_inactive_hands_out_nulls(self):
        tel = Telemetry(active=False)
        tel.counter("x").inc()
        tel.gauge("y").set(1)
        tel.histogram("z").observe(1.0)
        with tel.span("w"):
            pass
        assert len(tel.metrics) == 0
        assert len(tel.spans) == 0

    def test_active_registers(self):
        tel = Telemetry()
        tel.counter("x").inc()
        with tel.span("w"):
            pass
        assert len(tel.metrics) == 1
        assert len(tel.spans) == 1

    def test_null_telemetry_is_inert(self):
        NULL_TELEMETRY.counter("x").inc(100)
        assert len(NULL_TELEMETRY.metrics) == 0


class TestSimulatorIntegration:
    def test_explicit_telemetry_collects_at_run_end(self):
        from repro.net.headers import ip_to_int
        from repro.net.host import Host
        from repro.net.simulator import Simulator
        from repro.net.topology import Topology

        topo = Topology()
        topo.add_node("h1", kind="host")
        topo.add_node("h2", kind="host")
        topo.add_link("h1", 1, "h2", 1)
        tel = Telemetry()
        sim = Simulator(topo, telemetry=tel)
        h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
        h2 = Host("h2", mac=2, ip=ip_to_int("10.0.0.2"))
        sim.bind(h1)
        sim.bind(h2)
        h1.send_udp(dst_mac=2, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()

        counters = {
            k: v for k, v in
            tel.metrics.snapshot()["counters"].items()
        }
        assert counters["net.link.tx_packets{link=h1:1->h2:1}"] == 1.0
        gauges = tel.metrics.snapshot()["gauges"]
        assert gauges["net.sim.packets_transmitted"] == 1.0
        assert gauges["net.sim.dropped_trace_entries"] == 0.0

    def test_disabled_telemetry_records_nothing(self):
        from repro.net.simulator import Simulator
        from repro.net.topology import linear_topology

        sim = Simulator(linear_topology(1))  # ambient default: null
        assert sim.telemetry is NULL_TELEMETRY
        sim.run()
        assert len(NULL_TELEMETRY.metrics) == 0


class TestUseCaseEndToEnd:
    """Acceptance: an ambient-enabled UC1 run yields per-switch
    evidence counters, pipeline-stage spans and the verify-cache
    hit rate — without the use case knowing telemetry exists."""

    def test_uc1_run_is_fully_observed(self):
        from repro.core.usecases import run_config_assurance
        from repro.telemetry import snapshot

        tel = Telemetry()
        previous = use_default(tel)
        try:
            result = run_config_assurance(packets=4, swap_at=2)
        finally:
            use_default(previous)
        assert result.first_rejection is not None

        doc = snapshot(tel)
        gauges = doc["metrics"]["gauges"]
        # Per-switch evidence-block gauges for both chain switches.
        for switch in ("s1", "s2"):
            assert gauges[f"pera.measurements_taken{{switch={switch}}}"] > 0
            assert gauges[f"pera.records_created{{switch={switch}}}"] > 0
            assert gauges[f"pera.signatures_produced{{switch={switch}}}"] > 0
            assert f"pera.cache.hit_rate{{switch={switch}}}" in gauges
        # The shared memoized-verification cache is summarized too.
        assert "evidence.verify_cache.hit_rate" in gauges
        # Appraisal verdicts were counted with their outcomes.
        counters = doc["metrics"]["counters"]
        accepted = sum(
            v for k, v in counters.items()
            if k.startswith("core.path_verdicts{accepted=True")
        )
        rejected = sum(
            v for k, v in counters.items()
            if k.startswith("core.path_verdicts{accepted=False")
        )
        assert accepted > 0 and rejected > 0
        # Pipeline stages were spanned per switch track.
        span_names = {s["name"] for s in doc["spans"]}
        assert {"pisa.parse", "pisa.stage", "pisa.deparse",
                "pera.attest", "pera.sign", "core.appraise"} <= span_names
        tracks = {s["track"] for s in doc["spans"]}
        assert {"s1", "s2"} <= tracks
