"""Tests for the post-run audit report CLI (`python -m repro.telemetry.report`)."""

import json

import pytest

from repro.telemetry import AuditKind, Check, Telemetry, TraceContext, dump_audit
from repro.telemetry.export import dump_json
from repro.telemetry.report import (
    chrome_trace_from_snapshot,
    load_audit,
    main,
    overview,
    render_report,
)
from repro.telemetry.timeseries import dump_timeseries, timeseries_snapshot

TID = "abcdef012345"


def worked_telemetry() -> Telemetry:
    tel = Telemetry()
    ctx = TraceContext(trace_id=TID, origin="h1")
    tel.audit_event(AuditKind.TRACE_STARTED, "h1", trace=ctx)
    tel.audit_event(
        AuditKind.EVIDENCE_CREATED, "s1", trace=ctx.hopped("h1"),
        digest=b"\xaa\xbb", place="s1", sequence=1,
    )
    tel.audit_event(
        AuditKind.CHECK_FAILED, "A", trace=ctx.hopped("h1").hopped("s1"),
        check=Check.MEASUREMENT, message="does not match", place="s1",
    )
    tel.audit_event(
        AuditKind.VERDICT_ISSUED, "A", trace=ctx.hopped("h1").hopped("s1"),
        accepted=False, records=1, failures=1,
    )
    tel.audit_event(AuditKind.CONTROL_SENT, "s1", recipient="collector")
    with tel.span("pisa.parse", track="s1", trace=TID, hop=1):
        pass
    return tel


@pytest.fixture
def audit_path(tmp_path):
    return dump_audit(worked_telemetry(), tmp_path / "audit.json")


class TestLoadAudit:
    def test_round_trips(self, audit_path):
        doc = load_audit(audit_path)
        assert doc["schema"] == "repro.audit/v1"
        assert len(doc["events"]) == 5

    def test_rejects_non_audit_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"metrics": {}}))
        with pytest.raises(ValueError, match="no 'events' key"):
            load_audit(path)


class TestRendering:
    def test_overview_counts(self, audit_path):
        text = overview(load_audit(audit_path))
        assert "events:   5" in text
        assert "traces:   1" in text
        assert "verdicts: 1 (1 rejected)" in text
        assert "failed checks: 1" in text
        assert AuditKind.VERDICT_ISSUED in text  # by-kind table

    def test_report_includes_narrative_and_untraced_note(self, audit_path):
        text = render_report(load_audit(audit_path))
        assert f"trace {TID}:" in text
        assert "verdict REJECTED" in text
        assert "1 events carry no trace" in text

    def test_single_trace_filter(self, audit_path):
        text = render_report(load_audit(audit_path), trace=TID)
        assert f"trace {TID}:" in text
        assert "carry no trace" not in text

    def test_overview_without_stats_omits_congestion_block(self, audit_path):
        assert "congestion & recovery" not in overview(load_audit(audit_path))

    def test_overview_surfaces_congestion_stats(self, audit_path):
        stats = {
            "queue_drops": 12,
            "ecn_marked": 34,
            "pause_frames": 5,
            "local_resends": 7,
            "recovery_retransmits": 7,
            "recovery_held": 2,
        }
        text = overview(load_audit(audit_path), stats=stats)
        assert "congestion & recovery:" in text
        assert "queue drops" in text and "12" in text
        assert "ECN marks" in text and "34" in text
        assert "pause frames" in text and "5" in text
        assert "local resends" in text
        assert "recovery retransmits" in text

    def test_overview_defaults_missing_stat_keys_to_zero(self, audit_path):
        text = overview(load_audit(audit_path), stats={})
        assert "congestion & recovery:" in text
        assert "queue drops" in text


class TestChromeReconstruction:
    def test_flow_events_from_snapshot(self, tmp_path):
        snapshot_path = dump_json(worked_telemetry(), tmp_path / "tel.json")
        doc = chrome_trace_from_snapshot(json.loads(snapshot_path.read_text()))
        assert doc["otherData"]["schema"] == "repro.trace/v1"
        assert doc["otherData"]["timebase"] == "sim"
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "t")]
        assert [f["id"] for f in flows] == [TID]
        assert flows[0]["ph"] == "s"  # the first occurrence starts the flow


class TestMain:
    def test_renders_report(self, audit_path, capsys):
        assert main([str(audit_path)]) == 0
        out = capsys.readouterr().out
        assert "audit report (repro.audit/v1)" in out
        assert f"trace {TID}:" in out

    def test_chrome_out_requires_telemetry(self, audit_path, tmp_path):
        with pytest.raises(SystemExit):
            main([str(audit_path), "--chrome-out", str(tmp_path / "t.json")])

    def test_stats_flag_adds_congestion_block(
        self, audit_path, tmp_path, capsys
    ):
        stats_path = tmp_path / "stats.json"
        stats_path.write_text(json.dumps({
            "queue_drops": 3, "pause_frames": 1, "local_resends": 2,
        }))
        assert main([str(audit_path), "--stats", str(stats_path)]) == 0
        out = capsys.readouterr().out
        assert "congestion & recovery:" in out
        assert "queue drops" in out

    def test_stats_flag_rejects_non_object(self, audit_path, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        stats_path.write_text("[1, 2, 3]")
        assert main([str(audit_path), "--stats", str(stats_path)]) == 2
        assert "not a stats export" in capsys.readouterr().err

    def test_chrome_out_writes_trace(self, audit_path, tmp_path, capsys):
        tel_path = dump_json(worked_telemetry(), tmp_path / "tel.json")
        out_path = tmp_path / "stitched.json"
        assert main([
            str(audit_path),
            "--telemetry", str(tel_path),
            "--chrome-out", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert any(e["ph"] == "s" for e in doc["traceEvents"])
        assert "chrome trace written" in capsys.readouterr().out


@pytest.fixture
def timeseries_path(tmp_path):
    doc = timeseries_snapshot(
        frames=[
            {"w": 0, "t": 0.002, "v": {"net.link.tx_packets{link=a:1->b:1}": 3.0}},
            {"w": 2, "t": 0.006, "v": {
                "net.link.tx_packets{link=a:1->b:1}": 1.0,
                "net.link.dropped": 2.0,
            }},
        ],
        interval_s=0.002,
        alerts=[
            {
                "seq": 1, "time_s": 0.006, "kind": "alert.raised",
                "actor": "health",
                "detail": {"rule": "drops", "window": 2, "value": 2.0},
            },
        ],
        rules=[{"name": "drops", "type": "threshold", "metric": "net.link.dropped"}],
    )
    path = tmp_path / "TIMESERIES.json"
    dump_timeseries(doc, path)
    return path


class TestTimelineSubcommand:
    def test_renders_sparklines(self, timeseries_path, capsys):
        assert main(["timeline", str(timeseries_path)]) == 0
        out = capsys.readouterr().out
        assert "timeline (repro.timeseries/v1)" in out
        assert "net.link.tx_packets{link=a:1->b:1}" in out
        assert "total 4" in out

    def test_metric_filter(self, timeseries_path, capsys):
        assert main(
            ["timeline", str(timeseries_path), "--metric", "dropped"]
        ) == 0
        out = capsys.readouterr().out
        assert "net.link.dropped" in out
        assert "tx_packets" not in out


class TestHealthSubcommand:
    def test_renders_alert_timeline(self, timeseries_path, capsys):
        assert main(["health", str(timeseries_path)]) == 0
        out = capsys.readouterr().out
        assert "rules:   1" in out
        assert "alert.raised drops" in out
        assert "RAISED" in out  # never cleared -> still raised at end


class TestErrorExits:
    """Satellite contract: bad inputs exit 2 with a clear one-line
    stderr message in every mode — never a traceback."""

    def test_missing_file_timeline(self, tmp_path, capsys):
        assert main(["timeline", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope.json" in err

    def test_missing_file_legacy_mode(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unparseable_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["health", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_schema_mismatch(self, tmp_path, capsys):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "repro.audit/v1"}))
        assert main(["timeline", str(wrong)]) == 2
        err = capsys.readouterr().err
        assert "repro.audit/v1" in err and "repro.timeseries/v1" in err

    def test_audit_document_without_events(self, tmp_path, capsys):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"metrics": {}}))
        assert main([str(wrong)]) == 2
        assert "no 'events' key" in capsys.readouterr().err
