"""Tests for telemetry exports: JSON snapshot, Chrome trace, summary."""

import json

import pytest

from repro.telemetry import (
    Telemetry,
    chrome_trace,
    dump_json,
    dump_run,
    snapshot,
    summary,
    write_chrome_trace,
)


def worked_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.counter("net.link.tx_packets", link="a->b").inc(3)
    tel.gauge("net.sim.packets_dropped").set(1)
    tel.histogram("ra.appraise_seconds", appraiser="A").observe(0.002)
    with tel.span("pisa.parse", track="s1"):
        with tel.span("pisa.stage", track="s1", table="ipv4_lpm") as inner:
            inner.note(hit=True)
    return tel


class TestSnapshot:
    def test_document_shape(self):
        doc = snapshot(worked_telemetry())
        assert doc["active"] is True
        assert doc["metrics"]["counters"]["net.link.tx_packets{link=a->b}"] == 3.0
        assert doc["spans_dropped"] == 0
        names = [s["name"] for s in doc["spans"]]
        assert names == ["pisa.stage", "pisa.parse"]
        stage = doc["spans"][0]
        assert stage["depth"] == 1
        assert stage["args"] == {"table": "ipv4_lpm", "hit": True}
        assert stage["wall_duration_s"] >= 0.0

    def test_snapshot_includes_global_collectors(self):
        doc = snapshot(Telemetry())
        assert "evidence.verify_cache.hit_rate" in doc["metrics"]["gauges"]

    def test_dump_json_round_trips(self, tmp_path):
        path = dump_json(worked_telemetry(), tmp_path / "tel.json")
        doc = json.loads(path.read_text())
        assert doc["metrics"]["gauges"]["net.sim.packets_dropped"] == 1.0


class TestChromeTrace:
    def test_complete_events_and_thread_names(self):
        doc = chrome_trace(worked_telemetry())
        completes = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in completes} == {"pisa.parse", "pisa.stage"}
        assert metas[0]["args"]["name"] == "s1"
        for event in completes:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["cat"] == "pisa"

    def test_sim_timebase(self):
        doc = chrome_trace(worked_telemetry(), timebase="sim")
        assert doc["otherData"]["timebase"] == "sim"
        # Same-event work is instantaneous in simulated time.
        completes = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] == 0.0 for e in completes)

    def test_bad_timebase_rejected(self):
        with pytest.raises(ValueError, match="timebase"):
            chrome_trace(Telemetry(), timebase="lunar")

    def test_write_is_valid_json(self, tmp_path):
        path = write_chrome_trace(worked_telemetry(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


class TestSummary:
    def test_mentions_everything_recorded(self):
        text = summary(worked_telemetry())
        assert "net.link.tx_packets{link=a->b}" in text
        assert "net.sim.packets_dropped" in text
        assert "ra.appraise_seconds{appraiser=A}" in text
        assert "pisa.stage" in text

    def test_empty_telemetry(self):
        tel = Telemetry(active=False)
        assert summary(tel) == "(no telemetry recorded)"

    def test_max_rows_truncates(self):
        tel = Telemetry()
        for i in range(5):
            tel.counter(f"c{i}").inc()
        text = summary(tel, max_rows=2)
        assert "... 3 more" in text


class TestDumpRun:
    def test_writes_only_what_was_asked(self, tmp_path):
        tel = worked_telemetry()
        assert dump_run(tel) == []
        written = dump_run(
            tel,
            json_path=tmp_path / "t.json",
            trace_path=tmp_path / "t_trace.json",
        )
        assert [p.name for p in written] == ["t.json", "t_trace.json"]
        for path in written:
            json.loads(path.read_text())
