"""The single-fault matrix: each resilience mechanism fires alone."""

import pytest

from repro.core.chaos import fault_matrix_kinds, run_fault_matrix


class TestFaultMatrix:
    def test_every_family_shows_its_signal(self):
        entries = run_fault_matrix(seed=7, packets=18)
        assert set(entries) == set(fault_matrix_kinds())
        missing = [k for k, e in entries.items() if not e.signal_seen]
        assert not missing, missing

    def test_kinds_subset_and_unknown_kind(self):
        entries = run_fault_matrix(seed=7, packets=18, kinds=["link_loss"])
        assert list(entries) == ["link_loss"]
        with pytest.raises(Exception):
            run_fault_matrix(seed=7, packets=18, kinds=["volcano"])

    def test_compromise_rejected_and_recovered(self):
        entry = run_fault_matrix(
            seed=7, packets=18, kinds=["compromise"]
        )["compromise"]
        assert entry.signal_seen
        result = entry.result
        assert result.first_rejection is not None
        # Operator reprovision restores acceptance after the rogue window.
        assert any(v.accepted for v in result.verdicts)

    def test_sharded_matrix_matches_single_shard(self):
        kinds = ["link_loss", "compromise", "clock_skew"]
        sharded = run_fault_matrix(
            seed=7, packets=18, shards=2, backend="inline", kinds=kinds
        )
        single = run_fault_matrix(
            seed=7, packets=18, shards=1, backend="inline", kinds=kinds
        )
        for kind in kinds:
            a = sharded[kind].result.sharded
            b = single[kind].result.sharded
            assert a.audit_export() == b.audit_export(), kind
            assert a.stats_export() == b.stats_export(), kind
            assert sharded[kind].signal_seen and single[kind].signal_seen
