"""Unit tests for PathAppraiser edge cases (no simulator involved)."""


from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    program_reference,
)
from repro.core.compiler import CompiledPolicy, HopDirective
from repro.crypto.hashing import HashChain, digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.pera.inertia import InertiaClass
from repro.pera.records import HopRecord
from repro.pisa.programs import firewall_program


def chained_records(count, keys=None):
    """Build an honest chained record sequence by hand."""
    keys = keys or [KeyPair.generate(f"s{i}") for i in range(count)]
    records = []
    head = HashChain.GENESIS
    for i, pair in enumerate(keys):
        measurements = ((InertiaClass.PROGRAM, bytes([i]) * 32),)
        link = digest(
            b"".join(v for _, v in measurements), domain="hop-measurements"
        )
        head = HashChain(head=head).extend(link)
        records.append(HopRecord(
            place=pair.owner, measurements=measurements,
            sequence=1, chain_head=head,
        ).sign_with(pair))
    return records, keys


def appraiser_with(keys, records, **overrides):
    anchors = KeyRegistry()
    references = {}
    for pair, record in zip(keys, records):
        anchors.register_pair(pair)
        references[pair.owner] = {
            InertiaClass.PROGRAM: record.measurement_for(InertiaClass.PROGRAM),
        }
    defaults = dict(anchors=anchors, reference_measurements=references)
    defaults.update(overrides)
    return PathAppraiser("A", PathAppraisalPolicy(**defaults))


class TestAppraiseRecords:
    def test_honest_chain_accepted(self):
        records, keys = chained_records(3)
        appraiser = appraiser_with(keys, records)
        verdict = appraiser.appraise_records(records, hop_count=3)
        assert verdict.accepted, verdict.failures

    def test_empty_records_zero_hops_accepted(self):
        records, keys = chained_records(1)
        appraiser = appraiser_with(keys, records)
        verdict = appraiser.appraise_records([], hop_count=0)
        assert verdict.accepted

    def test_more_records_than_hops_rejected(self):
        records, keys = chained_records(2)
        appraiser = appraiser_with(keys, records)
        verdict = appraiser.appraise_records(records, hop_count=1)
        assert not verdict.accepted
        assert any("only 1 hops" in f for f in verdict.failures)

    def test_fewer_records_than_hops_rejected_unless_sampling(self):
        records, keys = chained_records(2)
        strict = appraiser_with(keys, records)
        assert not strict.appraise_records(records[:1], hop_count=2).accepted
        lenient = appraiser_with(keys, records, allow_sampling=True)
        # Note: the partial chain itself is valid (prefix), so only the
        # coverage check is being relaxed here.
        assert lenient.appraise_records(records[:1], hop_count=2).accepted

    def test_mixed_chained_unchained_rejected(self):
        records, keys = chained_records(2)
        from dataclasses import replace

        broken = [records[0], replace(records[1], chain_head=None)]
        # Re-sign the modified record so only the mixing is at fault.
        broken[1] = HopRecord(
            place=broken[1].place, measurements=broken[1].measurements,
            sequence=broken[1].sequence, chain_head=None,
        ).sign_with(keys[1])
        appraiser = appraiser_with(keys, records)
        verdict = appraiser.appraise_records(broken, hop_count=2)
        assert not verdict.accepted
        assert any("some records are chained" in f for f in verdict.failures)

    def test_unknown_place_strictness(self):
        records, keys = chained_records(1)
        stranger_keys = KeyPair.generate("stranger")
        stranger = HopRecord(
            place="stranger",
            measurements=((InertiaClass.PROGRAM, b"\x09" * 32),),
            chain_head=None,
        ).sign_with(stranger_keys)
        anchors = KeyRegistry()
        anchors.register_pair(stranger_keys)
        strict = PathAppraiser("A", PathAppraisalPolicy(
            anchors=anchors, reference_measurements={}, strict_places=True,
        ))
        verdict = strict.appraise_records([stranger], hop_count=1)
        assert not verdict.accepted
        loose = PathAppraiser("A", PathAppraisalPolicy(
            anchors=anchors, reference_measurements={}, strict_places=False,
        ))
        assert loose.appraise_records([stranger], hop_count=1).accepted

    def test_required_function_wildcard_place(self):
        program = firewall_program()
        pair = KeyPair.generate("s0")
        record = HopRecord(
            place="s0",
            measurements=((InertiaClass.PROGRAM, program_reference(program)),),
        ).sign_with(pair)
        anchors = KeyRegistry()
        anchors.register_pair(pair)
        appraiser = PathAppraiser("A", PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements={
                "s0": {InertiaClass.PROGRAM: program_reference(program)}
            },
            program_names={program_reference(program): program.full_name},
        ))
        compiled = CompiledPolicy(
            policy_id="x", relying_party="rp", nonce=b"", appraiser="A",
            hop=HopDirective(),
            required_functions=(("*", program.full_name),),
            min_attested_hops=1,
        )
        verdict = appraiser.appraise_records([record], hop_count=1,
                                             compiled=compiled)
        assert verdict.accepted, verdict.failures
        assert verdict.functions_seen == (program.full_name,)

    def test_required_function_at_wrong_place_rejected(self):
        program = firewall_program()
        pair = KeyPair.generate("s0")
        record = HopRecord(
            place="s0",
            measurements=((InertiaClass.PROGRAM, program_reference(program)),),
        ).sign_with(pair)
        anchors = KeyRegistry()
        anchors.register_pair(pair)
        appraiser = PathAppraiser("A", PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements={
                "s0": {InertiaClass.PROGRAM: program_reference(program)}
            },
            program_names={program_reference(program): program.full_name},
        ))
        compiled = CompiledPolicy(
            policy_id="x", relying_party="rp", nonce=b"", appraiser="A",
            hop=HopDirective(),
            required_functions=(("s9", program.full_name),),
            min_attested_hops=1,
        )
        verdict = appraiser.appraise_records([record], hop_count=1,
                                             compiled=compiled)
        assert not verdict.accepted

    def test_unreferenced_required_function_ignored(self):
        # The policy asks for a function the appraiser has no golden
        # name for: it cannot be checked, so it is not a failure here
        # (the RP chooses appraisers that know its functions).
        records, keys = chained_records(1)
        appraiser = appraiser_with(keys, records)
        compiled = CompiledPolicy(
            policy_id="x", relying_party="rp", nonce=b"", appraiser="A",
            hop=HopDirective(),
            required_functions=(("*", "unknown-fn"),),
            min_attested_hops=1,
        )
        verdict = appraiser.appraise_records(records, hop_count=1,
                                             compiled=compiled)
        assert verdict.accepted

    def test_verdict_describe(self):
        records, keys = chained_records(2)
        appraiser = appraiser_with(keys, records)
        verdict = appraiser.appraise_records(records, hop_count=2)
        text = verdict.describe()
        assert "ACCEPTED" in text and "2 records" in text
