"""Tests for the UC1-UC5 scenario builders and the design-space sweep."""

import pytest

from repro.core.design_space import (
    format_table,
    run_design_point,
    sweep,
)
from repro.core.usecases import (
    run_ap1_complete,
    run_audit_trail,
    run_config_assurance,
    run_cross_referenced,
    run_ddos_mitigation,
    run_path_authentication,
)
from repro.pera.config import CompositionMode, DetailLevel, EvidenceConfig
from repro.pera.sampling import SamplingMode, SamplingSpec


class TestUc1ConfigAssurance:
    def test_honest_run_all_accepted(self):
        result = run_config_assurance(packets=5, swap_at=None)
        assert result.first_rejection is None
        assert all(v.accepted for v in result.verdicts)
        assert result.exfiltrated == 0

    def test_swap_detected_at_first_rogue_packet(self):
        result = run_config_assurance(packets=10, swap_at=4)
        assert result.first_rejection == 4
        assert result.detection_delay == 0
        # Packets before the swap were fine.
        assert all(v.accepted for v in result.verdicts[:4])
        assert not any(v.accepted for v in result.verdicts[4:])

    def test_exfiltration_actually_happens(self):
        # The rogue program really does clone traffic — RA detects it,
        # it does not prevent it.
        result = run_config_assurance(packets=10, swap_at=4)
        assert result.exfiltrated == 6

    def test_sampling_delays_detection(self):
        result = run_config_assurance(
            packets=12, swap_at=2,
            sampling=SamplingSpec(mode=SamplingMode.ONE_IN_N, n=4),
        )
        assert result.first_rejection is not None
        assert result.detection_delay > 0


class TestUc2PathAuthentication:
    def test_home_path_grants_access(self):
        result = run_path_authentication(from_home_path=True)
        assert result.access_granted
        assert result.hops_attested == 3

    def test_unknown_path_denied(self):
        result = run_path_authentication(from_home_path=False)
        assert not result.access_granted


class TestAp1Complete:
    def test_both_halves_clean_accepted(self):
        result = run_ap1_complete(client_compromised=False)
        assert result.path_verdict.accepted
        assert result.client_bmon_clean and result.client_exts_clean
        assert result.accepted

    def test_compromised_client_rejected_path_still_fine(self):
        result = run_ap1_complete(client_compromised=True)
        assert result.path_verdict.accepted  # the network is honest...
        # ...but the sequenced host protocol catches the corrupt bmon.
        assert not result.client_bmon_clean
        assert not result.accepted


class TestUc3Ddos:
    def test_gating_drops_attack_keeps_goodput(self):
        result = run_ddos_mitigation(under_attack=True)
        assert result.goodput_kept == 1.0
        assert result.attack_passed == 0.0
        assert result.gated_drops == result.attack_sent

    def test_no_gating_lets_attack_through(self):
        result = run_ddos_mitigation(under_attack=False)
        assert result.attack_passed == 1.0


class TestUc4AuditTrail:
    def test_c2_matches_counted_and_committed(self):
        result = run_audit_trail(c2_flows=3, benign_flows=5)
        assert result.matches == 3
        assert result.proofs_verify
        assert result.verdict_accepted

    def test_no_matches_no_findings(self):
        result = run_audit_trail(c2_flows=0, benign_flows=4)
        assert result.matches == 0


class TestUc5CrossReferenced:
    def test_verified_tls_allowed(self):
        result = run_cross_referenced(verified_tls=True)
        assert result.host_evidence_ok
        assert result.path_verdict.accepted
        assert result.flow_allowed

    def test_unverified_tls_blocked(self):
        result = run_cross_referenced(verified_tls=False)
        assert not result.host_evidence_ok
        assert not result.flow_allowed
        # The network path itself was fine — only the host failed.
        assert result.path_verdict.accepted


class TestDesignSpace:
    def test_pointwise_caches(self):
        result = run_design_point(
            EvidenceConfig(composition=CompositionMode.POINTWISE),
            packet_count=20, switch_count=2,
        )
        assert result.signatures_per_packet < 0.5
        assert result.cache_hit_rate > 0.8

    def test_traffic_path_signs_every_packet(self):
        result = run_design_point(
            EvidenceConfig(composition=CompositionMode.TRAFFIC_PATH),
            packet_count=10, switch_count=2,
        )
        assert result.signatures_per_packet == pytest.approx(2.0)

    def test_sampling_cuts_cost(self):
        full = run_design_point(
            EvidenceConfig(composition=CompositionMode.CHAINED),
            packet_count=20, switch_count=2,
        )
        sampled = run_design_point(
            EvidenceConfig(
                composition=CompositionMode.CHAINED,
                sampling=SamplingSpec(mode=SamplingMode.ONE_IN_N, n=4),
            ),
            packet_count=20, switch_count=2,
        )
        assert sampled.ra_cost_per_packet < full.ra_cost_per_packet / 2

    def test_detail_grows_evidence(self):
        minimal = run_design_point(
            EvidenceConfig(detail=DetailLevel.MINIMAL,
                           composition=CompositionMode.CHAINED),
            packet_count=10, switch_count=2,
        )
        expansive = run_design_point(
            EvidenceConfig(detail=DetailLevel.EXPANSIVE,
                           composition=CompositionMode.CHAINED),
            packet_count=10, switch_count=2,
        )
        assert expansive.evidence_bytes_per_packet > minimal.evidence_bytes_per_packet

    def test_sweep_covers_grid(self):
        results = sweep(
            details=[DetailLevel.MINIMAL],
            compositions=list(CompositionMode),
            packet_count=5, switch_count=2,
        )
        assert len(results) == 3
        assert all(r.packets_delivered == 5 for r in results)

    def test_format_table(self):
        results = sweep(
            details=[DetailLevel.MINIMAL],
            compositions=[CompositionMode.POINTWISE],
            packet_count=3, switch_count=2,
        )
        table = format_table(results)
        assert "detail" in table and "pointwise" in table
        assert format_table([]) == "(no results)"
