"""The monitoring acceptance story: campaigns under the flight recorder.

Three contracts from docs/MONITORING.md, pinned end to end:

- **Coverage**: under the standard chaos plan, every fault family
  raises its mapped alert within two sample windows of activation and
  the alert clears after recovery; a fault-free baseline raises zero
  alerts (no false positives).
- **Determinism**: frame streams and the full timeseries export are
  byte-identical across the monolith and shard counts {1, 2, 4} on
  the inline backend, plus one multiprocessing case per campaign.
- **Integration**: alerts fold into the audit journal canonically and
  the TIMESERIES.json artifact feeds the report CLI's ``timeline`` /
  ``health`` subcommands.
"""

import json

import pytest

from repro.core.chaos import (
    CHAOS_ALERT_FAMILIES,
    assert_chaos_alert_coverage,
    chaos_alert_coverage,
    run_chaos_athens,
    standard_chaos_rules,
)
from repro.core.fabric import (
    FatTreeShape,
    run_fabric_traffic,
    run_fabric_traffic_monolith,
    standard_fabric_rules,
)
from repro.faults.plan import FaultPlan
from repro.net.qdisc import QueueConfig
from repro.telemetry.report import main as report_main
from repro.telemetry.timeseries import TIMESERIES_SCHEMA, dump_timeseries

SHARD_COUNTS = (1, 2, 4)

FABRIC_SHAPE = FatTreeShape()


@pytest.fixture(scope="module")
def chaos_monolith():
    return run_chaos_athens(health=standard_chaos_rules())


@pytest.fixture(scope="module")
def fabric_monolith():
    return run_fabric_traffic_monolith(
        shape=FABRIC_SHAPE, health=standard_fabric_rules()
    )


class TestChaosAlertCoverage:
    def test_every_fault_family_is_detected_and_clears(self, chaos_monolith):
        coverage = assert_chaos_alert_coverage(chaos_monolith)
        detected = {kind for kind in coverage}
        planned = {
            e.kind
            for e in chaos_monolith.plan.events
            if e.kind in CHAOS_ALERT_FAMILIES
            and not (
                e.kind in ("link_loss", "packet_corrupt")
                and float(e.params.get("rate", 0.0)) == 0.0
            )
        }
        assert detected == planned
        assert all(entry["cleared"] for entry in coverage.values())

    def test_detection_lands_within_two_windows(self, chaos_monolith):
        coverage = chaos_alert_coverage(chaos_monolith, within_windows=2)
        for kind, entry in coverage.items():
            hits = [
                a["raised_window"]
                for a in entry["activations"]
                if a["raised_window"] is not None
            ]
            assert hits, f"{kind} never detected"
            for activation in entry["activations"]:
                if activation["raised_window"] is not None:
                    assert (
                        activation["raised_window"]
                        <= activation["window"] + 2
                    )

    def test_fault_free_baseline_raises_nothing(self):
        result = run_chaos_athens(
            plan_factory=lambda seed: FaultPlan(seed=seed),
            reprovision_at=None,
            health=standard_chaos_rules(),
        )
        assert result.health.alerts == []
        assert result.health.active == {}
        # The journal gains no alert events either.
        kinds = {e.kind for e in result.telemetry.audit.events}
        assert "alert.raised" not in kinds

    def test_alerts_fold_into_audit_journal(self, chaos_monolith):
        events = chaos_monolith.telemetry.audit.events
        kinds = [e.kind for e in events]
        assert "alert.raised" in kinds and "alert.cleared" in kinds
        assert [e.seq for e in events] == list(range(1, len(events) + 1))
        alert_times = [
            e.time_s for e in events if e.kind.startswith("alert.")
        ]
        assert alert_times == sorted(alert_times)


class TestChaosFrameDeterminism:
    def test_inline_shards_match_monolith(self, chaos_monolith):
        frames = chaos_monolith.frames_export()
        doc = chaos_monolith.timeseries_export()
        for shards in SHARD_COUNTS:
            sharded = run_chaos_athens(
                shards=shards, health=standard_chaos_rules()
            )
            assert sharded.frames_export() == frames, f"shards={shards}"
            assert sharded.timeseries_export() == doc, f"shards={shards}"
            assert sharded.audit_export() == chaos_monolith.audit_export()

    def test_mp_backend_matches_monolith(self, chaos_monolith):
        sharded = run_chaos_athens(
            shards=2, backend="mp", health=standard_chaos_rules()
        )
        assert sharded.frames_export() == chaos_monolith.frames_export()
        assert (
            sharded.timeseries_export() == chaos_monolith.timeseries_export()
        )

    def test_sampling_without_health_records_frames_only(self):
        from repro.core.chaos import chaos_sampling_spec

        result = run_chaos_athens(sampling=chaos_sampling_spec())
        assert result.frames
        assert result.health is None
        assert result.timeseries()["alerts"] == []


class TestFabricFrameDeterminism:
    def test_inline_shards_match_monolith(self, fabric_monolith):
        frames = fabric_monolith.frames_export()
        doc = fabric_monolith.timeseries_export()
        assert fabric_monolith.frames, "campaign should have recorded frames"
        for shards in SHARD_COUNTS:
            sharded = run_fabric_traffic(
                shape=FABRIC_SHAPE,
                shards=shards,
                health=standard_fabric_rules(),
            )
            assert sharded.frames_export() == frames, f"shards={shards}"
            assert sharded.timeseries_export() == doc, f"shards={shards}"

    def test_mp_backend_matches_monolith(self, fabric_monolith):
        sharded = run_fabric_traffic(
            shape=FABRIC_SHAPE,
            shards=2,
            backend="mp",
            health=standard_fabric_rules(),
        )
        assert sharded.frames_export() == fabric_monolith.frames_export()

    def test_default_shape_raises_no_alerts(self, fabric_monolith):
        assert fabric_monolith.health.alerts == []


#: Tight buffers + an 8-way incast: queues overflow, ECN marks, PFC
#: pauses storm — the congestion rules must see all of it.
CONGESTED_SHAPE = FatTreeShape(
    queue=QueueConfig(
        capacity_bytes=8192,
        capacity_packets=32,
        ecn_threshold_bytes=2048,
        pause_threshold_bytes=4096,
    ),
    incast_fan_in=8,
)

#: Same fabric with queues so roomy the campaign never fills them —
#: the congestion rules must stay silent on it.
CALM_QUEUED_SHAPE = FatTreeShape(
    queue=QueueConfig(
        capacity_bytes=1 << 20,
        capacity_packets=4096,
        ecn_threshold_bytes=1 << 19,
        pause_threshold_bytes=1 << 19,
    ),
)

_CONGESTION_RULES = dict(queue_depth_bytes=4096.0)


class TestCongestionAlerts:
    def test_congested_incast_raises_queue_and_pause_rules(self):
        result = run_fabric_traffic_monolith(
            shape=CONGESTED_SHAPE,
            health=standard_fabric_rules(**_CONGESTION_RULES),
        )
        raised = {
            a["detail"]["rule"]
            for a in result.health.alerts
            if a["kind"] == "alert.raised"
        }
        assert "queue-depth" in raised
        assert "pause-storm" in raised
        # Tail-drops under incast also trip the loss rule.
        assert "fabric-drops" in raised

    def test_calm_queued_baseline_is_silent(self):
        result = run_fabric_traffic_monolith(
            shape=CALM_QUEUED_SHAPE,
            health=standard_fabric_rules(**_CONGESTION_RULES),
        )
        assert result.health.alerts == []

    def test_congested_alerts_identical_across_shards(self):
        def timeline(shards):
            result = run_fabric_traffic(
                CONGESTED_SHAPE,
                shards=shards,
                health=standard_fabric_rules(**_CONGESTION_RULES),
            )
            return json.dumps(result.health.alerts, sort_keys=True)

        base = timeline(1)
        assert timeline(2) == base
        assert timeline(4) == base


class TestTimeseriesArtifact:
    def test_dump_feeds_report_subcommands(
        self, chaos_monolith, tmp_path, capsys
    ):
        path = tmp_path / "TIMESERIES.json"
        dump_timeseries(chaos_monolith.timeseries(), path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == TIMESERIES_SCHEMA

        assert report_main(["timeline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "net.link.tx_packets" in out

        assert report_main(["health", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dataplane-drops" in out
        assert "alert.raised" in out
