"""Every path-appraisal failure kind leaves exactly one matching audit event.

The matrix drives one honest delivered packet through tampered
appraisals — a bad signature, a stripped hop, reordered (spliced)
records, a stale nonce — and asserts each rejection is mirrored by
exactly one ``check.failed`` journal entry naming the right check.
"""

import pytest

from repro.core.appraisal import PathAppraisalPolicy, PathAppraiser
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.usecases import _appraiser_for, _pera_chain
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.net.headers import RaShimHeader, ip_to_int
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.records import decode_record_stack
from repro.pisa.programs import firewall_program
from repro.ra.nonce import NonceManager
from repro.telemetry import AuditKind, Check, Telemetry, TraceContext

TRACE = TraceContext(trace_id="abcdef012345", hop=3, origin="h-src")


@pytest.fixture(scope="module")
def delivered():
    """One honest 2-switch CHAINED run: (records, hop_count, switches)."""
    config = EvidenceConfig(composition=CompositionMode.CHAINED)
    program = firewall_program()
    sim, src, dst, switches = _pera_chain(2, config, programs=[program] * 2)
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src", "s1", "s2", "h-dst"],
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=b"probe",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY, body=encode_compiled_policy(policy)
        ),
    )
    sim.run()
    shim = dst.received_packets[0].ra_shim
    return decode_record_stack(shim.body), shim.hop_count, switches, program


def _appraiser(switches, program, telemetry, **kwargs):
    base = _appraiser_for(switches, [program] * len(switches))
    return PathAppraiser(
        "Appraiser", base.policy, telemetry=telemetry, **kwargs
    )


def _check_failures(telemetry):
    return [
        e for e in telemetry.audit.events if e.kind == AuditKind.CHECK_FAILED
    ]


class TestFailureMatrix:
    def test_bad_signature(self, delivered):
        records, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        # Drop s1's trust anchor: record 0's signer becomes untrusted.
        anchors = KeyRegistry()
        anchors.register_pair(switches[1].keys)
        appraiser.policy = PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements=appraiser.policy.reference_measurements,
            program_names=appraiser.policy.program_names,
        )
        verdict = appraiser.appraise_records(records, hop_count, trace=TRACE)
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SIGNATURE
        assert events[0].detail["message"] in verdict.failures
        assert events[0].trace == TRACE.trace_id

    def test_forged_record_signature_names_the_exact_record(self, delivered):
        """One forged signature in the stack: the batched verify path
        must isolate it to exactly the right record and journal exactly
        one ``check.failed`` naming it."""
        from dataclasses import replace

        records, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        signature = records[1].signature
        forged = replace(
            records[1],
            signature=signature[:-1] + bytes((signature[-1] ^ 0xFF,)),
        )
        verdict = appraiser.appraise_records(
            [records[0], forged], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SIGNATURE
        assert events[0].detail["message"].startswith("record 1 (s2):")
        assert "signature invalid" in events[0].detail["message"]

    def test_stripped_hop(self, delivered):
        records, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        verdict = appraiser.appraise_records(
            records[:-1], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.COVERAGE
        assert "stripped" in events[0].detail["message"]

    def test_reordered_records(self, delivered):
        records, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        verdict = appraiser.appraise_records(
            [records[1], records[0]], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.CHAIN
        assert "reordered or spliced" in events[0].detail["message"]

    def test_stale_nonce(self, delivered):
        records, hop_count, switches, program = delivered
        tel = Telemetry()
        nonces = NonceManager(seed="matrix")
        nonce = nonces.issue()
        nonces.consume(nonce)  # the relying party already used it
        compiled = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={"client": "h-dst"},
            composition=CompositionMode.CHAINED,
            nonce=nonce,
        )
        appraiser = _appraiser(switches, program, tel, nonces=nonces)
        verdict = appraiser.appraise_records(
            records, hop_count, compiled=compiled, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.NONCE
        assert events[0].detail["message"] == "nonce replayed"

    def test_missing_shim(self, delivered):
        records, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        from repro.net.packet import Packet

        bare = Packet.udp_packet(
            src_mac=1, dst_mac=2,
            src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int("10.0.1.1"),
            src_port=1, dst_port=2,
        ).with_trace(TRACE)
        verdict = appraiser.appraise_packet(bare)
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SHIM

    def test_each_rejection_issues_one_verdict_event(self, delivered):
        records, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        appraiser.appraise_records(records[:-1], hop_count, trace=TRACE)
        verdicts = [
            e for e in tel.audit.events
            if e.kind == AuditKind.VERDICT_ISSUED
        ]
        assert len(verdicts) == 1
        assert verdicts[0].detail["accepted"] is False
        assert verdicts[0].detail["failures"] == 1

    def test_honest_records_accept_with_no_failure_events(self, delivered):
        records, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        verdict = appraiser.appraise_records(records, hop_count, trace=TRACE)
        assert verdict.accepted
        assert _check_failures(tel) == []
