"""UC1 acceptance parity: epoch batching changes the wire format, not
the verdicts.

The Athens affair run (rogue program installed mid-stream) must yield
the SAME verdict sequence and the same audit story in batched mode as
in per-packet mode — the only admissible difference being where the
signature work lands (one ``signature.made`` per epoch instead of per
record, plus the new ``epoch.sealed`` markers).
"""

import pytest

from repro.core.usecases import run_config_assurance
from repro.pera.config import BatchingSpec
from repro.telemetry import AuditKind, Telemetry, use_default

PACKETS = 12
SWAP_AT = 6
SPEC = BatchingSpec(max_records=4, max_delay_s=0.0)

# Events whose *count or position* legitimately moves when signing is
# amortized: per-record signature events collapse to per-epoch ones,
# and the epoch markers are new.
AMORTIZED_KINDS = {AuditKind.SIGNATURE_MADE, AuditKind.EPOCH_SEALED}


def run_mode(batching):
    telemetry = Telemetry(active=True)
    previous = use_default(telemetry)
    try:
        result = run_config_assurance(
            packets=PACKETS, swap_at=SWAP_AT, batching=batching
        )
    finally:
        use_default(previous)
    return result, telemetry


@pytest.fixture(scope="module")
def both_modes():
    return run_mode(None), run_mode(SPEC)


class TestAthensBatchedParity:
    def test_verdict_sequence_is_identical(self, both_modes):
        (per_packet, _), (batched, _) = both_modes
        assert per_packet.first_rejection == batched.first_rejection == SWAP_AT
        assert per_packet.exfiltrated == batched.exfiltrated
        assert len(per_packet.verdicts) == len(batched.verdicts) == PACKETS
        for index, (a, b) in enumerate(
            zip(per_packet.verdicts, batched.verdicts)
        ):
            assert a.accepted == b.accepted, f"packet {index} diverged"
            assert a.failures == b.failures, f"packet {index} diverged"

    def test_audit_event_sequence_matches_modulo_epochs(self, both_modes):
        """Same audit story, three granularities of comparison.

        Globally the *multiset* of events matches. Per packet trace the
        attestation story — measurements, evidence, appraisal checks,
        verdict — matches event for event (the property ``explain()``
        relies on); transport events (forward/deliver) match as a
        multiset, since parking an in-band packet until its epoch seals
        legally reorders it against its own rogue-program clone."""
        (_, tel_per_packet), (_, tel_batched) = both_modes
        transport = {AuditKind.PACKET_FORWARDED, AuditKind.PACKET_DELIVERED}

        def story(events, keep):
            return [
                (e.kind, e.actor)
                for e in events
                if e.kind not in AMORTIZED_KINDS and keep(e.kind)
            ]

        everything = story(tel_per_packet.audit.events, lambda k: True)
        assert sorted(everything) == sorted(
            story(tel_batched.audit.events, lambda k: True)
        )

        def traces(telemetry):
            seen = []
            for event in telemetry.audit.events:
                if event.trace is not None and event.trace not in seen:
                    seen.append(event.trace)
            return seen

        per_packet_traces = traces(tel_per_packet)
        batched_traces = traces(tel_batched)
        assert len(per_packet_traces) == len(batched_traces) == PACKETS
        for trace_a, trace_b in zip(per_packet_traces, batched_traces):
            events_a = tel_per_packet.audit.for_trace(trace_a)
            events_b = tel_batched.audit.for_trace(trace_b)
            assert story(events_a, lambda k: k not in transport) == story(
                events_b, lambda k: k not in transport
            )
            assert sorted(story(events_a, transport.__contains__)) == sorted(
                story(events_b, transport.__contains__)
            )

    def test_batched_mode_signs_fewer_times(self, both_modes):
        (_, tel_per_packet), (_, tel_batched) = both_modes

        def made(telemetry):
            return [
                e for e in telemetry.audit.events
                if e.kind == AuditKind.SIGNATURE_MADE
            ]

        assert len(made(tel_batched)) < len(made(tel_per_packet))
        sealed = [
            e for e in tel_batched.audit.events
            if e.kind == AuditKind.EPOCH_SEALED
        ]
        assert sealed, "batched mode must journal its epoch seals"
        # Every epoch seal pairs with exactly one root signature event.
        assert len(made(tel_batched)) == len(sealed)
        assert [e.detail["epoch"] for e in made(tel_batched)] == [
            e.detail["epoch"] for e in sealed
        ]

    def test_per_packet_mode_journals_no_epochs(self, both_modes):
        (_, tel_per_packet), _ = both_modes
        kinds = {e.kind for e in tel_per_packet.audit.events}
        assert AuditKind.EPOCH_SEALED not in kinds
