"""The sharded core's determinism contract, pinned end to end.

Same seed => byte-identical merged outputs for 1, 2 and 4 shards, on
both backends, for three scenarios of increasing hostility:

- the leaf-spine fabric workload (pure dataplane load),
- UC1 config assurance (attestation verdicts + epoch batching),
- the chaos campaign (an installed :class:`~repro.faults.FaultPlan`
  with losses, a compromise, crash/restart and clock skew).

"Byte-identical" is taken literally: the comparisons below are over
JSON strings of the merged :class:`~repro.net.simulator.SimStats`,
the merged audit journal, metric counters and gauges, the scenario's
own verdict/exfiltration outputs, and every histogram whose base name
ends in ``_sim_seconds`` (sim-clock latencies are deterministic, so
they are *inside* the contract). Wall-clock histograms (e.g.
``core.path_appraise_seconds``) measure real elapsed time and are the
one deliberate exclusion — see docs/SHARDING.md.

The multiprocessing backend is exercised sparingly (one case per
scenario): it must agree with inline, but each mp case forks workers
and costs real wall time.
"""

import json

import pytest

from repro.core.chaos import run_chaos_athens
from repro.core.fabric import (
    FabricShape,
    FatTreeShape,
    fabric_sampling_spec,
    run_fabric,
    run_fabric_traffic,
    run_fabric_traffic_monolith,
)
from repro.core.usecases import run_config_assurance
from repro.net.qdisc import QueueConfig, RecoveryConfig
from repro.net.routing import RoutingMode
from repro.pera.config import BatchingSpec
from repro.telemetry.metrics import parse_name

SHARD_COUNTS = (1, 2, 4)

FABRIC_SHAPE = FabricShape(
    leaves=8, spines=2, hosts_per_leaf=2, flows_per_host=4
)

#: The congested campaign: tight buffers so tail-drops, ECN marks and
#: PFC pause frames all fire, an incast converging from other pods
#: onto pod 0 (so backpressure crosses the pod-core shard cut), and a
#: corrupting edge-agg hop that link-local recovery must mask.
CONGESTED_SHAPE = FatTreeShape(
    queue=QueueConfig(
        capacity_bytes=8192,
        capacity_packets=32,
        ecn_threshold_bytes=2048,
        pause_threshold_bytes=4096,
        recovery=RecoveryConfig(),
    ),
    incast_fan_in=8,
    corrupt_link_rate=0.3,
    routing=RoutingMode.FLOWLET,
)


def metric_signature(result):
    """Counters, gauges and sim-clock histograms as deterministic
    JSON; wall-clock histograms excluded (the only section allowed to
    carry nondeterministic measurements)."""
    sim_histograms = {
        key: value
        for key, value in result.metrics.get("histograms", {}).items()
        if parse_name(key)[0].endswith("_sim_seconds")
    }
    return json.dumps(
        {
            "counters": result.metrics.get("counters", {}),
            "gauges": result.metrics.get("gauges", {}),
            "sim_histograms": sim_histograms,
        },
        sort_keys=True,
        default=str,
    )


def fabric_signature(shards, backend, chaos, seed=0):
    run = run_fabric(
        FABRIC_SHAPE, shards=shards, backend=backend, seed=seed, chaos=chaos
    )
    return json.dumps({
        "delivered": run.delivered,
        "stats": run.result.stats_export(),
        "audit": run.result.audit_export(),
        "metrics": metric_signature(run.result),
    }, sort_keys=True)


def uc1_signature(shards, backend, batching=None):
    result = run_config_assurance(shards=shards, backend=backend,
                                  batching=batching)
    return json.dumps({
        "verdicts": [repr(v) for v in result.verdicts],
        "exfiltrated": result.exfiltrated,
        "stats": result.sharded.stats_export(),
        "audit": result.sharded.audit_export(),
        "metrics": metric_signature(result.sharded),
    }, sort_keys=True)


def chaos_signature(shards, backend, seed):
    result = run_chaos_athens(seed=seed, shards=shards, backend=backend)
    return json.dumps({
        "verdicts": [repr(v) for v in result.verdicts],
        "exfiltrated": result.exfiltrated,
        "collector_records": result.collector_records,
        "fault_stats": result.fault_stats,
        "ra_counters": result.ra_counters,
        "stats": result.sharded.stats_export(),
        "audit": result.sharded.audit_export(),
        "metrics": metric_signature(result.sharded),
    }, sort_keys=True, default=str)


class TestFabricDeterminism:
    @pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
    def test_shard_sweep(self, chaos):
        sigs = {s: fabric_signature(s, "inline", chaos) for s in SHARD_COUNTS}
        assert sigs[2] == sigs[1]
        assert sigs[4] == sigs[1]

    def test_mp_backend_agrees(self):
        assert fabric_signature(2, "mp", chaos=True) == fabric_signature(
            2, "inline", chaos=True
        )

    def test_seeds_differ(self):
        # The sweep would be vacuous if the signature ignored the run.
        assert fabric_signature(2, "inline", chaos=True, seed=0) != \
            fabric_signature(2, "inline", chaos=True, seed=3)


def congested_signature(shards, backend, seed=3):
    run = run_fabric_traffic(
        CONGESTED_SHAPE,
        shards=shards,
        backend=backend,
        seed=seed,
        sampling=fabric_sampling_spec(),
    )
    return json.dumps({
        "forwarded": run.forwarded,
        "ecn_delivered": run.ecn_delivered,
        "congestion_repicks": run.congestion_repicks,
        "fct": run.fct_percentiles((0.5, 0.95, 0.99, 0.999)),
        "verdicts": {str(k): v for k, v in sorted(run.verdicts.items())},
        "stats": run.result.stats_export(),
        "audit": run.result.audit_export(),
        "frames": run.result.frames_export(),
        "metrics": metric_signature(run.result),
    }, sort_keys=True)


class TestCongestedDeterminism:
    """Queues, ECN, PFC pauses and recovery inside the byte-identity
    contract: the congestion subsystem introduces no new randomness
    and pause frames cross shard cuts through the typed outboxes."""

    def test_shard_sweep(self):
        sigs = {s: congested_signature(s, "inline") for s in SHARD_COUNTS}
        assert sigs[2] == sigs[1]
        assert sigs[4] == sigs[1]

    def test_mp_backend_agrees(self):
        assert congested_signature(2, "mp") == congested_signature(
            2, "inline"
        )

    def test_congestion_signals_actually_fired(self):
        # The sweep is vacuous unless the run really queued, marked,
        # paused and recovered.
        run = run_fabric_traffic(CONGESTED_SHAPE, shards=2, seed=3)
        stats = json.loads(run.result.stats_export())
        assert stats["queue_drops"] > 0
        assert stats["ecn_marked"] > 0
        assert stats["pause_frames"] > 0
        assert stats["recovery_retransmits"] > 0

    def test_matches_monolith(self):
        mono = run_fabric_traffic_monolith(
            CONGESTED_SHAPE, seed=3, sampling=fabric_sampling_spec()
        )
        sharded = run_fabric_traffic(
            CONGESTED_SHAPE, shards=4, seed=3,
            sampling=fabric_sampling_spec(),
        )
        assert sharded.frames_export() == mono.frames_export()
        assert sharded.fct_percentiles() == mono.fct_percentiles()
        assert sharded.verdicts == mono.verdicts
        assert sharded.ecn_delivered == mono.ecn_delivered


class TestUC1Determinism:
    def test_shard_sweep(self):
        sigs = {s: uc1_signature(s, "inline") for s in SHARD_COUNTS}
        assert sigs[2] == sigs[1]
        assert sigs[4] == sigs[1]

    def test_shard_sweep_with_batching(self):
        # Epoch sealing rides the barrier drain hook; exercise both a
        # count-triggered and a timer-triggered batching config.
        for batching in (
            BatchingSpec(max_records=4, max_delay_s=0.0),
            BatchingSpec(max_records=6, max_delay_s=2e-3),
        ):
            sigs = {
                s: uc1_signature(s, "inline", batching=batching)
                for s in SHARD_COUNTS
            }
            assert sigs[2] == sigs[1]
            assert sigs[4] == sigs[1]

    def test_mp_backend_agrees(self):
        assert uc1_signature(2, "mp") == uc1_signature(2, "inline")

    def test_verdicts_match_monolith(self):
        # The sharded entry point always runs with telemetry active,
        # the monolith default does not — so verdict trace ids differ
        # by construction; every semantic field must agree.
        def semantic(v):
            return (v.accepted, v.failures, v.records_checked,
                    v.hop_count, v.functions_seen, v.degraded)

        mono = run_config_assurance()
        sharded = run_config_assurance(shards=4)
        assert [semantic(v) for v in sharded.verdicts] == [
            semantic(v) for v in mono.verdicts
        ]
        assert sharded.exfiltrated == mono.exfiltrated
        assert sharded.first_rejection == mono.first_rejection


class TestChaosDeterminism:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_shard_sweep_under_fault_plan(self, seed):
        sigs = {s: chaos_signature(s, "inline", seed) for s in SHARD_COUNTS}
        assert sigs[2] == sigs[1]
        assert sigs[4] == sigs[1]

    def test_mp_backend_agrees(self):
        assert chaos_signature(4, "mp", seed=0) == chaos_signature(
            4, "inline", seed=0
        )

    def test_markers_match_monolith(self):
        mono = run_chaos_athens(seed=0)
        sharded = run_chaos_athens(seed=0, shards=2)
        assert sharded.first_rejection == mono.first_rejection
        assert sharded.recovered_at == mono.recovered_at
        assert sharded.exfiltrated == mono.exfiltrated
        assert sharded.collector_records == mono.collector_records
