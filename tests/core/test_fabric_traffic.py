"""The fat-tree attested-traffic campaign: parity, determinism, faults.

One small campaign (k=4, mixed bulk/web/attested load) is run on the
monolithic simulator and on the sharded core at 1, 2, and 4 shards;
every view of the result — merged stats, audit ordering, per-flow
completion times, appraisal verdicts, per-port spread — must agree.
"""

import json

import pytest

from repro.core.fabric import (
    FatTreeShape,
    run_fabric_traffic,
    run_fabric_traffic_monolith,
)
from repro.net.qdisc import QueueConfig, RecoveryConfig
from repro.net.routing import RoutingMode
from repro.pera.config import BatchingSpec

SEED = 7

SHAPE = FatTreeShape(
    k=4,
    bulk_flows=40,
    web_sessions=6,
    attested_flows=4,
    attested_packets=6,
)


@pytest.fixture(scope="module")
def sharded_runs():
    return {
        shards: run_fabric_traffic(
            SHAPE, shards=shards, seed=SEED, telemetry_active=True
        )
        for shards in (1, 2, 4)
    }


@pytest.fixture(scope="module")
def monolith_run():
    return run_fabric_traffic_monolith(SHAPE, seed=SEED)


class TestCampaignOutcome:
    def test_traffic_flows_and_attestation_succeeds(self, monolith_run):
        result = monolith_run
        assert result.forwarded > 0
        assert result.unroutable == 0
        assert result.attested_hops > 0
        accepted, rejected = result.verdict_counts
        assert accepted > 0 and rejected == 0
        # Half the attested flows divert evidence out-of-band; the
        # collector verifies every record against the anchors.
        assert result.oob_records > 0
        assert result.oob_verified == result.oob_records

    def test_flows_complete_with_sane_fct(self, monolith_run):
        fct = monolith_run.fct_s
        assert len(fct) > 30
        assert all(v > 0 for v in fct.values())
        pct = monolith_run.fct_percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]


class TestShardedDeterminism:
    def test_byte_identical_journals_across_shard_counts(self, sharded_runs):
        base = sharded_runs[1].result
        for shards in (2, 4):
            other = sharded_runs[shards].result
            assert other.stats_export() == base.stats_export(), shards
            assert other.audit_export() == base.audit_export(), shards

    def test_merged_views_identical(self, sharded_runs):
        base = sharded_runs[1]
        for shards in (2, 4):
            other = sharded_runs[shards]
            assert other.fct_s == base.fct_s
            assert other.verdicts == base.verdicts
            assert other.tx_by_port == base.tx_by_port
            assert other.forwarded == base.forwarded

    def test_monolith_parity(self, sharded_runs, monolith_run):
        sharded = sharded_runs[1]
        assert monolith_run.forwarded == sharded.forwarded
        assert monolith_run.fct_s == sharded.fct_s
        assert monolith_run.verdicts == sharded.verdicts
        assert monolith_run.tx_by_port == sharded.tx_by_port


class TestCompromise:
    def test_rogue_swap_rejected_identically_at_any_shard_count(self):
        shape = FatTreeShape(
            k=4,
            bulk_flows=10,
            web_sessions=2,
            attested_flows=4,
            attested_packets=8,
            compromise_at_s=15e-6,
        )
        results = {
            shards: run_fabric_traffic(shape, shards=shards, seed=3)
            for shards in (1, 4)
        }
        for result in results.values():
            assert result.victim is not None
            accepted, rejected = result.verdict_counts
            # Evidence keeps verifying (the rogue signs honestly) but
            # the program measurement no longer matches the reference.
            assert rejected > 0
        a, b = results[1].result, results[4].result
        assert a.stats_export() == b.stats_export()
        assert a.audit_export() == b.audit_export()
        assert results[1].verdicts == results[4].verdicts


class TestEpochBatching:
    def test_batched_out_of_band_evidence_seals_and_verifies(self):
        shape = FatTreeShape(
            k=4,
            bulk_flows=10,
            web_sessions=0,
            attested_flows=4,
            attested_packets=6,
            batching=BatchingSpec(max_records=4, max_delay_s=50e-6),
        )
        results = {
            shards: run_fabric_traffic(shape, shards=shards, seed=5)
            for shards in (1, 4)
        }
        for result in results.values():
            assert result.epochs_sealed > 0
            assert result.oob_records > 0
            assert result.oob_verified == result.oob_records
        a, b = results[1].result, results[4].result
        assert a.stats_export() == b.stats_export()
        assert a.audit_export() == b.audit_export()


class TestLoadBalance:
    def test_ecmp_spread_within_tolerance(self):
        # Mice-only ECMP load: many independent flow hashes per switch,
        # so the per-port spread should sit close to even.
        shape = FatTreeShape(
            k=4,
            bulk_flows=600,
            web_sessions=0,
            attested_flows=2,
            attested_packets=4,
            mice_fraction=1.0,
            mice_packets=(1, 4),
            routing=RoutingMode.ECMP,
        )
        result = run_fabric_traffic(shape, shards=2, seed=11)
        assert result.forwarded > 1000
        assert result.ecmp_imbalance(min_samples=100) <= 1.8

    def test_flowlet_mode_is_deterministic(self):
        shape = FatTreeShape(
            k=4,
            bulk_flows=30,
            web_sessions=2,
            attested_flows=2,
            attested_packets=4,
            routing=RoutingMode.FLOWLET,
            flowlet_n_packets=8,
        )
        a = run_fabric_traffic(shape, shards=1, seed=11)
        b = run_fabric_traffic(shape, shards=2, seed=11)
        assert a.result.stats_export() == b.result.stats_export()
        assert a.result.audit_export() == b.result.audit_export()
        assert a.tx_by_port == b.tx_by_port


class TestCongestionCampaign:
    """The congestion & recovery acceptance story (ISSUE 9):
    queue-enabled campaigns stay deterministic, incast produces
    congestion evidence, and a corrupting link with link-local
    recovery causes zero verdict churn."""

    QUEUE = QueueConfig(
        capacity_bytes=8192,
        capacity_packets=32,
        ecn_threshold_bytes=2048,
        pause_threshold_bytes=4096,
        recovery=RecoveryConfig(),
    )

    def test_incast_produces_congestion_evidence(self):
        shape = FatTreeShape(queue=self.QUEUE, incast_fan_in=8)
        result = run_fabric_traffic(shape, shards=2, seed=3)
        stats = json.loads(result.result.stats_export())
        assert stats["queue_drops"] > 0
        assert stats["ecn_marked"] > 0
        assert stats["pause_frames"] > 0
        assert result.ecn_delivered > 0

    def test_ecn_signal_drives_flowlet_repicks(self):
        shape = FatTreeShape(
            queue=self.QUEUE,
            incast_fan_in=8,
            routing=RoutingMode.FLOWLET,
        )
        # Congestion re-picks need a marked packet to land on a
        # multi-member pick; seed 7 is pinned as one that does.
        result = run_fabric_traffic(shape, shards=2, seed=7)
        assert result.congestion_repicks > 0
        assert result.congestion_repicks == run_fabric_traffic(
            shape, shards=4, seed=7
        ).congestion_repicks

    def test_corrupting_link_with_recovery_zero_verdict_churn(self):
        """An attested flow crossing a corrupting link is locally
        recovered: the appraiser's verdict counts match the clean run
        exactly — zero churn."""
        queue = QueueConfig(
            recovery=RecoveryConfig(retransmit_limit=8)
        )
        clean = run_fabric_traffic_monolith(
            FatTreeShape(queue=queue), seed=SEED
        )
        dirty = run_fabric_traffic_monolith(
            FatTreeShape(queue=queue, corrupt_link_rate=0.3), seed=SEED
        )
        assert dirty.verdicts == clean.verdicts
        accepted, rejected = dirty.verdict_counts
        assert accepted > 0 and rejected == 0
        # The recovery actually did work: the corruption was real.
        assert set(dirty.fct_s) == set(clean.fct_s)

    def test_corrupted_campaign_recovery_stats(self):
        queue = QueueConfig(recovery=RecoveryConfig(retransmit_limit=8))
        shape = FatTreeShape(queue=queue, corrupt_link_rate=0.3)
        result = run_fabric_traffic(shape, shards=2, seed=SEED)
        stats = json.loads(result.result.stats_export())
        assert stats["recovery_retransmits"] > 0
        assert stats["queue_drops"] == 0

    def test_incast_fan_in_bounded_by_remote_hosts(self):
        with pytest.raises(ValueError):
            run_fabric_traffic_monolith(
                FatTreeShape(queue=self.QUEUE, incast_fan_in=99),
                seed=SEED,
            )

    def test_queueless_shapes_unchanged(self):
        """Attaching no QueueConfig keeps the campaign byte-identical
        with the historical transmit-immediately path (no qdisc stats,
        no queue frames)."""
        result = run_fabric_traffic(FatTreeShape(), shards=2, seed=SEED)
        stats = json.loads(result.result.stats_export())
        assert stats["queue_drops"] == 0
        assert stats["ecn_marked"] == 0
        assert stats["pause_frames"] == 0
