"""Tests for the RelyingParty orchestration API."""

import pytest

from repro.core.appraisal import (
    PathAppraisalPolicy,
    hardware_reference,
    program_reference,
)
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.relying_party import RelyingParty
from repro.crypto.keys import KeyRegistry
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.util.errors import ConfigError


def build_network(switch_count=2):
    topo = linear_topology(switch_count)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches, programs = [], []
    for i in range(1, switch_count + 1):
        switch = NetworkAwarePeraSwitch(f"s{i}")
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        program = ipv4_forwarding_program()
        switch.runtime.set_forwarding_pipeline_config("ctl", program)
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)
        programs.append(program)
    return sim, src, dst, switches, programs


def appraisal_for(switches, programs):
    anchors = KeyRegistry()
    references, names = {}, {}
    for switch, program in zip(switches, programs):
        anchors.register_pair(switch.keys)
        references[switch.name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(program),
        }
        names[program_reference(program)] = program.full_name
    return PathAppraisalPolicy(
        anchors=anchors, reference_measurements=references,
        program_names=names,
    )


def make_rp(switches, programs):
    return RelyingParty(
        policy=ap1_bank_path_attestation(),
        appraisal=appraisal_for(switches, programs),
        composition=CompositionMode.CHAINED,
    )


class TestRelyingParty:
    def test_single_send_accepted(self):
        sim, src, dst, switches, programs = build_network()
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        rp.send(b"hello")
        sim.run()
        assert rp.sent == 1
        assert len(rp.verdicts) == 1
        assert rp.all_accepted, rp.verdicts[0].failures

    def test_path_computed_from_topology(self):
        sim, src, dst, switches, programs = build_network(3)
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        assert rp.path == ["h-src", "s1", "s2", "s3", "h-dst"]

    def test_fresh_nonce_per_send(self):
        sim, src, dst, switches, programs = build_network()
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        a = rp.send()
        b = rp.send()
        assert a.nonce != b.nonce
        sim.run()
        assert len(rp.verdicts) == 2
        assert rp.all_accepted

    def test_send_before_attach_rejected(self):
        _, _, _, switches, programs = build_network()
        rp = make_rp(switches, programs)
        with pytest.raises(ConfigError, match="attach"):
            rp.send()

    def test_rogue_switch_rejected(self):
        from repro.pisa.programs import athens_rogue_program

        sim, src, dst, switches, programs = build_network()
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        switches[0].runtime.arbitrate("attacker", 99)
        switches[0].runtime.set_forwarding_pipeline_config(
            "attacker", athens_rogue_program()
        )
        switches[0].runtime.write("attacker", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        rp.send()
        sim.run()
        assert not rp.all_accepted
        assert any("PROGRAM" in f for f in rp.verdicts[0].failures)

    def test_foreign_nonce_flagged(self):
        """Evidence carrying a nonce this RP never issued is rejected."""
        sim, src, dst, switches, programs = build_network()
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        # Another sender replays a stolen policy header with its own
        # nonce through the same destination.
        from repro.core.compiler import compile_policy_for_path
        from repro.core.wire import encode_compiled_policy
        from repro.net.headers import RaShimHeader

        foreign = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={"client": "h-dst"},
            nonce=b"\xee" * 16,
            composition=CompositionMode.CHAINED,
        )
        src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY,
                body=encode_compiled_policy(foreign),
            ),
        )
        sim.run()
        assert len(rp.verdicts) == 1
        assert not rp.verdicts[0].accepted
        assert any("never issued" in f for f in rp.verdicts[0].failures)

    def test_plain_traffic_ignored(self):
        sim, src, dst, switches, programs = build_network()
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
                     payload=b"no-ra")
        sim.run()
        assert rp.verdicts == []
        assert len(dst.received_packets) == 1

    def test_existing_callback_preserved(self):
        sim, src, dst, switches, programs = build_network()
        seen = []
        dst.on_packet = seen.append
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        rp.send()
        sim.run()
        assert len(seen) == 1  # the app callback still fires
        assert len(rp.verdicts) == 1

    def test_lint_clean_deployment(self):
        sim, src, dst, switches, programs = build_network()
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        findings = rp.lint()
        assert not any(f.startswith("[error]") for f in findings)

    def test_lint_flags_missing_references(self):
        sim, src, dst, switches, programs = build_network()
        # Appraisal only knows s1; s2's evidence is uncheckable.
        rp = make_rp(switches[:1], programs[:1])
        rp.attach(sim, src, dst)
        findings = rp.lint()
        assert any("s2" in f and f.startswith("[error]") for f in findings)

    def test_lint_requires_attach(self):
        _, _, _, switches, programs = build_network()
        rp = make_rp(switches, programs)
        with pytest.raises(ConfigError):
            rp.lint()

    def test_summary_readable(self):
        sim, src, dst, switches, programs = build_network()
        rp = make_rp(switches, programs)
        rp.attach(sim, src, dst)
        rp.send()
        sim.run()
        text = rp.summary()
        assert "1 sent" in text and "1 accepted" in text
