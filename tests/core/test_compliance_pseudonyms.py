"""Integration tests: compliance redaction and pseudonymous paths.

These weave together the paper's footnotes 1-2 (pseudonyms lifted by
warrant) and UC5's redaction with the full attestation pipeline.
"""


from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.usecases import run_compliance_redaction
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.crypto.pseudonym import PseudonymAuthority
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pera.records import decode_record_stack
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind


class TestComplianceRedaction:
    def test_two_of_five_disclosed_verifies(self):
        result = run_compliance_redaction(switch_count=5, disclose=(0, 4))
        assert result.compliant, result.officer_failures
        assert result.total_hops == 5
        assert result.disclosed_hops == 2
        assert not result.hidden_places_leaked

    def test_full_disclosure_also_works(self):
        result = run_compliance_redaction(
            switch_count=3, disclose=(0, 1, 2)
        )
        assert result.compliant
        assert result.disclosed_hops == 3


class TestPseudonymousPath:
    """Footnotes 1-2: switches appear under per-user pseudonyms; an
    auditor lifts them with a warrant; the appraiser verifies through
    the operator-provided mapping."""

    def build(self):
        authority = PseudonymAuthority(b"operator-secret-0123456789abcdef")
        topo = linear_topology(2)
        sim = Simulator(topo)
        src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
        dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
        sim.bind(src)
        sim.bind(dst)
        switches, programs, pseudonyms = [], [], {}
        for i in (1, 2):
            name = f"s{i}"
            pseudonym = authority.pseudonym_for("bank", name)
            pseudonyms[pseudonym] = name
            switch = NetworkAwarePeraSwitch(
                name,
                config=EvidenceConfig(composition=CompositionMode.CHAINED),
                pseudonym=pseudonym,
            )
            sim.bind(switch)
            switch.runtime.arbitrate("ctl", 1)
            program = ipv4_forwarding_program()
            switch.runtime.set_forwarding_pipeline_config("ctl", program)
            switch.runtime.write("ctl", TableEntry(
                table="ipv4_lpm",
                keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"),
                               prefix_len=24),),
                action="forward", params=(2,),
            ))
            switches.append(switch)
            programs.append(program)
        return authority, sim, src, dst, switches, programs, pseudonyms

    def test_records_carry_pseudonyms_not_serials(self):
        authority, sim, src, dst, switches, programs, pseudonyms = self.build()
        compiled = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={"client": "h-dst"},
            composition=CompositionMode.CHAINED,
        )
        src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY,
                body=encode_compiled_policy(compiled),
            ),
        )
        sim.run()
        records = decode_record_stack(dst.received_packets[0].ra_shim.body)
        assert all(r.place.startswith("pseu-") for r in records)
        assert not any(r.place in ("s1", "s2") for r in records)

        # The appraiser (given the operator's mapping) still verifies.
        anchors = KeyRegistry()
        references = {}
        names = {}
        for switch, program in zip(switches, programs):
            anchors.register_pair(switch.keys)
            references[switch.name] = {
                InertiaClass.HARDWARE: hardware_reference(
                    switch.engine.hardware_identity
                ),
                InertiaClass.PROGRAM: program_reference(program),
            }
            names[program_reference(program)] = program.full_name
        appraiser = PathAppraiser("Appraiser", PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements=references,
            program_names=names,
            pseudonym_signers=pseudonyms,
        ))
        verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
        assert verdict.accepted, verdict.failures

    def test_auditor_lifts_with_warrant(self):
        authority, sim, src, dst, switches, programs, pseudonyms = self.build()
        pseudonym = switches[0].pseudonym
        real = authority.lift("bank", pseudonym, warrant="court-order-17")
        assert real == "s1"

    def test_without_mapping_appraisal_fails(self):
        authority, sim, src, dst, switches, programs, _ = self.build()
        compiled = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={"client": "h-dst"},
            composition=CompositionMode.CHAINED,
        )
        src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY,
                body=encode_compiled_policy(compiled),
            ),
        )
        sim.run()
        anchors = KeyRegistry()
        for switch in switches:
            anchors.register_pair(switch.keys)
        appraiser = PathAppraiser("Appraiser", PathAppraisalPolicy(
            anchors=anchors, reference_measurements={},
            pseudonym_signers={},  # no operator mapping
            strict_places=False,
        ))
        verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
        assert not verdict.accepted  # signatures unresolvable
