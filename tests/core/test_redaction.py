"""Tests for trusted redaction of path evidence (UC5)."""

import pytest

from repro.core.redaction import redact
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.pera.inertia import InertiaClass
from repro.pera.records import HopRecord
from repro.util.errors import VerificationError


def make_records(count=5):
    records = []
    keys = []
    for i in range(count):
        pair = KeyPair.generate(f"s{i}")
        keys.append(pair)
        records.append(HopRecord(
            place=f"s{i}",
            measurements=((InertiaClass.PROGRAM, bytes([i]) * 32),),
            sequence=i,
        ).sign_with(pair))
    return records, keys


def anchors_for(keys):
    registry = KeyRegistry()
    for pair in keys:
        registry.register_pair(pair)
    return registry


class TestRedaction:
    def setup_method(self):
        self.records, self.switch_keys = make_records()
        self.holder = KeyPair.generate("enterprise")
        self.holder_anchors = anchors_for([self.holder])
        self.switch_anchors = anchors_for(self.switch_keys)

    def test_disclosed_subset_verifies(self):
        bundle = redact(self.records, [1, 3], self.holder)
        assert bundle.total_records == 5
        assert len(bundle.disclosed) == 2
        failures = bundle.verify(self.holder_anchors, self.switch_anchors)
        assert failures == []

    def test_hidden_records_not_present(self):
        bundle = redact(self.records, [0], self.holder)
        disclosed_places = {d.record.place for d in bundle.disclosed}
        assert disclosed_places == {"s0"}

    def test_total_count_is_committed(self):
        bundle = redact(self.records, [0], self.holder)
        # Lying about the total is caught: the proofs carry the count.
        from dataclasses import replace

        forged = replace(bundle, total_records=2)
        failures = forged.verify(self.holder_anchors, self.switch_anchors)
        assert failures  # root signature AND count both break

    def test_substituted_record_rejected(self):
        bundle = redact(self.records, [1], self.holder)
        other_records, other_keys = make_records()
        fake = other_records[2]
        from dataclasses import replace

        forged = replace(bundle, disclosed=(
            replace(bundle.disclosed[0], record=fake),
        ))
        switch_anchors = anchors_for(self.switch_keys + other_keys)
        failures = forged.verify(self.holder_anchors, switch_anchors)
        assert any("not a member" in f for f in failures)

    def test_unknown_holder_rejected(self):
        bundle = redact(self.records, [1], self.holder)
        failures = bundle.verify(KeyRegistry(), self.switch_anchors)
        assert any("root signature" in f for f in failures)

    def test_tampered_switch_signature_rejected(self):
        records, keys = make_records(2)
        bad = HopRecord(
            place=records[0].place,
            measurements=records[0].measurements,
            sequence=records[0].sequence,
            signature=bytes(64),
        )
        bundle = redact([bad, records[1]], [0], self.holder)
        failures = bundle.verify(self.holder_anchors, anchors_for(keys))
        assert any("switch signature" in f for f in failures)

    def test_empty_set_rejected(self):
        with pytest.raises(VerificationError):
            redact([], [0], self.holder)

    def test_out_of_range_disclosure(self):
        with pytest.raises(VerificationError):
            redact(self.records, [99], self.holder)

    def test_duplicate_disclosures_deduplicated(self):
        bundle = redact(self.records, [2, 2, 2], self.holder)
        assert len(bundle.disclosed) == 1

    def test_pseudonymous_records_verify_via_mapping(self):
        pair = KeyPair.generate("s-real")
        record = HopRecord(
            place="pseu-xyz",
            measurements=((InertiaClass.PROGRAM, b"\x01" * 32),),
        ).sign_with(pair)
        bundle = redact([record], [0], self.holder)
        anchors = anchors_for([pair])
        failures = bundle.verify(
            self.holder_anchors, anchors,
            pseudonym_signers={"pseu-xyz": "s-real"},
        )
        assert failures == []
