"""Tests for the network-aware Copland language: parser, compiler, wire."""

import pytest

from repro.core.compiler import CompiledPolicy, HopDirective, compile_policy_for_path
from repro.core.hybrid_ast import (
    Embedded,
    Forall,
    Guard,
    HybridAt,
    HybridSeq,
    PathStar,
)
from repro.core.hybrid_parser import parse_hybrid_policy
from repro.core.policies import (
    ap1_bank_path_attestation,
    ap2_scanner_audit,
    ap3_path_check,
)
from repro.core.wire import decode_compiled_policy, encode_compiled_policy
from repro.netkat.ast import Test
from repro.pera.config import CompositionMode, DetailLevel
from repro.util.errors import PolicyError


class TestHybridParser:
    def test_simple_guarded_policy(self):
        policy = parse_hybrid_policy(
            "*rp : {switch = s1} |> attest(X) -> !"
        )
        assert policy.relying_party == "rp"
        assert isinstance(policy.body, Guard)
        assert policy.body.test == Test("switch", "s1")
        assert isinstance(policy.body.body, Embedded)

    def test_params_parsed(self):
        policy = parse_hybrid_policy("*bank<n, X> : attest(X)")
        assert policy.params == ("n", "X")

    def test_forall(self):
        policy = parse_hybrid_policy("*rp : forall hop : @hop [attest(X)]")
        assert isinstance(policy.body, Forall)
        assert policy.body.variables == ("hop",)

    def test_path_star(self):
        policy = parse_hybrid_policy(
            "*rp : forall hop, client : (@hop [attest(X) -> !]) "
            "*=> (@client [attest(Y)])"
        )
        assert isinstance(policy.body, Forall)
        assert isinstance(policy.body.body, PathStar)

    def test_seq_arrow(self):
        policy = parse_hybrid_policy(
            "*rp : @s [attest(X) -> !] -+> @Appraiser [appraise -> store]"
        )
        assert isinstance(policy.body, HybridSeq)

    def test_hybrid_at_with_guard_inside(self):
        policy = parse_hybrid_policy(
            "*rp : @s1 [ {port = 2} |> attest(X) ]"
        )
        assert isinstance(policy.body, HybridAt)
        assert isinstance(policy.body.body, Guard)

    def test_plain_copland_embeds(self):
        policy = parse_hybrid_policy(
            "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]"
        )
        assert isinstance(policy.body, Embedded)

    def test_ap1_parses(self):
        policy = ap1_bank_path_attestation()
        assert policy.relying_party == "bank"
        assert policy.params == ("n", "X")
        assert isinstance(policy.body, Forall)
        assert policy.body.variables == ("hop", "client")
        assert isinstance(policy.body.body, PathStar)

    def test_ap2_parses(self):
        policy = ap2_scanner_audit()
        assert policy.relying_party == "scanner"
        assert isinstance(policy.body, HybridSeq)

    def test_ap3_parses(self):
        policy = ap3_path_check()
        assert policy.params == ("F1", "F2", "Peer1", "Peer2")
        assert policy.bound_variables() == {"p", "q", "r", "peer1", "peer2"}

    def test_errors(self):
        for bad in [
            "no star",
            "*rp missing colon",
            "*rp : {switch = s1} attest(X)",  # guard without |>
            "*rp : forall : x",
            "*rp : (unbalanced",
        ]:
            with pytest.raises(PolicyError):
                parse_hybrid_policy(bad)


class TestCompiler:
    def test_ap1_compilation(self):
        compiled = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={"client": "h-dst"},
            nonce=b"\x05" * 16,
        )
        assert compiled.relying_party == "bank"
        assert compiled.hop.attest == ("X",)
        assert compiled.hop.sign
        assert compiled.appraiser == "Appraiser"
        assert compiled.terminal_place == "h-dst"
        assert compiled.min_attested_hops == 2

    def test_hop_variable_test_collapses(self):
        # AP1's hop guard (attests = 1) survives; a test on the bound
        # variable itself would collapse to true.
        policy = parse_hybrid_policy(
            "*rp : forall hop : (@hop [ {switch = hop} |> attest(X) -> ! ]) "
            "*=> @client [attest(Y)]"
        )
        compiled = compile_policy_for_path(policy, path=["a", "s", "b"])
        assert compiled.hop.test_text == ""

    def test_binding_substitutes_in_test(self):
        policy = parse_hybrid_policy(
            "*rp : forall hop : (@hop [ {next = client} |> attest(X) ]) "
            "*=> @client [attest(Y)]"
        )
        compiled = compile_policy_for_path(
            policy, path=["a", "s", "b"], bindings={"client": "h-9"}
        )
        assert compiled.hop.test_text == 'next = "h-9"'

    def test_ap3_required_functions(self):
        compiled = compile_policy_for_path(
            ap3_path_check(),
            path=["h1", "s1", "s2", "s3", "h2"],
            bindings={
                "F1": "firewall_v5",
                "F2": "ACL_v3",
                "peer1": "h1",
                "peer2": "h2",
            },
        )
        functions = [f for _, f in compiled.required_functions]
        assert functions[:2] == ["firewall_v5", "ACL_v3"]
        # p and q are collapsed hop variables -> wildcard places.
        assert compiled.required_functions[0][0] == "*"

    def test_out_of_band_flag(self):
        compiled = compile_policy_for_path(
            ap2_scanner_audit(), path=["scanner"], out_of_band=True,
            min_attested_hops=1,
        )
        assert compiled.hop.out_of_band_to == "Appraiser"
        assert compiled.min_attested_hops == 1

    def test_policy_id_depends_on_path_and_nonce(self):
        policy = ap1_bank_path_attestation()
        a = compile_policy_for_path(policy, ["a", "s", "b"], nonce=b"1")
        b = compile_policy_for_path(policy, ["a", "s", "b"], nonce=b"2")
        c = compile_policy_for_path(policy, ["a", "x", "b"], nonce=b"1")
        assert len({a.policy_id, b.policy_id, c.policy_id}) == 3


class TestWireFormat:
    def make_compiled(self, **overrides):
        defaults = dict(
            policy_id="abcd1234",
            relying_party="bank",
            nonce=b"\x07" * 16,
            appraiser="Appraiser",
            hop=HopDirective(
                test_text='switch = "s1"',
                attest=("X", "Y"),
                detail=DetailLevel.CONFIG,
                composition=CompositionMode.TRAFFIC_PATH,
                sign=True,
                out_of_band_to="Appraiser",
            ),
            terminal_place="h-dst",
            required_functions=(("*", "firewall_v5"), ("s2", "ACL_v3")),
            min_attested_hops=3,
        )
        defaults.update(overrides)
        return CompiledPolicy(**defaults)

    def test_round_trip_full(self):
        compiled = self.make_compiled()
        assert decode_compiled_policy(encode_compiled_policy(compiled)) == compiled

    def test_round_trip_minimal(self):
        compiled = self.make_compiled(
            hop=HopDirective(), terminal_place="", required_functions=(),
            nonce=b"",
        )
        assert decode_compiled_policy(encode_compiled_policy(compiled)) == compiled

    def test_absent_policy_returns_none(self):
        assert decode_compiled_policy(b"") is None

    def test_coexists_with_record_stack(self):
        from repro.crypto.keys import KeyPair
        from repro.pera.inertia import InertiaClass
        from repro.pera.records import (
            HopRecord,
            decode_record_stack,
            encode_record_stack,
        )

        compiled = self.make_compiled()
        record = HopRecord(
            place="s1", measurements=((InertiaClass.PROGRAM, b"\x01" * 32),)
        ).sign_with(KeyPair.generate("s1"))
        body = encode_compiled_policy(compiled) + encode_record_stack([record])
        assert decode_compiled_policy(body) == compiled
        assert decode_record_stack(body) == [record]

    def test_all_detail_and_composition_codes(self):
        for detail in DetailLevel:
            for composition in CompositionMode:
                compiled = self.make_compiled(
                    hop=HopDirective(detail=detail, composition=composition)
                )
                decoded = decode_compiled_policy(encode_compiled_policy(compiled))
                assert decoded.hop.detail is detail
                assert decoded.hop.composition is composition

    def test_round_trip_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        directives = st.builds(
            HopDirective,
            test_text=st.sampled_from(["", "attests = 1", 'switch = "s1"']),
            attest=st.lists(
                st.text(
                    alphabet="ABCXYZ", min_size=1, max_size=4
                ), max_size=3,
            ).map(tuple),
            detail=st.sampled_from(list(DetailLevel)),
            composition=st.sampled_from(list(CompositionMode)),
            sign=st.booleans(),
            out_of_band_to=st.sampled_from(["", "Appraiser"]),
        )
        compiled_policies = st.builds(
            CompiledPolicy,
            policy_id=st.text(alphabet="0123456789abcdef", min_size=1,
                              max_size=16),
            relying_party=st.sampled_from(["bank", "scanner"]),
            nonce=st.binary(max_size=32),
            appraiser=st.sampled_from(["Appraiser", "A2"]),
            hop=directives,
            terminal_place=st.sampled_from(["", "h-dst"]),
            required_functions=st.lists(
                st.tuples(
                    st.sampled_from(["*", "s1", "s2"]),
                    st.sampled_from(["fw_v5", "acl_v3"]),
                ),
                max_size=4,
            ).map(tuple),
            min_attested_hops=st.integers(min_value=0, max_value=64),
        )

        @settings(max_examples=100, deadline=None)
        @given(compiled_policies)
        def check(compiled):
            assert decode_compiled_policy(
                encode_compiled_policy(compiled)
            ) == compiled

        check()

    def test_compiled_ap_policies_round_trip(self):
        for policy, bindings in [
            (ap1_bank_path_attestation(), {"client": "h-dst"}),
            (ap2_scanner_audit(), {}),
            (ap3_path_check(), {"F1": "fw", "F2": "acl",
                                "peer1": "h1", "peer2": "h2"}),
        ]:
            compiled = compile_policy_for_path(
                policy, path=["h1", "s1", "h2"], bindings=bindings,
                nonce=b"\x01" * 16,
            )
            assert decode_compiled_policy(
                encode_compiled_policy(compiled)
            ) == compiled
