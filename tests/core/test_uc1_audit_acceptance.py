"""UC1 acceptance: the Athens rejection is fully explainable post-hoc.

Running the attack with tracing enabled must leave, for the first
rejected packet, ONE trace id whose audit events span every switch on
the 3-hop path, evidence digests that match the very records the
packet delivered, and an ``explain()`` narrative naming the failing
hop and check.
"""

import pytest

from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.usecases import _appraiser_for, _pera_chain, run_config_assurance
from repro.core.wire import encode_compiled_policy
from repro.net.headers import RaShimHeader
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.records import decode_record_stack
from repro.pisa.programs import firewall_program
from repro.telemetry import AuditKind, Telemetry, use_default


@pytest.fixture
def telemetry():
    tel = Telemetry()
    previous = use_default(tel)
    try:
        yield tel
    finally:
        use_default(previous)


class TestAthensAcceptance:
    def test_rejection_is_traced_across_all_three_switches(self, telemetry):
        result = run_config_assurance(packets=4, swap_at=1, switch_count=3)
        assert result.first_rejection == 1

        verdict = result.verdicts[result.first_rejection]
        assert not verdict.accepted
        assert verdict.trace_id is not None and len(verdict.trace_id) == 12

        events = telemetry.audit.for_trace(verdict.trace_id)
        assert events, "the rejected packet must have audit events"
        # One trace id spans the packet's whole life: origin, every
        # switch on the path, delivery, and the appraiser's verdict.
        actors = {event.actor for event in events}
        assert {"s1", "s2", "s3"} <= actors
        kinds = {event.kind for event in events}
        assert AuditKind.TRACE_STARTED in kinds
        assert AuditKind.MEASUREMENT_TAKEN in kinds
        assert AuditKind.EVIDENCE_CREATED in kinds
        assert AuditKind.VERDICT_ISSUED in kinds

        # The appraiser verified exactly the evidence nodes the
        # switches created — content digests join the two sides.
        created = {
            e.digest for e in events if e.kind == AuditKind.EVIDENCE_CREATED
        }
        verified = {
            e.digest for e in events
            if e.kind == AuditKind.SIGNATURE_VERIFIED
        }
        assert len(verified) == 3
        assert verified <= created

        # The narrative names the failing hop (s1 ran the rogue
        # program) and the failing check.
        text = verdict.explain(telemetry)
        assert f"trace {verdict.trace_id}:" in text
        assert "conclusion: REJECTED" in text
        assert "'measurement' failed" in text
        assert "s1" in text

    def test_audit_digests_match_the_delivered_records(self, telemetry):
        """Digest linkage, checked against the packet's own bytes."""
        config = EvidenceConfig(composition=CompositionMode.CHAINED)
        program = firewall_program()
        sim, src, dst, switches = _pera_chain(3, config, programs=[program] * 3)
        policy = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "s3", "h-dst"],
            bindings={"client": "h-dst"},
            composition=CompositionMode.CHAINED,
        )
        sent = src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
            payload=b"probe",
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY,
                body=encode_compiled_policy(policy),
            ),
        )
        sim.run()

        packet = dst.received_packets[0]
        records = decode_record_stack(packet.ra_shim.body)
        assert len(records) == 3
        events = telemetry.audit.for_trace(sent.trace.trace_id)
        created = {
            e.digest for e in events if e.kind == AuditKind.EVIDENCE_CREATED
        }
        assert created == {r.content_digest.hex() for r in records}

        appraiser = _appraiser_for(switches, [program] * 3)
        verdict = appraiser.appraise_packet(packet, compiled=policy)
        assert verdict.accepted
        assert verdict.trace_id == sent.trace.trace_id
        assert "conclusion: ACCEPTED" in verdict.explain(telemetry)
