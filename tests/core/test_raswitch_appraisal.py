"""Integration tests: policy-driven switches + path appraisal."""


from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation, ap3_path_check
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode, DetailLevel, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pera.records import HopRecord, decode_record_stack, encode_record_stack
from repro.pera.sampling import SamplingMode, SamplingSpec
from repro.pisa.programs import acl_program, firewall_program, ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind


def build_network(programs, config=None):
    count = len(programs)
    topo = linear_topology(count)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches = []
    for i, program in enumerate(programs, start=1):
        switch = NetworkAwarePeraSwitch(f"s{i}", config=config)
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config("ctl", program)
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)
    return sim, src, dst, switches


def make_appraiser(switches, programs, **policy_overrides):
    anchors = KeyRegistry()
    references = {}
    program_names = {}
    for switch, program in zip(switches, programs):
        anchors.register_pair(switch.keys)
        references[switch.name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(program),
        }
        program_names[program_reference(program)] = program.full_name
    return PathAppraiser("Appraiser", PathAppraisalPolicy(
        anchors=anchors,
        reference_measurements=references,
        program_names=program_names,
        **policy_overrides,
    ))


def compiled_ap1(path, **kwargs):
    return compile_policy_for_path(
        ap1_bank_path_attestation(), path=path,
        bindings={"client": path[-1]}, **kwargs,
    )


def send_with_policy(src, dst, compiled, payload=b"data"):
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=payload,
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(compiled),
        ),
    )


class TestPolicyDrivenAttestation:
    def test_honest_path_accepted(self):
        programs = [ipv4_forwarding_program(), ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(programs)
        appraiser = make_appraiser(switches, programs)
        compiled = compiled_ap1(
            ["h-src", "s1", "s2", "h-dst"],
            composition=CompositionMode.CHAINED,
        )
        send_with_policy(src, dst, compiled)
        sim.run()
        verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
        assert verdict.accepted, verdict.failures
        assert verdict.records_checked == 2

    def test_policy_composition_respected(self):
        programs = [ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(programs)
        compiled = compiled_ap1(
            ["h-src", "s1", "h-dst"],
            composition=CompositionMode.TRAFFIC_PATH,
            detail=DetailLevel.CONFIG,
        )
        send_with_policy(src, dst, compiled)
        sim.run()
        record = decode_record_stack(dst.received_packets[0].ra_shim.body)[0]
        assert record.packet_digest is not None
        classes = {inertia for inertia, _ in record.measurements}
        assert InertiaClass.TABLES in classes

    def test_rogue_program_rejected(self):
        genuine = firewall_program()
        programs = [genuine, genuine]
        sim, src, dst, switches = build_network(programs)
        appraiser = make_appraiser(switches, programs)
        # s2 secretly runs something else.
        from repro.pisa.programs import athens_rogue_program

        switches[1].runtime.arbitrate("attacker", 99)
        switches[1].runtime.set_forwarding_pipeline_config(
            "attacker", athens_rogue_program()
        )
        switches[1].runtime.write("attacker", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        compiled = compiled_ap1(["h-src", "s1", "s2", "h-dst"])
        send_with_policy(src, dst, compiled)
        sim.run()
        verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
        assert not verdict.accepted
        assert any("PROGRAM" in f for f in verdict.failures)

    def test_stripped_evidence_detected(self):
        programs = [ipv4_forwarding_program(), ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(programs)
        appraiser = make_appraiser(switches, programs)
        compiled = compiled_ap1(["h-src", "s1", "s2", "h-dst"])
        send_with_policy(src, dst, compiled)
        sim.run()
        packet = dst.received_packets[0]
        # A middle adversary strips the second record but cannot adjust
        # the authenticated hop count consistently.
        records = decode_record_stack(packet.ra_shim.body)
        stripped_body = (
            encode_compiled_policy(compiled) + encode_record_stack(records[:1])
        )
        tampered = packet.with_shim(RaShimHeader(
            flags=packet.ra_shim.flags,
            hop_count=packet.ra_shim.hop_count,
            body=stripped_body,
        ))
        verdict = appraiser.appraise_packet(tampered, compiled)
        assert not verdict.accepted
        assert any("stripped" in f for f in verdict.failures)

    def test_reordered_chain_detected(self):
        programs = [ipv4_forwarding_program(), ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(
            programs, config=EvidenceConfig(composition=CompositionMode.CHAINED)
        )
        appraiser = make_appraiser(switches, programs, strict_places=False)
        compiled = compiled_ap1(
            ["h-src", "s1", "s2", "h-dst"],
            composition=CompositionMode.CHAINED,
        )
        send_with_policy(src, dst, compiled)
        sim.run()
        packet = dst.received_packets[0]
        records = decode_record_stack(packet.ra_shim.body)
        swapped = [records[1], records[0]]
        tampered = packet.with_shim(RaShimHeader(
            flags=packet.ra_shim.flags,
            hop_count=packet.ra_shim.hop_count,
            body=encode_compiled_policy(compiled) + encode_record_stack(swapped),
        ))
        verdict = appraiser.appraise_packet(tampered, compiled)
        assert not verdict.accepted
        assert any("chain" in f for f in verdict.failures)

    def test_forged_record_rejected(self):
        programs = [ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(programs)
        appraiser = make_appraiser(switches, programs)
        compiled = compiled_ap1(["h-src", "s1", "h-dst"])
        send_with_policy(src, dst, compiled)
        sim.run()
        packet = dst.received_packets[0]
        real = decode_record_stack(packet.ra_shim.body)[0]
        from repro.crypto.keys import KeyPair

        forged = HopRecord(
            place="s1", measurements=real.measurements,
            sequence=real.sequence, chain_head=real.chain_head,
        ).sign_with(KeyPair.generate("not-s1"))
        tampered = packet.with_shim(RaShimHeader(
            flags=packet.ra_shim.flags,
            hop_count=1,
            body=encode_compiled_policy(compiled) + encode_record_stack([forged]),
        ))
        verdict = appraiser.appraise_packet(tampered, compiled)
        assert not verdict.accepted
        assert any("signature" in f for f in verdict.failures)

    def test_sampling_tolerated_when_allowed(self):
        config = EvidenceConfig(
            sampling=SamplingSpec(mode=SamplingMode.ONE_IN_N, n=2)
        )
        programs = [ipv4_forwarding_program(), ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(programs, config=config)
        appraiser = make_appraiser(switches, programs, allow_sampling=True)
        compiled = compiled_ap1(["h-src", "s1", "s2", "h-dst"])
        for _ in range(2):
            send_with_policy(src, dst, compiled)
        sim.run()
        verdicts = [
            appraiser.appraise_packet(p, compiled) for p in dst.received_packets
        ]
        assert all(v.accepted for v in verdicts)
        assert any(v.records_checked < 2 for v in verdicts)

    def test_failing_guard_skips_attestation(self):
        programs = [ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(programs)
        compiled = compiled_ap1(["h-src", "s1", "h-dst"])
        # Make the hop guard fail by overriding the test environment.
        from dataclasses import replace as dc_replace

        compiled = dc_replace(
            compiled, hop=dc_replace(compiled.hop, test_text="attests = 0")
        )
        send_with_policy(src, dst, compiled)
        sim.run()
        packet = dst.received_packets[0]
        assert decode_record_stack(packet.ra_shim.body) == []
        assert packet.ra_shim.hop_count == 1  # coverage still counted
        assert switches[0].tests_failed == 1

    def test_nonce_replay_rejected(self):
        from repro.ra.nonce import NonceManager

        programs = [ipv4_forwarding_program()]
        sim, src, dst, switches = build_network(programs)
        nonces = NonceManager("rp")
        nonce = nonces.issue()
        anchors_appraiser = make_appraiser(switches, programs)
        appraiser = PathAppraiser(
            "Appraiser", anchors_appraiser.policy, nonces=nonces
        )
        compiled = compiled_ap1(["h-src", "s1", "h-dst"], nonce=nonce)
        send_with_policy(src, dst, compiled)
        send_with_policy(src, dst, compiled)
        sim.run()
        first = appraiser.appraise_packet(dst.received_packets[0], compiled)
        second = appraiser.appraise_packet(dst.received_packets[1], compiled)
        assert first.accepted
        assert not second.accepted
        assert any("replayed" in f for f in second.failures)

    def test_ap3_function_sequence_enforced(self):
        firewall = firewall_program()
        acl = acl_program()
        programs = [firewall, acl]
        sim, src, dst, switches = build_network(programs)
        appraiser = make_appraiser(switches, programs)
        compiled = compile_policy_for_path(
            ap3_path_check(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={
                "F1": firewall.full_name, "F2": acl.full_name,
                "peer1": "h-src", "peer2": "h-dst",
            },
        )
        send_with_policy(src, dst, compiled)
        sim.run()
        verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
        assert verdict.accepted, verdict.failures
        assert verdict.functions_seen == (firewall.full_name, acl.full_name)

    def test_ap3_wrong_order_rejected(self):
        firewall = firewall_program()
        acl = acl_program()
        # Deploy in the WRONG order: ACL first, firewall second.
        programs = [acl, firewall]
        sim, src, dst, switches = build_network(programs)
        appraiser = make_appraiser(switches, programs)
        compiled = compile_policy_for_path(
            ap3_path_check(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={
                "F1": firewall.full_name, "F2": acl.full_name,
                "peer1": "h-src", "peer2": "h-dst",
            },
        )
        send_with_policy(src, dst, compiled)
        sim.run()
        verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
        assert not verdict.accepted
        assert any("required function" in f for f in verdict.failures)
