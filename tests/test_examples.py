"""Every example script must run clean — examples are documentation.

Each runs in a subprocess with a real interpreter, so import errors,
API drift and assertion failures in examples fail CI rather than
rotting silently.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 8
    assert (EXAMPLES_DIR / "quickstart.py") in EXAMPLES
