"""Every example script must run clean — examples are documentation.

Each runs in a subprocess with a real interpreter, so import errors,
API drift and assertion failures in examples fail CI rather than
rotting silently.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 8
    assert (EXAMPLES_DIR / "quickstart.py") in EXAMPLES


def test_quickstart_exports_valid_chrome_trace(tmp_path):
    """An observed quickstart run writes a loadable Chrome trace with
    at least one complete (ph="X") pipeline span."""
    import json

    trace_path = tmp_path / "trace.json"
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "quickstart.py"),
            "--trace-out", str(trace_path),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"quickstart --trace-out failed:\n"
        f"{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    document = json.loads(trace_path.read_text())
    completes = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    assert completes, "trace has no complete spans"
    for event in completes:
        assert {"name", "pid", "tid", "ts", "dur"} <= set(event)
    # The dataplane pipeline itself was spanned, stage by stage.
    assert any(e["name"] == "pisa.stage" for e in completes)
