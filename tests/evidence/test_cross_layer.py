"""Cross-layer byte-identity over the shared evidence substrate.

The whole point of ``repro.evidence`` is that a Copland VM, a PERA
switch and an RA appraiser describing the *same logical evidence*
produce the *same bytes* — one wire form, one content digest, however
the evidence travelled (in-band stack, out-of-band objects, VM result).
"""

from dataclasses import replace as dc_replace

import repro.copland.evidence as legacy_copland_evidence
import repro.evidence.nodes as nodes
from repro.copland.parser import parse_phrase
from repro.copland.vm import CoplandVM, Place
from repro.crypto.hashing import HashChain, digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.evidence import (
    HopEvidence,
    MeasurementEvidence,
    SignedEvidence,
    decode_node,
    hops_to_evidence,
    registry_verify,
)
from repro.pera.inertia import InertiaClass
from repro.pera.records import (
    RECORD_TLV_TYPE,
    HopRecord,
    decode_record_stack,
    encode_record_stack,
)
from repro.ra.appraiser import AppraisalPolicy, Appraiser


def signed_records(count=3):
    """Chained, signed hop records the way an attesting path builds them."""
    head = HashChain.GENESIS
    records = []
    for index in range(count):
        place = f"s{index}"
        unsigned = HopRecord(
            place=place,
            measurements=(
                (
                    InertiaClass.PROGRAM,
                    digest(f"prog-{index}".encode(), domain="pera-program"),
                ),
            ),
            sequence=index,
        )
        head = HashChain(head=head).extend(unsigned.link_digest())
        records.append(
            dc_replace(unsigned, chain_head=head).sign_with(
                KeyPair.generate(place)
            )
        )
    return records


class TestCoplandLayer:
    def test_vm_output_is_canonical_and_rebuildable(self):
        """The VM's signed measurement equals the hand-built node —
        same wire bytes, same digest, verifiable with the shared
        memoized verifier."""
        vm = CoplandVM()
        vm.register(Place("bank"))
        ks = vm.register(Place("ks"))
        us = vm.register(Place("us"))
        us.install_component("bmon", b"browser-monitor-v1")

        result = vm.execute(parse_phrase("@ks [av us bmon -> !]"), "bank")

        inner = MeasurementEvidence(
            asp="av",
            place="ks",
            target="bmon",
            target_place="us",
            value=digest(b"browser-monitor-v1", domain="component-measurement"),
        )
        expected = SignedEvidence(
            evidence=inner, place="ks", signature=ks.keypair.sign(inner.wire)
        )
        assert result.wire == expected.wire
        assert result.content_digest == expected.content_digest
        assert decode_node(result.wire) == expected

        anchors = KeyRegistry()
        anchors.register_pair(ks.keypair)
        assert registry_verify(
            anchors,
            result.place,
            result.signed_payload(),
            result.signature,
            message_digest=result.payload_digest(),
        )


class TestPeraLayer:
    def test_hop_record_is_its_canonical_node(self):
        """A PERA record and the plain substrate node with the same
        fields share one wire form and one content digest."""
        record = signed_records(1)[0]
        node = HopEvidence(
            place=record.place,
            measurements=tuple(
                (int(code), value) for code, value in record.measurements
            ),
            sequence=record.sequence,
            ingress_port=record.ingress_port,
            chain_head=record.chain_head,
            packet_digest=record.packet_digest,
            signature=record.signature,
        )
        assert record.wire == node.wire
        assert record.content_digest == node.content_digest
        assert record.payload_digest() == node.payload_digest()

    def test_stack_framing_is_concatenated_node_wires(self):
        records = signed_records(3)
        stack = encode_record_stack(records)
        assert stack == b"".join(r.wire for r in records)
        assert decode_record_stack(stack) == records

    def test_generic_decoder_and_pera_decoder_agree(self):
        record = signed_records(1)[0]
        generic = decode_node(record.wire)
        assert isinstance(generic, HopEvidence)
        assert HopRecord.from_node(generic) == record


class TestInBandVsOutOfBand:
    def test_same_hops_same_tree_same_bytes(self):
        """Records received in-band (decoded from a shim-body stack)
        and out-of-band (the original objects) compose to one evidence
        tree with identical serialization and digest."""
        out_of_band = signed_records(4)
        in_band = decode_record_stack(encode_record_stack(out_of_band))
        assert hops_to_evidence(in_band).wire == hops_to_evidence(out_of_band).wire
        assert (
            hops_to_evidence(in_band).content_digest
            == hops_to_evidence(out_of_band).content_digest
        )


class TestRaLayer:
    def test_verdict_pins_the_canonical_digest(self):
        """An RA appraisal names exactly the evidence it judged — by
        the same content digest every other layer computes."""
        keys = KeyPair.generate("Switch")
        anchors = KeyRegistry()
        anchors.register_pair(keys)
        inner = MeasurementEvidence(
            asp="attest",
            place="Switch",
            target="Program",
            target_place="Switch",
            value=b"good",
        )
        evidence = SignedEvidence(
            evidence=inner, place="Switch", signature=keys.sign(inner.wire)
        )
        appraiser = Appraiser(
            name="A",
            anchors=anchors,
            policy=AppraisalPolicy(required_signers=("Switch",)),
        )
        verdict = appraiser.appraise(evidence)
        assert verdict.accepted
        assert verdict.evidence_digest == evidence.content_digest
        assert verdict.evidence_digest == decode_node(evidence.wire).content_digest


class TestLegacyPaths:
    def test_old_import_paths_are_views_over_the_substrate(self):
        """repro.copland.evidence and repro.pera.records re-export the
        substrate's types — not parallel copies."""
        for name in (
            "Evidence",
            "EmptyEvidence",
            "NonceEvidence",
            "MeasurementEvidence",
            "SignedEvidence",
            "HashEvidence",
            "SequenceEvidence",
            "ParallelEvidence",
        ):
            assert getattr(legacy_copland_evidence, name) is getattr(nodes, name)
        assert issubclass(HopRecord, HopEvidence)
        assert RECORD_TLV_TYPE == nodes.KIND_HOP
