"""Hashing-cost accounting: appraisal hashes O(nodes), not O(nodes²).

Before the substrate refactor the path appraiser re-hashed each
record's measurement values on every chain-replay step and re-encoded
every record-stack prefix, making the hot path quadratic in path
length. Content addressing (one cached wire + digest per node) makes
it linear; these tests pin that by *counting SHA-256 constructions*.
"""

from dataclasses import replace as dc_replace

import repro.crypto.hashing as hashing
from repro.crypto.hashing import HashChain, digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.evidence import MeasurementEvidence, SequenceEvidence
from repro.pera.inertia import InertiaClass
from repro.pera.records import HopRecord, decode_record_stack, encode_record_stack
from repro.core.appraisal import PathAppraisalPolicy, PathAppraiser


class Sha256Counter:
    """Counting wrapper around ``hashlib.sha256``."""

    def __init__(self, real):
        self._real = real
        self.count = 0

    def __call__(self, *args, **kwargs):
        self.count += 1
        return self._real(*args, **kwargs)


def build_path(length):
    """A chained, signed record path plus the appraiser that accepts it."""
    anchors = KeyRegistry()
    references = {}
    head = HashChain.GENESIS
    records = []
    for index in range(length):
        place = f"s{index}"
        keys = KeyPair.generate(place)
        anchors.register_pair(keys)
        value = digest(f"prog-{index}".encode(), domain="pera-program")
        references[place] = {InertiaClass.PROGRAM: value}
        unsigned = HopRecord(
            place=place,
            measurements=((InertiaClass.PROGRAM, value),),
            sequence=index,
        )
        head = HashChain(head=head).extend(unsigned.link_digest())
        records.append(
            dc_replace(unsigned, chain_head=head).sign_with(keys)
        )
    appraiser = PathAppraiser(
        name="rp",
        policy=PathAppraisalPolicy(
            anchors=anchors, reference_measurements=references
        ),
    )
    # Ship the records through the wire so the appraiser starts from
    # fresh nodes with no digests cached yet (the honest worst case).
    return decode_record_stack(encode_record_stack(records)), appraiser


def count_appraisal_hashes(length, monkeypatch):
    records, appraiser = build_path(length)
    counter = Sha256Counter(hashing.hashlib.sha256)
    monkeypatch.setattr(hashing.hashlib, "sha256", counter)
    first_verdict = appraiser.appraise_records(records, hop_count=length)
    first = counter.count
    counter.count = 0
    repeat_verdict = appraiser.appraise_records(records, hop_count=length)
    monkeypatch.undo()
    assert first_verdict.accepted, first_verdict.failures
    assert repeat_verdict.accepted
    return first, counter.count


def test_appraisal_hash_count_is_linear_in_path_length(monkeypatch):
    counts = {n: count_appraisal_hashes(n, monkeypatch)[0] for n in (4, 8, 16)}
    # Exactly linear: equal per-hop increments, small per-hop constant.
    assert counts[16] - counts[8] == 2 * (counts[8] - counts[4])
    per_hop = (counts[16] - counts[8]) / 8
    assert per_hop <= 4, f"{per_hop} sha256 constructions per hop"
    # The old quadratic replay needed >= n*(n+1)/2 link hashes alone.
    assert counts[16] < 16 * 17 / 2


def test_reappraisal_reuses_cached_digests(monkeypatch):
    """A second appraisal of the same records re-hashes only the chain
    replay itself — per-record payload/link digests are cached."""
    first, repeat = count_appraisal_hashes(12, monkeypatch)
    assert repeat < first
    assert repeat <= 12 + 2  # one chain extension per record + slack


def test_content_digest_computed_once_per_node(monkeypatch):
    node = SequenceEvidence(
        left=MeasurementEvidence(
            asp="a", place="p", target="t", target_place="q", value=b"v"
        ),
        right=MeasurementEvidence(
            asp="b", place="p", target="t", target_place="q", value=b"w"
        ),
    )
    counter = Sha256Counter(hashing.hashlib.sha256)
    monkeypatch.setattr(hashing.hashlib, "sha256", counter)
    node.content_digest
    after_first = counter.count
    node.content_digest
    node.encode()
    assert counter.count == after_first
    assert after_first == 1  # the digest covers the cached wire, once
