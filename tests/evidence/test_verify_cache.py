"""The memoized signature verifier (repro.evidence.verify)."""

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.evidence import SignatureCache, registry_verify, shared_cache


def make_anchors(*names):
    anchors = KeyRegistry()
    pairs = {}
    for name in names:
        pairs[name] = KeyPair.generate(name)
        anchors.register_pair(pairs[name])
    return anchors, pairs


class TestSignatureCache:
    def test_verdicts_are_memoized(self):
        anchors, pairs = make_anchors("s1")
        message = b"payload"
        signature = pairs["s1"].sign(message)
        cache = SignatureCache()
        assert cache.verify(anchors, "s1", message, signature)
        assert cache.verify(anchors, "s1", message, signature)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_negative_verdicts_are_memoized_too(self):
        anchors, pairs = make_anchors("s1")
        forged = pairs["s1"].sign(b"other")
        cache = SignatureCache()
        assert not cache.verify(anchors, "s1", b"payload", forged)
        assert not cache.verify(anchors, "s1", b"payload", forged)
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)

    def test_malformed_signature_is_false_not_an_exception(self):
        anchors, _ = make_anchors("s1")
        cache = SignatureCache()
        assert not cache.verify(anchors, "s1", b"payload", b"\x00" * 3)

    def test_unknown_signer_is_cheap_and_uncached(self):
        anchors, _ = make_anchors("s1")
        cache = SignatureCache()
        assert not cache.verify(anchors, "nobody", b"payload", b"\x00" * 64)
        assert (cache.stats.misses, cache.stats.hits) == (0, 0)
        assert len(cache) == 0

    def test_explicit_message_digest_matches_default_key(self):
        """Callers holding a content-addressed node pass the digest they
        already have; the cache key must agree with the recomputed one."""
        from repro.crypto.hashing import digest

        anchors, pairs = make_anchors("s1")
        message = b"payload"
        signature = pairs["s1"].sign(message)
        cache = SignatureCache()
        cache.verify(anchors, "s1", message, signature)
        precomputed = digest(message, domain="evidence-verify-cache")
        assert cache.verify(
            anchors, "s1", message, signature, message_digest=precomputed
        )
        assert cache.stats.hits == 1

    def test_bounded_eviction_is_fifo(self):
        anchors, pairs = make_anchors("s1")
        cache = SignatureCache(maxsize=2)
        signatures = [pairs["s1"].sign(bytes([i])) for i in range(3)]
        for i, signature in enumerate(signatures):
            cache.verify(anchors, "s1", bytes([i]), signature)
        assert len(cache) == 2
        cache.verify(anchors, "s1", bytes([0]), signatures[0])  # evicted
        assert cache.stats.misses == 4
        cache.verify(anchors, "s1", bytes([2]), signatures[2])  # still in
        assert cache.stats.hits == 1

    def test_clear_resets_verdicts_and_stats(self):
        anchors, pairs = make_anchors("s1")
        cache = SignatureCache()
        cache.verify(anchors, "s1", b"m", pairs["s1"].sign(b"m"))
        cache.clear()
        assert len(cache) == 0
        assert (cache.stats.misses, cache.stats.hits) == (0, 0)

    def test_distinct_keys_never_share_verdicts(self):
        """Two registries binding the same owner name to different keys
        must not cross-pollinate (the cache key pins the key bytes)."""
        anchors_a, pairs_a = make_anchors("s1")
        anchors_b = KeyRegistry()
        other = KeyPair.generate("s1-other-key")
        anchors_b.register("s1", other.verify_key)
        message = b"payload"
        signature = pairs_a["s1"].sign(message)
        cache = SignatureCache()
        assert cache.verify(anchors_a, "s1", message, signature)
        assert not cache.verify(anchors_b, "s1", message, signature)


class TestRegistryVerify:
    def test_defaults_to_the_shared_cache(self):
        anchors, pairs = make_anchors("shared-cache-probe")
        message = b"shared payload"
        signature = pairs["shared-cache-probe"].sign(message)
        registry_verify(anchors, "shared-cache-probe", message, signature)
        hits_before = shared_cache.stats.hits
        assert registry_verify(anchors, "shared-cache-probe", message, signature)
        assert shared_cache.stats.hits == hits_before + 1

    def test_private_cache_override(self):
        anchors, pairs = make_anchors("s1")
        message = b"payload"
        signature = pairs["s1"].sign(message)
        private = SignatureCache()
        assert registry_verify(anchors, "s1", message, signature, cache=private)
        assert private.stats.misses == 1
