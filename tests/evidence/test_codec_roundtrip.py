"""Round-trip properties of the one evidence wire codec.

Every canonical node must survive encode -> decode -> encode with
byte-identical wire form and a stable content digest — that is what
makes content addressing sound across layers (a digest computed by a
switch must equal the digest an appraiser recomputes from the wire).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evidence import (
    EmptyEvidence,
    HashEvidence,
    HopEvidence,
    MeasurementEvidence,
    NonceEvidence,
    ParallelEvidence,
    SequenceEvidence,
    SignedEvidence,
    decode_hop_body,
    decode_node,
    decode_record_stack,
    encode_hop_body,
    encode_node,
    encode_record_stack,
    iter_decode_nodes,
)
from repro.evidence.codec import POLICY_TLV_TYPE, RECORD_TLV_TYPE, iter_lazy_nodes
from repro.evidence.nodes import (
    HOP_F_MEASUREMENT,
    HOP_F_SEQUENCE,
    HOP_F_SIGNATURE,
    KIND_HOP,
)
from repro.util.tlv import Tlv, TlvCodec

names = st.text(max_size=12)
small_bytes = st.binary(max_size=24)

hop_nodes = st.builds(
    HopEvidence,
    place=st.text(min_size=1, max_size=8),
    measurements=st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.binary(max_size=16)),
        max_size=3,
    ).map(tuple),
    sequence=st.integers(min_value=0, max_value=2**32 - 1),
    ingress_port=st.none() | st.integers(min_value=0, max_value=0xFFFF),
    chain_head=st.none() | st.binary(min_size=1, max_size=32),
    packet_digest=st.none() | st.binary(min_size=1, max_size=32),
    signature=st.binary(max_size=64),
)

leaves = st.one_of(
    st.just(EmptyEvidence()),
    st.builds(NonceEvidence, name=names, value=small_bytes),
    st.builds(HashEvidence, digest_value=small_bytes, place=names),
    hop_nodes,
)


def _composites(children):
    return st.one_of(
        st.builds(
            MeasurementEvidence,
            asp=names,
            place=names,
            target=names,
            target_place=names,
            value=small_bytes,
            prior=children,
        ),
        st.builds(
            SignedEvidence, evidence=children, place=names, signature=small_bytes
        ),
        st.builds(SequenceEvidence, left=children, right=children),
        st.builds(ParallelEvidence, left=children, right=children),
    )


evidence_trees = st.recursive(leaves, _composites, max_leaves=8)


@settings(max_examples=200, deadline=None)
@given(node=evidence_trees)
def test_encode_decode_encode_is_stable(node):
    wire = encode_node(node)
    decoded = decode_node(wire)
    assert decoded == node
    assert encode_node(decoded) == wire


@settings(max_examples=200, deadline=None)
@given(node=evidence_trees)
def test_content_digest_stable_across_round_trip(node):
    decoded = decode_node(node.wire)
    assert decoded.content_digest == node.content_digest


@settings(max_examples=100, deadline=None)
@given(nodes=st.lists(evidence_trees, max_size=4))
def test_flat_stream_round_trips(nodes):
    stream = b"".join(encode_node(n) for n in nodes)
    assert list(iter_decode_nodes(stream)) == nodes


@settings(max_examples=200, deadline=None)
@given(hop=hop_nodes)
def test_hop_body_round_trips_flat(hop):
    """The unwrapped (legacy shim) hop framing is stable too."""
    decoded = decode_hop_body(encode_hop_body(hop))
    assert decoded == hop
    assert decoded.payload_digest() == hop.payload_digest()
    assert decoded.link_digest() == hop.link_digest()


@settings(max_examples=100, deadline=None)
@given(hops=st.lists(hop_nodes, max_size=4))
def test_record_stack_is_concatenated_node_wires(hops):
    stack = encode_record_stack(hops)
    assert stack == b"".join(h.wire for h in hops)
    assert decode_record_stack(stack) == hops


@settings(max_examples=50, deadline=None)
@given(hops=st.lists(hop_nodes, max_size=3), junk=small_bytes)
def test_record_stack_skips_foreign_tlv_types(hops, junk):
    """Policy TLVs share the shim body; the record decoder skips them."""
    stack = Tlv(POLICY_TLV_TYPE, junk).encode() + encode_record_stack(hops)
    assert decode_record_stack(stack) == hops


def test_shim_framing_types_are_wire_stable():
    """0x10/0x20 are on-the-wire constants from the pre-substrate
    framing; changing them would break captured shim bodies."""
    assert RECORD_TLV_TYPE == KIND_HOP == 0x10
    assert POLICY_TLV_TYPE == 0x20


@settings(max_examples=100, deadline=None)
@given(a=evidence_trees, b=evidence_trees)
def test_digest_discriminates_distinct_wire_forms(a, b):
    assert (a.wire == b.wire) == (a.content_digest == b.content_digest)


# --- zero-copy decode (memoryview inputs, lazy materialization) --------


@settings(max_examples=100, deadline=None)
@given(node=evidence_trees)
def test_decode_accepts_memoryview(node):
    """Decoders take a view over the packet buffer, not owned bytes."""
    wire = encode_node(node)
    assert decode_node(memoryview(wire)) == node
    assert list(iter_decode_nodes(memoryview(wire))) == [node]


@settings(max_examples=100, deadline=None)
@given(hops=st.lists(hop_nodes, max_size=4))
def test_record_stack_round_trips_from_memoryview(hops):
    stack = encode_record_stack(hops)
    decoded = decode_record_stack(memoryview(stack))
    assert decoded == hops
    for original, roundtripped in zip(hops, decoded):
        assert roundtripped.payload_digest() == original.payload_digest()


@settings(max_examples=100, deadline=None)
@given(hop=hop_nodes)
def test_decoded_hop_seeds_signed_payload_from_wire(hop):
    """Canonical wire seeds the payload cache — no re-encode needed for
    the decode-side signature/digest checks, and the seeded bytes must
    equal what re-encoding would have produced."""
    decoded = decode_hop_body(memoryview(encode_hop_body(hop)))
    assert decoded.__dict__.get("_payload") == hop.signed_payload()


@settings(max_examples=100, deadline=None)
@given(hop=hop_nodes)
def test_reordered_wire_falls_back_to_canonical_reencode(hop):
    """Payload fields out of canonical order must NOT seed the payload
    cache with the raw reordered bytes — the decoder re-encodes
    canonically, so signature and digest checks see exactly the bytes
    the signer signed and field order alone cannot flip a verdict."""
    elements = [
        (t, bytes(v)) for t, v in TlvCodec.iter_views(encode_hop_body(hop))
    ]
    trailer = [e for e in elements if e[0] == HOP_F_SIGNATURE]
    payload = [e for e in elements if e[0] != HOP_F_SIGNATURE]
    # Reverse the non-measurement fields (ordering among measurements
    # is meaningful, so keep it); place/sequence always both exist, so
    # the result is genuinely out of canonical order.
    measurements = [e for e in payload if e[0] == HOP_F_MEASUREMENT]
    others = [e for e in payload if e[0] != HOP_F_MEASUREMENT]
    reordered = list(reversed(others)) + measurements + trailer
    wire = b"".join(Tlv(t, v).encode() for t, v in reordered)
    decoded = decode_hop_body(memoryview(wire))
    assert decoded == hop
    assert decoded.signed_payload() == hop.signed_payload()
    assert decoded.payload_digest() == hop.payload_digest()


def test_wire_missing_sequence_field_is_not_seeded():
    """The canonical encoder always emits the sequence field (even for
    0); a wire that omits it decodes fine but must re-encode — seeding
    would hand the signature check bytes the signer never produced."""
    hop = HopEvidence(
        place="sw1",
        measurements=((1, b"m"),),
        sequence=0,
        ingress_port=None,
        chain_head=None,
        packet_digest=None,
        signature=b"\x5a" * 64,
    )
    stripped = b"".join(
        Tlv(t, bytes(v)).encode()
        for t, v in TlvCodec.iter_views(encode_hop_body(hop))
        if t != HOP_F_SEQUENCE
    )
    decoded = decode_hop_body(memoryview(stripped))
    assert decoded == hop
    assert decoded.__dict__.get("_payload") is None
    assert decoded.signed_payload() == hop.signed_payload()


def test_duplicated_payload_field_is_not_seeded():
    """A duplicated non-measurement field (last one wins in decode) is
    non-canonical: the seeded prefix would not equal the re-encode."""
    hop = HopEvidence(
        place="sw2",
        measurements=(),
        sequence=7,
        ingress_port=None,
        chain_head=None,
        packet_digest=None,
        signature=b"",
    )
    elements = [
        (t, bytes(v)) for t, v in TlvCodec.iter_views(encode_hop_body(hop))
    ]
    doubled = b"".join(
        Tlv(t, v).encode() for t, v in [elements[0]] + elements
    )
    decoded = decode_hop_body(memoryview(doubled))
    assert decoded == hop
    assert decoded.__dict__.get("_payload") is None
    assert decoded.signed_payload() == hop.signed_payload()


@settings(max_examples=50, deadline=None)
@given(nodes=st.lists(evidence_trees, max_size=4))
def test_lazy_nodes_materialize_on_demand(nodes):
    stream = b"".join(encode_node(n) for n in nodes)
    lazy = list(iter_lazy_nodes(memoryview(stream)))
    assert [entry.kind for entry in lazy] == [n.KIND for n in nodes]
    assert [entry.node() for entry in lazy] == nodes
