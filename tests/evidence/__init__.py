"""Tests for the unified evidence substrate (repro.evidence)."""
