"""Round-trip + strict-rejection properties of the batched-record TLVs.

The batched hop record (kind 0x11) carries the hop payload, the
epoch-root header, and a Merkle inclusion proof. Round trips must be
byte-identical (content addressing); the decoder must reject every
malformed framing — wrong crypto-field widths, missing mandatory
fields, an inner per-record signature, unknown TLV types — rather than
guess, because these bytes arrive from the network.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evidence import (
    BATCHED_RECORD_TLV_TYPE,
    BatchedHopEvidence,
    decode_batched_hop_body,
    decode_node,
    decode_record_stack,
    encode_batched_hop_body,
    encode_node,
    encode_record_stack,
)
from repro.evidence.codec import (
    RECORD_TLV_TYPE,
    decode_hop_body,
    encode_hop_body,
)
from repro.evidence.nodes import (
    BATCH_F_EPOCH,
    BATCH_F_HOP,
    BATCH_F_ROOT,
    BATCH_F_ROOT_SIG,
    BATCH_F_SIBLING_LEFT,
    BATCH_F_SIBLING_RIGHT,
    KIND_BATCHED_HOP,
    HopEvidence,
)
from repro.util.errors import CodecError
from repro.util.tlv import Tlv, TlvCodec

batched_nodes = st.builds(
    BatchedHopEvidence,
    place=st.text(min_size=1, max_size=8),
    measurements=st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.binary(max_size=16)),
        max_size=3,
    ).map(tuple),
    sequence=st.integers(min_value=0, max_value=2**32 - 1),
    ingress_port=st.none() | st.integers(min_value=0, max_value=0xFFFF),
    chain_head=st.none() | st.binary(min_size=1, max_size=32),
    packet_digest=st.none() | st.binary(min_size=1, max_size=32),
    signature=st.just(b""),  # batched records never sign per-record
    epoch_id=st.integers(min_value=0, max_value=2**64 - 1),
    epoch_root=st.binary(min_size=32, max_size=32),
    root_signature=st.binary(min_size=64, max_size=64),
    leaf_index=st.integers(min_value=0, max_value=2**32 - 1),
    leaf_count=st.integers(min_value=0, max_value=2**32 - 1),
    proof_path=st.lists(
        st.tuples(st.binary(min_size=32, max_size=32), st.booleans()),
        max_size=5,
    ).map(tuple),
)


@settings(max_examples=200, deadline=None)
@given(node=batched_nodes)
def test_encode_decode_encode_is_stable(node):
    wire = encode_node(node)
    decoded = decode_node(wire)
    assert decoded == node
    assert encode_node(decoded) == wire
    assert decoded.content_digest == node.content_digest


@settings(max_examples=200, deadline=None)
@given(node=batched_nodes)
def test_body_round_trip_preserves_payload_and_proof(node):
    decoded = decode_batched_hop_body(encode_batched_hop_body(node))
    assert decoded == node
    # The Merkle leaf (signed payload) and the epoch header both
    # survive: what the proof binds is exactly what went over the wire.
    assert decoded.signed_payload() == node.signed_payload()
    assert decoded.epoch_payload() == node.epoch_payload()
    assert decoded.proof().path == node.proof().path


@settings(max_examples=100, deadline=None)
@given(nodes=st.lists(batched_nodes, max_size=4))
def test_record_stack_carries_batched_records(nodes):
    stack = encode_record_stack(nodes)
    assert decode_record_stack(stack) == nodes


@settings(max_examples=100, deadline=None)
@given(node=batched_nodes, cut=st.integers(min_value=1, max_value=16))
def test_truncated_wire_is_rejected(node, cut):
    wire = encode_node(node)
    with pytest.raises(CodecError):
        decode_node(wire[: len(wire) - cut])


def make_node(**overrides):
    fields = dict(
        place="s1",
        measurements=((0, b"\x01" * 32),),
        sequence=7,
        signature=b"",
        epoch_id=3,
        epoch_root=b"\x05" * 32,
        root_signature=b"\x06" * 64,
        leaf_index=1,
        leaf_count=4,
        proof_path=((b"\x07" * 32, True), (b"\x08" * 32, False)),
    )
    fields.update(overrides)
    return BatchedHopEvidence(**fields)


def reframe(body_elements):
    """Re-encode a batched body from raw TLV elements."""
    return TlvCodec.encode(body_elements)


def body_elements(node):
    return list(TlvCodec.iter_decode(encode_batched_hop_body(node)))


class TestStrictRejection:
    def test_wire_kind_constant_is_stable(self):
        assert BATCHED_RECORD_TLV_TYPE == KIND_BATCHED_HOP == 0x11
        assert RECORD_TLV_TYPE == 0x10  # per-packet framing unchanged

    @pytest.mark.parametrize("width", [0, 15, 17])
    def test_epoch_header_must_be_16_bytes(self, width):
        elements = [
            e if e.type != BATCH_F_EPOCH else Tlv(BATCH_F_EPOCH, b"\x00" * width)
            for e in body_elements(make_node())
        ]
        with pytest.raises(CodecError, match="16 bytes"):
            decode_batched_hop_body(reframe(elements))

    @pytest.mark.parametrize("width", [0, 31, 33])
    def test_epoch_root_must_be_32_bytes(self, width):
        elements = [
            e if e.type != BATCH_F_ROOT else Tlv(BATCH_F_ROOT, b"\x00" * width)
            for e in body_elements(make_node())
        ]
        with pytest.raises(CodecError, match="32 bytes"):
            decode_batched_hop_body(reframe(elements))

    @pytest.mark.parametrize("width", [0, 63, 65])
    def test_root_signature_must_be_64_bytes(self, width):
        elements = [
            e
            if e.type != BATCH_F_ROOT_SIG
            else Tlv(BATCH_F_ROOT_SIG, b"\x00" * width)
            for e in body_elements(make_node())
        ]
        with pytest.raises(CodecError, match="64 bytes"):
            decode_batched_hop_body(reframe(elements))

    @pytest.mark.parametrize("sibling_type", [
        BATCH_F_SIBLING_LEFT, BATCH_F_SIBLING_RIGHT,
    ])
    @pytest.mark.parametrize("width", [0, 31, 33])
    def test_proof_siblings_must_be_32_bytes(self, sibling_type, width):
        elements = body_elements(make_node(proof_path=()))
        elements.append(Tlv(sibling_type, b"\x00" * width))
        with pytest.raises(CodecError, match="sibling"):
            decode_batched_hop_body(reframe(elements))

    @pytest.mark.parametrize("missing,message", [
        (BATCH_F_HOP, "missing hop payload"),
        (BATCH_F_EPOCH, "missing epoch header"),
        (BATCH_F_ROOT, "missing epoch root"),
        (BATCH_F_ROOT_SIG, "missing epoch-root signature"),
    ])
    def test_mandatory_fields_cannot_be_dropped(self, missing, message):
        elements = [e for e in body_elements(make_node()) if e.type != missing]
        with pytest.raises(CodecError, match=message):
            decode_batched_hop_body(reframe(elements))

    def test_inner_per_record_signature_is_rejected(self):
        """A batched record that ALSO carries a per-record signature is
        malformed: trust must flow through exactly one path."""
        signed_hop = HopEvidence(
            place="s1",
            measurements=((0, b"\x01" * 32),),
            sequence=7,
            signature=b"\x09" * 64,
        )
        elements = [
            e
            if e.type != BATCH_F_HOP
            else Tlv(BATCH_F_HOP, encode_hop_body(signed_hop))
            for e in body_elements(make_node())
        ]
        with pytest.raises(CodecError, match="per-record signature"):
            decode_batched_hop_body(reframe(elements))

    def test_unknown_tlv_type_is_rejected(self):
        elements = body_elements(make_node())
        elements.append(Tlv(0x7F, b"surprise"))
        with pytest.raises(CodecError, match="unknown batched-record TLV"):
            decode_batched_hop_body(reframe(elements))

    def test_garbage_hop_payload_is_rejected(self):
        elements = [
            e if e.type != BATCH_F_HOP else Tlv(BATCH_F_HOP, b"\xff\xff\xff")
            for e in body_elements(make_node())
        ]
        with pytest.raises(CodecError):
            decode_batched_hop_body(reframe(elements))

    def test_hop_payload_is_the_merkle_leaf_bytes(self):
        """The BATCH_F_HOP TLV value must equal ``signed_payload()`` —
        the exact bytes the Merkle proof commits to."""
        node = make_node()
        (hop_tlv,) = [
            e for e in body_elements(node) if e.type == BATCH_F_HOP
        ]
        assert hop_tlv.value == node.signed_payload()
        assert decode_hop_body(hop_tlv.value).signature == b""
