"""Fuzz tests: every wire decoder fails *cleanly* on arbitrary bytes.

Attestation parsers sit directly on the attack surface (the RA shim
arrives from the network), so decoders must never raise anything but
:class:`~repro.util.errors.CodecError` — no IndexError, no
UnicodeDecodeError, no silent nonsense.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wire import decode_compiled_policy
from repro.evidence.codec import decode_hop_body, decode_node, iter_decode_nodes
from repro.net.headers import (
    EthernetHeader,
    Ipv4Header,
    RaShimHeader,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import Packet
from repro.pera.records import HopRecord, decode_record_stack
from repro.util.errors import CodecError
from repro.util.tlv import TlvCodec

DECODERS = [
    ("tlv", TlvCodec.decode),
    ("ethernet", EthernetHeader.decode),
    ("ipv4", Ipv4Header.decode),
    ("udp", UdpHeader.decode),
    ("tcp", TcpHeader.decode),
    ("ra_shim", RaShimHeader.decode),
    ("packet", Packet.decode),
    ("hop_record", HopRecord.decode),
    ("record_stack", decode_record_stack),
    ("compiled_policy", decode_compiled_policy),
    ("evidence_node", decode_node),
    ("evidence_stream", lambda data: list(iter_decode_nodes(data))),
    ("evidence_hop_body", decode_hop_body),
]


@pytest.mark.parametrize("name,decoder", DECODERS, ids=[n for n, _ in DECODERS])
@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=256))
def test_decoder_raises_only_codec_error(name, decoder, data):
    try:
        decoder(data)
    except CodecError:
        pass  # the one acceptable failure mode


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=14, max_size=128))
def test_packet_decode_round_trips_when_it_succeeds(data):
    """If arbitrary bytes *do* parse as a packet, re-encoding the parse
    must reproduce a byte string that parses identically."""
    try:
        packet = Packet.decode(data)
    except CodecError:
        return
    again = Packet.decode(packet.encode())
    assert again == packet


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=200))
def test_bitflipped_real_records_never_crash(data):
    """Mutations of a genuine record stack fail cleanly too."""
    from repro.crypto.keys import KeyPair
    from repro.pera.inertia import InertiaClass
    from repro.pera.records import encode_record_stack

    record = HopRecord(
        place="s1",
        measurements=((InertiaClass.PROGRAM, b"\x01" * 32),),
    ).sign_with(KeyPair.generate("s1"))
    genuine = bytearray(encode_record_stack([record]))
    for index, byte in enumerate(data[: len(genuine)]):
        genuine[index % len(genuine)] ^= byte
    try:
        decode_record_stack(bytes(genuine))
    except CodecError:
        pass
