"""Tests for the discrete-event simulator, routing, hosts and flows."""

import pytest

from repro.net.flows import Flow, FlowGenerator
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.routing import all_pairs_next_hop, path_ports, shortest_path
from repro.net.simulator import Node, Simulator
from repro.net.topology import Topology, linear_topology
from repro.util.errors import NetworkError


class Repeater(Node):
    """Forwards every packet out the other port (2-port node)."""

    def handle_packet(self, packet, in_port):
        out = 2 if in_port == 1 else 1
        self.sim.transmit(self.name, out, packet)


def two_hosts_one_switch():
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("h2", kind="host")
    topo.add_node("s1")
    topo.add_link("h1", 1, "s1", 1, latency_s=1e-6)
    topo.add_link("s1", 2, "h2", 1, latency_s=1e-6)
    sim = Simulator(topo)
    h1 = Host("h1", mac=0x1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=0x2, ip=ip_to_int("10.0.0.2"))
    sim.bind(h1)
    sim.bind(h2)
    sim.bind(Repeater("s1"))
    return sim, h1, h2


class TestSimulatorCore:
    def test_end_to_end_delivery(self):
        sim, h1, h2 = two_hosts_one_switch()
        h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1000, dst_port=2000,
                    payload=b"ping")
        sim.run()
        assert len(h2.received_packets) == 1
        assert h2.received_packets[0].payload == b"ping"

    def test_latency_accumulates(self):
        sim, h1, h2 = two_hosts_one_switch()
        h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()
        arrival = h2.received[0][0]
        assert arrival >= 2e-6  # two link propagation delays

    def test_unbound_node_drops(self):
        topo = Topology()
        topo.add_node("h1", kind="host")
        topo.add_node("dark")
        topo.add_link("h1", 1, "dark", 1)
        sim = Simulator(topo)
        h1 = Host("h1", mac=1, ip=2)
        sim.bind(h1)
        h1.send_udp(dst_mac=9, dst_ip=9, src_port=1, dst_port=2)
        sim.run()
        assert sim.stats.packets_dropped == 1

    def test_unwired_port_drops(self):
        sim, h1, h2 = two_hosts_one_switch()
        assert not sim.transmit("s1", 99, Packet.udp_packet(1, 2, 3, 4, 5, 6))
        assert sim.stats.packets_dropped == 1

    def test_bind_validations(self):
        sim, h1, _ = two_hosts_one_switch()
        with pytest.raises(NetworkError):
            sim.bind(Host("h1", mac=1, ip=1))  # already bound
        with pytest.raises(NetworkError):
            sim.bind(Host("ghost", mac=1, ip=1))  # not in topology

    def test_schedule_negative_rejected(self):
        sim, _, _ = two_hosts_one_switch()
        with pytest.raises(NetworkError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_bounds_time(self):
        sim, h1, h2 = two_hosts_one_switch()
        sim.schedule(10.0, lambda: h1.send_udp(dst_mac=2, dst_ip=2, src_port=1, dst_port=2))
        processed = sim.run(until=5.0)
        assert processed == 0
        assert sim.clock.now == 5.0

    def test_event_ordering_deterministic(self):
        sim, _, _ = two_hosts_one_switch()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.schedule(0.5, lambda: order.append("c"))
        sim.run()
        assert order == ["c", "a", "b"]  # ties break by insertion order

    def test_control_channel(self):
        sim, h1, h2 = two_hosts_one_switch()
        sim.send_control("h1", "h2", {"kind": "evidence"}, size_hint=100)
        sim.run()
        assert len(h2.control_received) == 1
        assert h2.control_received[0][1] == "h1"
        assert sim.stats.control_bytes == 100

    def test_control_unknown_recipient_counts_drop(self):
        """Control drops are accounted symmetrically with dataplane
        drops: observable in stats, not an exception, not silence."""
        sim, _, _ = two_hosts_one_switch()
        assert sim.send_control("h1", "ghost", "x") is False
        assert sim.stats.control_dropped == 1
        assert sim.stats.control_messages == 0
        assert sim.stats.control_bytes == 0

    def test_control_drop_at_delivery_counts(self):
        """A recipient that vanishes between send and delivery is a
        counted control drop, never a crash mid-event-loop."""
        sim, h1, h2 = two_hosts_one_switch()
        assert sim.send_control("h1", "h2", "evidence", size_hint=10) is True
        del sim._nodes["h2"]  # unbind between send and delivery
        sim.run()
        assert sim.stats.control_dropped == 1
        assert sim.stats.control_messages == 1  # the send itself counted

    def test_stats_accumulate(self):
        sim, h1, h2 = two_hosts_one_switch()
        for _ in range(3):
            h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()
        assert sim.stats.packets_transmitted == 6  # 3 pkts x 2 links
        assert sim.stats.bytes_transmitted > 0


class TestStatsAccounting:
    """SimStats must account every byte and every drop, on every path:
    transmit, link loss, dark ports, policy drops and the control
    channel (satellite: symmetric drop accounting)."""

    def test_transmit_counts_packets_and_bytes(self):
        sim, h1, h2 = two_hosts_one_switch()
        h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2,
                    payload=b"x" * 10)
        sim.run()
        assert sim.stats.packets_transmitted == 2  # two links
        wire = h2.received_packets[0].wire_length
        assert sim.stats.bytes_transmitted == 2 * wire
        assert sim.stats.packets_dropped == 0

    def test_link_loss_counts_drops_not_transmits(self):
        topo = Topology()
        topo.add_node("h1", kind="host")
        topo.add_node("h2", kind="host")
        topo.add_link("h1", 1, "h2", 1, drop_rate=0.999999)
        sim = Simulator(topo, seed=7)
        h1 = Host("h1", mac=1, ip=1)
        h2 = Host("h2", mac=2, ip=2)
        sim.bind(h1)
        sim.bind(h2)
        for _ in range(20):
            h1.send_udp(dst_mac=2, dst_ip=2, src_port=1, dst_port=2)
        sim.run()
        assert sim.stats.packets_dropped > 0
        assert (sim.stats.packets_transmitted + sim.stats.packets_dropped
                == 20)
        assert len(h2.received_packets) == sim.stats.packets_transmitted

    def test_dark_port_drop_counted(self):
        sim, _, _ = two_hosts_one_switch()
        sim.transmit("s1", 42, Packet.udp_packet(1, 2, 3, 4, 5, 6))
        assert sim.stats.packets_dropped == 1
        assert sim.stats.packets_transmitted == 0

    def test_policy_drop_counted(self):
        sim, _, _ = two_hosts_one_switch()
        sim.drop("s1", Packet.udp_packet(1, 2, 3, 4, 5, 6), reason="acl deny")
        assert sim.stats.packets_dropped == 1

    def test_control_accounting_symmetric_with_dataplane(self):
        """Delivered and dropped control messages are both visible."""
        sim, h1, h2 = two_hosts_one_switch()
        assert sim.send_control("h1", "h2", "ok", size_hint=5) is True
        assert sim.send_control("h1", "ghost", "lost", size_hint=5) is False
        sim.run()
        assert sim.stats.control_messages == 1
        assert sim.stats.control_bytes == 5
        assert sim.stats.control_dropped == 1
        assert len(h2.control_received) == 1


class TestTraceBounding:
    """The event trace and packet log are ring buffers: memory stays
    bounded under heavy traffic and evictions are counted."""

    def test_packet_log_bounded_and_evictions_counted(self):
        sim, h1, h2 = two_hosts_one_switch()
        assert sim.packet_log.capacity == 65536  # default bound
        sim.trace_enabled = True
        sim.packet_log = type(sim.packet_log)(4)
        for _ in range(10):
            h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()
        assert len(sim.packet_log) == 4
        assert sim.stats.dropped_trace_entries > 0
        # The survivors are the *newest* entries.
        times = [entry.time for entry in sim.packet_log]
        assert times == sorted(times)

    def test_trace_limit_constructor_param(self):
        topo = Topology()
        topo.add_node("h1", kind="host")
        topo.add_node("h2", kind="host")
        topo.add_link("h1", 1, "h2", 1)
        sim = Simulator(topo, trace_limit=3)
        sim.trace_enabled = True
        h1 = Host("h1", mac=1, ip=1)
        h2 = Host("h2", mac=2, ip=2)
        sim.bind(h1)
        sim.bind(h2)
        for _ in range(8):
            h1.send_udp(dst_mac=2, dst_ip=2, src_port=1, dst_port=2)
        sim.run()
        assert len(sim.trace) == 3
        assert len(sim.packet_log) == 3
        assert sim.stats.dropped_trace_entries > 0

    def test_tracing_disabled_records_nothing(self):
        sim, h1, h2 = two_hosts_one_switch()
        h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()
        assert len(sim.trace) == 0
        assert len(sim.packet_log) == 0
        assert sim.stats.dropped_trace_entries == 0


class TestRouting:
    def test_shortest_path_linear(self):
        topo = linear_topology(3)
        assert shortest_path(topo, "h-src", "h-dst") == [
            "h-src", "s1", "s2", "s3", "h-dst",
        ]

    def test_same_node(self):
        topo = linear_topology(2)
        assert shortest_path(topo, "s1", "s1") == ["s1"]

    def test_no_path(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(NetworkError, match="no path"):
            shortest_path(topo, "a", "b")

    def test_unknown_node(self):
        topo = linear_topology(2)
        with pytest.raises(NetworkError):
            shortest_path(topo, "ghost", "s1")

    def test_prefers_low_latency(self):
        topo = Topology()
        for name in ["a", "b", "fast", "slow"]:
            topo.add_node(name)
        topo.add_link("a", 1, "slow", 1, latency_s=10e-6)
        topo.add_link("slow", 2, "b", 1, latency_s=10e-6)
        topo.add_link("a", 2, "fast", 1, latency_s=1e-6)
        topo.add_link("fast", 2, "b", 2, latency_s=1e-6)
        assert shortest_path(topo, "a", "b") == ["a", "fast", "b"]

    def test_path_ports(self):
        topo = linear_topology(2)
        hops = path_ports(topo, ["h-src", "s1", "s2", "h-dst"])
        assert hops == [("h-src", 1), ("s1", 2), ("s2", 2)]

    def test_all_pairs_next_hop(self):
        topo = linear_topology(2)
        table = all_pairs_next_hop(topo)
        assert table[("s1", "h-dst")] == 2
        assert table[("s2", "h-src")] == 1
        assert ("s1", "s1") not in table


class TestFlows:
    def test_flow_delivery(self):
        sim, h1, h2 = two_hosts_one_switch()
        gen = FlowGenerator(sim)
        gen.schedule_flow(Flow(
            src_host="h1", dst_host="h2", src_port=1000, dst_port=2000,
            packet_count=5, interval_s=1e-4,
        ))
        sim.run()
        assert len(h2.received_packets) == 5
        assert gen.total_sent() == 5

    def test_flow_timing(self):
        sim, h1, h2 = two_hosts_one_switch()
        gen = FlowGenerator(sim)
        gen.schedule_flow(Flow(
            src_host="h1", dst_host="h2", src_port=1, dst_port=2,
            packet_count=2, interval_s=1.0, start_s=0.5,
        ))
        sim.run()
        times = [t for t, _ in h2.received]
        assert times[0] >= 0.5
        assert times[1] - times[0] == pytest.approx(1.0, rel=1e-3)

    def test_flow_validation(self):
        with pytest.raises(NetworkError):
            Flow(src_host="a", dst_host="b", src_port=1, dst_port=2,
                 packet_count=-1)

    def test_flow_endpoints_must_be_hosts(self):
        sim, _, _ = two_hosts_one_switch()
        gen = FlowGenerator(sim)
        with pytest.raises(NetworkError):
            gen.schedule_flow(Flow(
                src_host="s1", dst_host="h2", src_port=1, dst_port=2, packet_count=1,
            ))

    def test_jitter_deterministic_with_seed(self):
        def run_once():
            sim, h1, h2 = two_hosts_one_switch()
            gen = FlowGenerator(sim, seed=42)
            gen.schedule_flow(Flow(
                src_host="h1", dst_host="h2", src_port=1, dst_port=2,
                packet_count=5, interval_s=1e-3, jitter_s=1e-4,
            ))
            sim.run()
            return [t for t, _ in h2.received]

        assert run_once() == run_once()
