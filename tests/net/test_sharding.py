"""Unit tests for the sharded simulation core.

Covers the partitioner (balanced contiguous anchor chunks, host
adoption, lookahead derivation), the ``leaf_spine`` canned fabric, the
windowed shard engine with its ownership gates and lookahead guard,
``SimStats.merge`` algebra, and the canonical audit-journal merge.
The end-to-end byte-identity contract lives in
``tests/core/test_sharded_determinism.py``.
"""

import random

import pytest

from repro.net.headers import EthernetHeader, ip_to_int
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.sharding import (
    Partition,
    ShardSimulator,
    partition_topology,
)
from repro.net.shardrun import ScenarioSpec, run_sharded
from repro.net.simulator import Node, SimStats, Simulator
from repro.net.topology import Topology, leaf_spine
from repro.telemetry.audit import merge_audit_events
from repro.util.errors import NetworkError


def chain(n=4, latency_s=1e-6):
    """n switches in a line, one host on each end."""
    topo = Topology()
    for i in range(n):
        topo.add_node(f"s{i}")
    topo.add_node("h-a", kind="host")
    topo.add_node("h-b", kind="host")
    for i in range(n - 1):
        topo.add_link(f"s{i}", 2, f"s{i+1}", 1, latency_s=latency_s)
    topo.add_link("h-a", 1, "s0", 1, latency_s=latency_s)
    topo.add_link(f"s{n-1}", 3, "h-b", 1, latency_s=latency_s)
    return topo


class TestPartitionTopology:
    def test_balanced_contiguous_split(self):
        part = partition_topology(chain(4), shards=2)
        assert part.shard_count == 2
        assert part.nodes_of(0) == ["h-a", "s0", "s1"]
        assert part.nodes_of(1) == ["h-b", "s2", "s3"]

    def test_uneven_split_front_loads_remainder(self):
        part = partition_topology(chain(5), shards=2)
        # 5 anchors over 2 shards: 3 + 2.
        assert sorted(n for n in part.nodes_of(0) if n.startswith("s")) == [
            "s0", "s1", "s2",
        ]

    def test_hosts_adopt_their_switch_shard(self):
        part = partition_topology(chain(4), shards=4)
        assert part.owner["h-a"] == part.owner["s0"]
        assert part.owner["h-b"] == part.owner["s3"]

    def test_effective_count_capped_at_anchor_count(self):
        part = partition_topology(chain(2), shards=8)
        assert part.shard_count == 2

    def test_lookahead_is_min_cut_latency(self):
        part = partition_topology(chain(4, latency_s=3e-6), shards=2)
        # control_latency_s default (50e-6) exceeds the 3µs cut link.
        assert part.lookahead_s == pytest.approx(3e-6)
        assert len(part.cut_links) == 1

    def test_lookahead_capped_by_control_latency(self):
        part = partition_topology(
            chain(4, latency_s=3e-6), shards=2, control_latency_s=1e-6
        )
        assert part.lookahead_s == pytest.approx(1e-6)

    def test_single_shard_has_infinite_lookahead(self):
        part = partition_topology(chain(4), shards=1)
        assert part.lookahead_s == float("inf")
        assert part.cut_links == ()

    def test_zero_latency_cut_rejected(self):
        topo = Topology()
        topo.add_node("s0")
        topo.add_node("s1")
        topo.add_link("s0", 1, "s1", 1, latency_s=0.0)
        with pytest.raises(NetworkError, match="lookahead"):
            partition_topology(topo, shards=2)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(NetworkError):
            partition_topology(chain(2), shards=0)

    def test_partition_is_deterministic(self):
        a = partition_topology(leaf_spine(6, 2), shards=4)
        b = partition_topology(leaf_spine(6, 2), shards=4)
        assert a.owner == b.owner
        assert a.lookahead_s == b.lookahead_s


class TestLeafSpine:
    def test_shape(self):
        topo = leaf_spine(4, 2, hosts_per_leaf=3)
        switches = topo.nodes_of_kind("switch")
        hosts = topo.nodes_of_kind("host")
        assert len(switches) == 6
        assert len(hosts) == 12
        # Every leaf uplinks to every spine, plus one link per host.
        assert len(topo.links) == 4 * 2 + 12

    def test_port_conventions(self):
        topo = leaf_spine(3, 2, hosts_per_leaf=2)
        # Leaf downlinks 1..hosts_per_leaf, uplinks after.
        assert topo.neighbor("leaf00", 1) == ("h-leaf00-0", 1)
        assert topo.neighbor("leaf00", 2) == ("h-leaf00-1", 1)
        assert topo.neighbor("leaf00", 3) == ("spine00", 1)
        assert topo.neighbor("leaf00", 4) == ("spine01", 1)
        # Spine port 1+li faces leaf li.
        assert topo.neighbor("spine01", 3) == ("leaf02", 4)

    def test_names_zero_padded_for_lexicographic_order(self):
        topo = leaf_spine(12, 2)
        leaves = [n for n in topo.node_names if n.startswith("leaf")]
        assert leaves == sorted(leaves)
        assert "leaf02" in leaves and "leaf11" in leaves

    def test_uplinks_slower_than_host_links(self):
        topo = leaf_spine(2, 1)
        latencies = {
            frozenset((l.node_a, l.node_b)): l.latency_s for l in topo.links
        }
        assert latencies[frozenset(("leaf00", "spine00"))] > latencies[
            frozenset(("h-leaf00-0", "leaf00"))
        ]

    def test_degenerate_shapes_rejected(self):
        with pytest.raises(NetworkError):
            leaf_spine(0, 1)
        with pytest.raises(NetworkError):
            leaf_spine(1, 0)
        with pytest.raises(NetworkError):
            leaf_spine(1, 1, hosts_per_leaf=-1)


def make_packet():
    return Packet(eth=EthernetHeader(dst=2, src=1))


def two_host_spec():
    """h-a on shard 0 sends one packet to h-b on shard 1."""
    def build(sim):
        topo_hosts = {}
        a = Host("h-a", mac=1, ip=ip_to_int("10.0.0.1"))
        b = Host("h-b", mac=2, ip=ip_to_int("10.0.1.1"))
        sim.bind(a)
        sim.bind(b)
        for name in ("s0", "s1", "s2", "s3"):
            sim.bind(_ForwardRight(name))
        topo_hosts["a"], topo_hosts["b"] = a, b
        sim.schedule_on("h-a", 0.0, lambda: a.send_udp(
            dst_mac=2, dst_ip=b.ip, src_port=1, dst_port=2, payload=b"x",
        ))
        return topo_hosts

    def harvest(sim, ctx):
        return {
            "delivered": len(ctx["b"].received) if sim.owns("h-b") else 0,
        }

    return ScenarioSpec(topology=lambda: chain(4), build=build, harvest=harvest)


class _ForwardRight(Node):
    """Minimal switch behaviour: everything goes out the next port."""

    def handle_packet(self, packet, in_port):
        out = 3 if self.name == "s3" else 2
        self.sim.transmit(self.name, out, packet)


class TestWindowedEngine:
    def test_cross_shard_delivery(self):
        result = run_sharded(two_host_spec(), shards=2)
        assert sum(out["delivered"] for out in result.outputs) == 1
        assert result.windows > 1

    def test_events_match_monolith(self):
        mono = run_sharded(two_host_spec(), shards=1)
        duo = run_sharded(two_host_spec(), shards=2)
        assert duo.stats.as_dict() == mono.stats.as_dict()
        assert mono.windows == 1  # infinite lookahead: one window

    def test_shard_busy_time_recorded(self):
        result = run_sharded(two_host_spec(), shards=2)
        assert len(result.shard_busy_s) == 2
        assert result.critical_path_s == max(result.shard_busy_s)

    def test_lookahead_violation_raises(self):
        part = partition_topology(chain(4), shards=2)
        sim = ShardSimulator(chain(4), part, shard_id=0)
        sim._window_end = 1.0  # open window [0, 1)
        with pytest.raises(NetworkError, match="lookahead violation"):
            sim._schedule_packet_delivery("s2", 1, make_packet(), delay=0.1)

    def test_bad_shard_id_rejected(self):
        part = partition_topology(chain(4), shards=2)
        with pytest.raises(NetworkError):
            ShardSimulator(chain(4), part, shard_id=2)


class TestOwnershipGates:
    def make(self, shard_id=0):
        topo = chain(4)
        part = partition_topology(topo, shards=2)
        return ShardSimulator(topo, part, shard_id=shard_id)

    def test_owns(self):
        sim = self.make(0)
        assert sim.owns("s0") and sim.owns("h-a")
        assert not sim.owns("s3") and not sim.owns("h-b")

    def test_foreign_bind_is_replica(self):
        sim = self.make(0)
        b = Host("h-b", mac=2, ip=ip_to_int("10.0.1.1"))
        sim.bind(b)
        # Resolvable (controllers need the full world) but not owned.
        assert sim.node("h-b") is b
        assert "h-b" in sim.bound_nodes
        assert not sim.owns("h-b")

    def test_foreign_transmit_is_gated(self):
        sim = self.make(0)
        sim.bind(_ForwardRight("s3"))
        assert sim.transmit("s3", 2, make_packet()) is True
        assert sim.stats.packets_transmitted == 0

    def test_foreign_control_send_is_gated(self):
        sim = self.make(0)
        assert sim.send_control("s3", "s0", {"m": 1}) is True
        assert sim.stats.control_messages == 0

    def test_schedule_on_foreign_node_is_noop(self):
        sim = self.make(0)
        fired = []
        sim.schedule_on("s3", 0.0, lambda: fired.append(1))
        sim.schedule_on("s0", 0.0, lambda: fired.append(2))
        sim.run_window(1.0)
        assert fired == [2]

    def test_schedule_replicated_fires_everywhere(self):
        fired = []
        for shard_id in (0, 1):
            sim = self.make(shard_id)
            sim.schedule_replicated("h-a", 0.0, lambda s=shard_id: fired.append(s))
            sim.run_window(1.0)
        assert fired == [0, 1]

    def test_double_bind_rejected(self):
        sim = self.make(0)
        sim.bind(Host("h-b", mac=2, ip=ip_to_int("10.0.1.1")))
        with pytest.raises(NetworkError):
            sim.bind(Host("h-b", mac=2, ip=ip_to_int("10.0.1.1")))

    def test_monolith_simulator_gate_compat(self):
        # The shared scenario builds rely on the monolith answering
        # the same protocol: owns() is always true, schedule_on /
        # schedule_replicated degrade to plain schedule.
        sim = Simulator(chain(4))
        assert sim.owns("s3")
        fired = []
        sim.schedule_on("s3", 0.0, lambda: fired.append(1))
        sim.schedule_replicated("h-a", 0.0, lambda: fired.append(2))
        sim.run()
        assert sorted(fired) == [1, 2]


class TestSimStatsMerge:
    def random_stats(self, rng):
        from dataclasses import fields
        return SimStats(**{f.name: rng.randrange(1000) for f in fields(SimStats)})

    def test_merge_round_trip_property(self):
        """Splitting counts across shards and merging in any grouping
        reproduces the monolith totals — 50 random trials."""
        from dataclasses import fields
        rng = random.Random(1234)
        for _ in range(50):
            parts = [self.random_stats(rng) for _ in range(rng.randrange(2, 6))]
            expected = {
                f.name: sum(getattr(p, f.name) for p in parts)
                for f in fields(SimStats)
            }
            # Left fold.
            folded = parts[0]
            for p in parts[1:]:
                folded = folded.merge(p)
            assert folded.as_dict() == expected
            # Random grouping (tree fold over a shuffled order).
            shuffled = parts[:]
            rng.shuffle(shuffled)
            while len(shuffled) > 1:
                i = rng.randrange(len(shuffled) - 1)
                shuffled[i : i + 2] = [shuffled[i].merge(shuffled[i + 1])]
            assert shuffled[0].as_dict() == expected

    def test_merge_identity(self):
        stats = SimStats(packets_transmitted=7, events_processed=3)
        merged = stats.merge(SimStats())
        assert merged.as_dict() == stats.as_dict()

    def test_merge_does_not_mutate(self):
        a = SimStats(packets_transmitted=1)
        b = SimStats(packets_transmitted=2)
        a.merge(b)
        assert a.packets_transmitted == 1
        assert b.packets_transmitted == 2


def _event(time_s, actor, seq, trace=None, kind="k"):
    return {
        "seq": seq,
        "time_s": time_s,
        "kind": kind,
        "actor": actor,
        "trace": trace,
        "hop": None,
        "digest": None,
        "detail": {},
    }


class TestAuditMerge:
    def test_orders_by_time_then_trace_then_actor(self):
        merged = merge_audit_events([
            [_event(2.0, "b", 1), _event(1.0, "b", 2, trace="t2")],
            [_event(1.0, "a", 1, trace="t1")],
        ])
        assert [(e["time_s"], e["actor"]) for e in merged] == [
            (1.0, "a"), (1.0, "b"), (2.0, "b"),
        ]
        assert [e["seq"] for e in merged] == [1, 2, 3]

    def test_per_actor_order_preserved(self):
        # One actor's events keep their journal (causal) order even
        # when timestamps tie.
        merged = merge_audit_events([
            [_event(1.0, "a", 1, kind="first"), _event(1.0, "a", 2, kind="second")],
        ])
        assert [e["kind"] for e in merged] == ["first", "second"]

    def test_partition_invariance(self):
        """The merged journal is identical no matter how actors are
        distributed over shards."""
        a = [_event(1.0, "a", 1), _event(1.5, "a", 2)]
        b = [_event(1.0, "b", 1), _event(2.0, "b", 2)]
        one_shard = merge_audit_events([
            sorted(a + b, key=lambda e: (e["time_s"], e["actor"]))
        ])
        # Renumber the single-journal seqs the way one shard would
        # have assigned them.
        for seq, event in enumerate(one_shard, start=1):
            event["seq"] = seq
        two_shards = merge_audit_events([a, b])
        assert one_shard == two_shards
