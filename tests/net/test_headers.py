"""Tests for byte-accurate header encode/decode."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import (
    IPPROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    RaShimHeader,
    TcpHeader,
    UdpHeader,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
)
from repro.util.errors import CodecError


class TestAddressParsing:
    def test_ip_round_trip(self):
        assert int_to_ip(ip_to_int("10.1.2.3")) == "10.1.2.3"

    def test_ip_known_value(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001

    def test_ip_malformed(self):
        for bad in ["10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"]:
            with pytest.raises(CodecError):
                ip_to_int(bad)

    def test_mac_round_trip(self):
        assert int_to_mac(mac_to_int("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_mac_malformed(self):
        for bad in ["aa:bb:cc", "zz:bb:cc:dd:ee:ff", "aabbccddeeff"]:
            with pytest.raises(CodecError):
                mac_to_int(bad)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_ip_int_round_trip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(st.integers(min_value=0, max_value=0xFFFFFFFFFFFF))
    def test_mac_int_round_trip(self, value):
        assert mac_to_int(int_to_mac(value)) == value


class TestEthernet:
    def test_round_trip(self):
        hdr = EthernetHeader(dst=0x010203040506, src=0x0A0B0C0D0E0F)
        assert EthernetHeader.decode(hdr.encode()) == hdr

    def test_wire_length(self):
        assert len(EthernetHeader(0, 0).encode()) == EthernetHeader.WIRE_LEN

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            EthernetHeader.decode(b"\x00" * 13)


class TestIpv4:
    def test_round_trip(self):
        hdr = Ipv4Header(src=ip_to_int("10.0.0.1"), dst=ip_to_int("10.0.0.2"),
                         protocol=IPPROTO_UDP, ttl=17, total_length=48)
        assert Ipv4Header.decode(hdr.encode()) == hdr

    def test_checksum_valid_on_wire(self):
        from repro.util.bits import checksum16

        wire = Ipv4Header(src=1, dst=2).encode()
        assert checksum16(wire) == 0

    def test_corrupted_checksum_rejected(self):
        wire = bytearray(Ipv4Header(src=1, dst=2).encode())
        wire[15] ^= 0xFF  # flip a bit in src address
        with pytest.raises(CodecError, match="checksum"):
            Ipv4Header.decode(bytes(wire))

    def test_ttl_decrement(self):
        hdr = Ipv4Header(src=1, dst=2, ttl=2)
        assert hdr.decrement_ttl().ttl == 1

    def test_ttl_zero_cannot_decrement(self):
        with pytest.raises(CodecError):
            Ipv4Header(src=1, dst=2, ttl=0).decrement_ttl()

    def test_wrong_version_rejected(self):
        wire = bytearray(Ipv4Header(src=1, dst=2).encode())
        wire[0] = (6 << 4) | 5
        with pytest.raises(CodecError, match="version"):
            Ipv4Header.decode(bytes(wire))


class TestUdpTcp:
    def test_udp_round_trip(self):
        hdr = UdpHeader(src_port=1234, dst_port=80, length=20)
        assert UdpHeader.decode(hdr.encode()) == hdr

    def test_tcp_round_trip(self):
        hdr = TcpHeader(src_port=1, dst_port=2, seq=3, ack=4,
                        flags=TcpHeader.FLAG_SYN | TcpHeader.FLAG_ACK)
        assert TcpHeader.decode(hdr.encode()) == hdr

    def test_tcp_wire_length(self):
        assert len(TcpHeader(1, 2).encode()) == TcpHeader.WIRE_LEN


class TestRaShim:
    def test_round_trip(self):
        hdr = RaShimHeader(flags=RaShimHeader.FLAG_POLICY, hop_count=3, body=b"tlvs")
        assert RaShimHeader.decode(hdr.encode()) == hdr

    def test_bad_magic(self):
        wire = bytearray(RaShimHeader().encode())
        wire[0] = 0x00
        with pytest.raises(CodecError, match="magic"):
            RaShimHeader.decode(bytes(wire))

    def test_bad_version(self):
        wire = bytearray(RaShimHeader().encode())
        wire[2] = 99
        with pytest.raises(CodecError, match="version"):
            RaShimHeader.decode(bytes(wire))

    def test_truncated_body(self):
        wire = RaShimHeader(body=b"abcdef").encode()
        with pytest.raises(CodecError, match="truncated"):
            RaShimHeader.decode(wire[:-1])

    def test_with_hop_increments(self):
        assert RaShimHeader(hop_count=1).with_hop().hop_count == 2

    def test_wire_length(self):
        hdr = RaShimHeader(body=b"12345")
        assert hdr.wire_length == 13
        assert len(hdr.encode()) == 13

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=65535),
        st.binary(max_size=256),
    )
    def test_round_trip_property(self, flags, hops, body):
        hdr = RaShimHeader(flags=flags, hop_count=hops, body=body)
        assert RaShimHeader.decode(hdr.encode()) == hdr
