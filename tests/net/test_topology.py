"""Tests for topology construction and canned topologies."""

import pytest

from repro.net.topology import (
    Link,
    Topology,
    fat_tree_topology,
    linear_topology,
    ring_topology,
    star_topology,
)
from repro.util.errors import NetworkError


class TestTopologyBasics:
    def test_add_and_query_nodes(self):
        topo = Topology()
        topo.add_node("s1")
        topo.add_node("h1", kind="host")
        assert topo.node_names == ["h1", "s1"]
        assert topo.kind_of("h1") == "host"
        assert topo.nodes_of_kind("switch") == ["s1"]

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("s1")
        with pytest.raises(NetworkError):
            topo.add_node("s1")

    def test_link_wiring(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", 1, "b", 2)
        assert topo.neighbor("a", 1) == ("b", 2)
        assert topo.neighbor("b", 2) == ("a", 1)

    def test_link_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(NetworkError):
            topo.add_link("a", 1, "ghost", 1)

    def test_port_reuse_rejected(self):
        topo = Topology()
        for name in "abc":
            topo.add_node(name)
        topo.add_link("a", 1, "b", 1)
        with pytest.raises(NetworkError, match="already wired"):
            topo.add_link("a", 1, "c", 1)

    def test_port_towards(self):
        topo = Topology()
        for name in "abc":
            topo.add_node(name)
        topo.add_link("a", 5, "b", 1)
        topo.add_link("a", 7, "c", 1)
        assert topo.port_towards("a", "c") == 7

    def test_port_towards_missing(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(NetworkError):
            topo.port_towards("a", "b")

    def test_neighbors_sorted(self):
        topo = Topology()
        for name in ["a", "z", "m"]:
            topo.add_node(name)
        topo.add_link("a", 1, "z", 1)
        topo.add_link("a", 2, "m", 1)
        assert topo.neighbors_of("a") == ["m", "z"]


class TestLink:
    def test_transit_delay(self):
        link = Link("a", 1, "b", 1, latency_s=1e-6, bandwidth_bps=1e9)
        # 1000-byte frame: 8 us serialization + 1 us propagation.
        assert link.transit_delay(1000) == pytest.approx(9e-6)

    def test_other_end_validates(self):
        link = Link("a", 1, "b", 2)
        with pytest.raises(NetworkError):
            link.other_end("c")

    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            Link("a", 1, "b", 1, latency_s=-1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(NetworkError):
            Link("a", 1, "b", 1, bandwidth_bps=0)


class TestCannedTopologies:
    def test_linear_structure(self):
        topo = linear_topology(3)
        assert topo.nodes_of_kind("switch") == ["s1", "s2", "s3"]
        assert topo.nodes_of_kind("host") == ["h-dst", "h-src"]
        assert topo.neighbor("h-src", 1) == ("s1", 1)
        assert topo.neighbor("s1", 2) == ("s2", 1)
        assert topo.neighbor("s3", 2) == ("h-dst", 1)

    def test_linear_no_hosts(self):
        topo = linear_topology(2, hosts=False)
        assert topo.nodes_of_kind("host") == []

    def test_linear_minimum(self):
        with pytest.raises(NetworkError):
            linear_topology(0)

    def test_star_structure(self):
        topo = star_topology(4)
        assert topo.neighbors_of("core") == ["h1", "h2", "h3", "h4"]

    def test_ring_structure(self):
        topo = ring_topology(4)
        # Each switch has exactly 2 switch neighbors + 1 host.
        for i in range(1, 5):
            neighbors = topo.neighbors_of(f"s{i}")
            assert len(neighbors) == 3

    def test_ring_minimum(self):
        with pytest.raises(NetworkError):
            ring_topology(2)

    def test_fat_tree_counts(self):
        k = 4
        topo = fat_tree_topology(k)
        switches = topo.nodes_of_kind("switch")
        hosts = topo.nodes_of_kind("host")
        assert len(switches) == (k // 2) ** 2 + k * k  # core + (agg+edge) per pod
        assert len(hosts) == k**3 // 4

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(NetworkError):
            fat_tree_topology(3)

    def test_fat_tree_connected(self):
        from repro.net.routing import shortest_path

        topo = fat_tree_topology(4)
        hosts = topo.nodes_of_kind("host")
        path = shortest_path(topo, hosts[0], hosts[-1])
        assert path[0] == hosts[0] and path[-1] == hosts[-1]
