"""Multipath routing: tie-breaks, flow hashing, ECMP and flowlets."""

import pytest

from repro.net.routing import (
    EcmpSelector,
    FlowletTable,
    all_pairs_next_hops,
    predict_multipath_path,
    shortest_path,
    stable_flow_hash,
)
from repro.net.topology import Topology, leaf_spine
from repro.util.errors import NetworkError


def diamond(latencies):
    """s -> {a, b} -> d with per-edge latencies (sa, ad, sb, bd)."""
    sa, ad, sb, bd = latencies
    topo = Topology()
    for name in ("s", "a", "b", "d"):
        topo.add_node(name)
    topo.add_link("s", 1, "b", 1, latency_s=sb)
    topo.add_link("s", 2, "a", 1, latency_s=sa)
    topo.add_link("b", 2, "d", 1, latency_s=bd)
    topo.add_link("a", 2, "d", 2, latency_s=ad)
    return topo


class TestShortestPathTieBreak:
    def test_equal_cost_tie_breaks_lexicographically(self):
        # Both paths cost 4us, but the path through "b" reaches "d"
        # first (b is only 1us out). Only the <=-re-push lets the
        # later, lexicographically smaller path through "a" compete —
        # a strict < would silently return s-b-d.
        topo = diamond((2e-6, 2e-6, 1e-6, 3e-6))
        assert shortest_path(topo, "s", "d") == ["s", "a", "d"]

    def test_tie_break_is_on_path_not_port_order(self):
        # Mirror case: the cheaper first hop goes through "a" already;
        # the tie-break must not flip the answer.
        topo = diamond((1e-6, 3e-6, 2e-6, 2e-6))
        assert shortest_path(topo, "s", "d") == ["s", "a", "d"]

    def test_strictly_cheaper_path_beats_lexicographic_order(self):
        topo = diamond((2e-6, 3e-6, 1e-6, 1e-6))
        assert shortest_path(topo, "s", "d") == ["s", "b", "d"]


class TestStableFlowHash:
    def test_deterministic_across_calls(self):
        key = ("10.0.0.1", "10.0.0.2", 17, 1234, 4433)
        assert stable_flow_hash(7, *key) == stable_flow_hash(7, *key)

    def test_seed_changes_hash(self):
        key = ("10.0.0.1", "10.0.0.2", 17, 1234, 4433)
        assert stable_flow_hash(1, *key) != stable_flow_hash(2, *key)

    def test_field_boundaries_matter(self):
        assert stable_flow_hash(0, "ab", "c") != stable_flow_hash(0, "a", "bc")

    def test_known_value_is_pinned(self):
        # Process-stability is the whole point: pin one value so an
        # accidental switch to randomized hash() fails loudly.
        assert stable_flow_hash(0) == 0xCBF29CE484222325
        assert stable_flow_hash(7, "a") == 0x08986907B541EE72


class TestEcmpSelector:
    def test_same_seed_same_pick(self):
        members = (2, 3, 5, 7)
        a, b = EcmpSelector(42), EcmpSelector(42)
        for i in range(100):
            key = ("10.0.0.1", f"10.0.1.{i}", 17, 1000 + i, 9000)
            assert a.pick(members, key) == b.pick(members, key)

    def test_different_seeds_disagree_somewhere(self):
        members = (1, 2, 3, 4)
        a, b = EcmpSelector(1), EcmpSelector(2)
        keys = [("h", f"d{i}", 17, i, 80) for i in range(50)]
        assert any(a.pick(members, k) != b.pick(members, k) for k in keys)

    def test_spread_covers_all_members(self):
        members = (1, 2, 3, 4)
        selector = EcmpSelector(9)
        counts = {m: 0 for m in members}
        for i in range(4000):
            key = (f"10.0.{i % 16}.1", f"10.1.{i}.2", 17, i, 443)
            counts[selector.pick(members, key)] += 1
        mean = 4000 / len(members)
        # FNV over distinct keys should land well within 20% of even.
        assert all(abs(c - mean) / mean < 0.2 for c in counts.values())

    def test_empty_members_rejected(self):
        with pytest.raises(NetworkError):
            EcmpSelector(0).pick((), ("a", "b"))


class TestFlowletTable:
    KEY = ("10.0.0.1", "10.0.0.2", 17, 1000, 2000)
    MEMBERS = (1, 2, 3, 4, 5, 6, 7, 8)

    def test_pinned_within_gap(self):
        table = FlowletTable(seed=3, idle_gap_s=50e-6)
        first = table.pick(self.MEMBERS, self.KEY, 0.0)
        for i in range(1, 20):
            assert table.pick(self.MEMBERS, self.KEY, i * 10e-6) == first
        assert table.repicks == 0
        assert table.serial_of(self.KEY) == 0

    def test_repick_only_after_idle_gap(self):
        table = FlowletTable(seed=3, idle_gap_s=50e-6)
        table.pick(self.MEMBERS, self.KEY, 0.0)
        table.pick(self.MEMBERS, self.KEY, 50e-6)  # exactly at gap: no
        assert table.repicks == 0
        table.pick(self.MEMBERS, self.KEY, 101e-6)  # > gap since last
        assert table.repicks == 1
        assert table.serial_of(self.KEY) == 1

    def test_gap_rotation_changes_member_eventually(self):
        table = FlowletTable(seed=5, idle_gap_s=10e-6)
        seen = set()
        now = 0.0
        for _ in range(16):
            seen.add(table.pick(self.MEMBERS, self.KEY, now))
            now += 20e-6  # every packet opens a new flowlet
        assert len(seen) > 1

    def test_packet_budget_rotates(self):
        table = FlowletTable(seed=1, idle_gap_s=1.0, flowlet_n_packets=4)
        for i in range(12):
            table.pick(self.MEMBERS, self.KEY, i * 1e-6)
        assert table.repicks == 2  # after packets 4 and 8
        assert table.serial_of(self.KEY) == 2

    def test_same_seed_replays_identically(self):
        args = dict(seed=11, idle_gap_s=20e-6, flowlet_n_packets=3)
        a, b = FlowletTable(**args), FlowletTable(**args)
        times = [0.0, 5e-6, 40e-6, 41e-6, 42e-6, 43e-6, 90e-6]
        picks_a = [a.pick(self.MEMBERS, self.KEY, t) for t in times]
        picks_b = [b.pick(self.MEMBERS, self.KEY, t) for t in times]
        assert picks_a == picks_b
        assert a.repicks == b.repicks

    def test_invalid_parameters(self):
        with pytest.raises(NetworkError):
            FlowletTable(seed=0, idle_gap_s=0.0)
        with pytest.raises(NetworkError):
            FlowletTable(seed=0, flowlet_n_packets=-1)
        with pytest.raises(NetworkError):
            FlowletTable(seed=0).pick((), self.KEY, 0.0)

    def test_congestion_signal_forces_boundary(self):
        table = FlowletTable(seed=3, idle_gap_s=50e-6)
        table.pick(self.MEMBERS, self.KEY, 0.0)
        # Well within the gap, but the packet carries a congestion
        # signal: the flowlet ends early and the serial bumps.
        table.pick(self.MEMBERS, self.KEY, 10e-6, congested=True)
        assert table.repicks == 1
        assert table.congestion_repicks == 1
        assert table.serial_of(self.KEY) == 1

    def test_congestion_repick_cooldown(self):
        table = FlowletTable(seed=3, idle_gap_s=50e-6)
        table.pick(self.MEMBERS, self.KEY, 0.0)
        for i in range(1, 10):
            table.pick(
                self.MEMBERS, self.KEY, i * 1e-6, congested=True
            )
        # A whole marked burst within one idle gap re-picks once, not
        # once per packet — the cooldown stops path thrashing.
        assert table.congestion_repicks == 1
        table.pick(self.MEMBERS, self.KEY, 100e-6, congested=True)
        assert table.congestion_repicks <= 2

    def test_congestion_never_changes_member_hash(self):
        """The signal only changes *when* the serial bumps, never how
        the member is chosen — the determinism pin."""
        a = FlowletTable(seed=11, idle_gap_s=50e-6)
        b = FlowletTable(seed=11, idle_gap_s=50e-6)
        a.pick(self.MEMBERS, self.KEY, 0.0)
        b.pick(self.MEMBERS, self.KEY, 0.0)
        congested = a.pick(self.MEMBERS, self.KEY, 10e-6, congested=True)
        idle = b.pick(self.MEMBERS, self.KEY, 70e-6)  # idle-gap repick
        # Both tables sit at serial 1 for this flow; the pick is a pure
        # function of (seed, flow key, serial), so they agree exactly.
        assert a.serial_of(self.KEY) == b.serial_of(self.KEY) == 1
        assert congested == idle

    def test_congested_replay_is_deterministic(self):
        args = dict(seed=7, idle_gap_s=20e-6)
        a, b = FlowletTable(**args), FlowletTable(**args)
        schedule = [
            (0.0, False), (5e-6, True), (6e-6, True),
            (30e-6, False), (31e-6, True), (80e-6, False),
        ]
        picks_a = [
            a.pick(self.MEMBERS, self.KEY, t, congested=c)
            for t, c in schedule
        ]
        picks_b = [
            b.pick(self.MEMBERS, self.KEY, t, congested=c)
            for t, c in schedule
        ]
        assert picks_a == picks_b
        assert (a.repicks, a.congestion_repicks) == (
            b.repicks, b.congestion_repicks
        )


class TestAllPairsNextHops:
    def test_leaf_spine_equal_cost_uplinks(self):
        topo = leaf_spine(2, 2, hosts_per_leaf=1)
        table = all_pairs_next_hops(topo)
        # Cross-leaf: both spine uplinks tie; ports come back sorted.
        assert table[("leaf00", "h-leaf01-0")] == (2, 3)
        # Local host: single access port.
        assert table[("leaf00", "h-leaf00-0")] == (1,)
        # Spines see each leaf's host on exactly one downlink.
        assert table[("spine00", "h-leaf01-0")] == (2,)

    def test_destinations_subset(self):
        topo = leaf_spine(2, 2, hosts_per_leaf=1)
        table = all_pairs_next_hops(topo, destinations=["h-leaf00-0"])
        assert all(dst == "h-leaf00-0" for _, dst in table)

    def test_unknown_destination_rejected(self):
        topo = leaf_spine(2, 2, hosts_per_leaf=1)
        with pytest.raises(NetworkError):
            all_pairs_next_hops(topo, destinations=["nope"])


class TestPredictMultipathPath:
    def test_walk_matches_selector_choices(self):
        topo = leaf_spine(3, 2, hosts_per_leaf=1)
        table = all_pairs_next_hops(topo)
        selectors = {}

        def selector_for(node):
            return selectors.setdefault(node, EcmpSelector(1234))

        key = ("10.0.0.1", "10.0.2.1", 17, 5555, 80)
        path = predict_multipath_path(
            topo, table, "h-leaf00-0", "h-leaf02-0", key, selector_for
        )
        assert path[0] == "h-leaf00-0" and path[-1] == "h-leaf02-0"
        assert len(path) == 5  # host, leaf, spine, leaf, host
        # Re-walk: stateless selection is reproducible.
        again = predict_multipath_path(
            topo, table, "h-leaf00-0", "h-leaf02-0", key, selector_for
        )
        assert again == path
        # The spine actually chosen is the one the leaf's selector picks.
        members = table[("leaf00", "h-leaf02-0")]
        port = selector_for("leaf00").pick(members, key)
        assert topo.neighbor("leaf00", port)[0] == path[2]

    def test_no_next_hop_raises(self):
        topo = Topology()
        topo.add_node("x")
        topo.add_node("y")
        topo.add_link("x", 1, "y", 1)
        with pytest.raises(NetworkError):
            predict_multipath_path(
                topo, {}, "x", "y", ("k",), lambda n: EcmpSelector(0)
            )
