"""Tests for packet-trace recording and analysis."""


from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.net.trace import TraceAnalysis
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind


def build(switch_count=2, trace=True):
    topo = linear_topology(switch_count)
    sim = Simulator(topo)
    sim.trace_enabled = trace
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    for i in range(1, switch_count + 1):
        switch = NetworkAwarePeraSwitch(
            f"s{i}", config=EvidenceConfig(composition=CompositionMode.CHAINED)
        )
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config(
            "ctl", ipv4_forwarding_program()
        )
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
    return sim, src, dst


class TestTraceAnalysis:
    def test_disabled_by_default(self):
        sim, src, dst = build(trace=False)
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        assert sim.packet_log == []

    def test_path_reconstruction(self):
        sim, src, dst = build(switch_count=3)
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        analysis = TraceAnalysis.of(sim)
        flows = analysis.flows()
        assert len(flows) == 1
        assert analysis.path_of(flows[0]) == [
            "h-src", "s1", "s2", "s3", "h-dst",
        ]

    def test_in_band_evidence_makes_packets_grow(self):
        sim, src, dst = build(switch_count=3)
        policy = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "s3", "h-dst"],
            bindings={"client": "h-dst"},
            composition=CompositionMode.CHAINED,
        )
        src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY,
                body=encode_compiled_policy(policy),
            ),
        )
        sim.run()
        analysis = TraceAnalysis.of(sim)
        growth = analysis.growth_along_path(analysis.flows()[0])
        assert len(growth) == 4  # four links
        assert growth == sorted(growth)
        assert growth[-1] > growth[0]  # evidence accreted in-band

    def test_bytes_by_node(self):
        sim, src, dst = build()
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        totals = TraceAnalysis.of(sim).bytes_by_node()
        assert set(totals) == {"h-src", "s1", "s2"}
        assert all(v > 0 for v in totals.values())

    def test_packets_between(self):
        sim, src, dst = build()
        for _ in range(3):
            src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        analysis = TraceAnalysis.of(sim)
        assert analysis.packets_between("s1", "s2") == 3
        assert analysis.packets_between("s2", "s1") == 0

    def test_timeline_renders(self):
        sim, src, dst = build()
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        text = TraceAnalysis.of(sim).timeline(limit=2)
        assert "h-src:1 -> s1:1" in text
        assert "more" in text  # 3 entries, limit 2

    def test_not_truncated_under_bound(self):
        sim, src, dst = build()
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        analysis = TraceAnalysis.of(sim)
        assert not analysis.truncated
        assert analysis.dropped_entries == 0
        assert "truncated" not in analysis.timeline()


class TestTraceTruncation:
    """Analyses over an evicted (ring-buffer-bounded) log say so."""

    def test_truncation_surfaces_in_analysis(self):
        sim, src, dst = build()
        sim.packet_log = type(sim.packet_log)(2)
        for _ in range(4):
            src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        analysis = TraceAnalysis.of(sim)
        assert analysis.truncated
        assert analysis.dropped_entries == sim.packet_log.dropped
        assert analysis.dropped_entries > 0
        assert len(analysis.entries) == 2

    def test_timeline_carries_truncation_notice(self):
        sim, src, dst = build()
        sim.packet_log = type(sim.packet_log)(2)
        for _ in range(4):
            src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        text = TraceAnalysis.of(sim).timeline()
        assert text.startswith("(truncated:")
        assert "older entries evicted" in text
