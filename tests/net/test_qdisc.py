"""Tests for finite egress queues, ECN/PFC signals, and link-local
recovery (repro.net.qdisc)."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.qdisc import QueueConfig, RecoveryConfig
from repro.net.simulator import Node, Simulator
from repro.net.topology import Topology
from repro.telemetry.instrument import Telemetry
from repro.util.errors import NetworkError

_BW = 1e9  # 1 Gb/s: transfer times large enough to queue behind


def two_hosts(queue, drop_rate=0.0, seed=0, telemetry=None):
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("h2", kind="host")
    topo.add_link(
        "h1", 1, "h2", 1,
        latency_s=1e-6, bandwidth_bps=_BW,
        drop_rate=drop_rate, queue=queue,
    )
    sim = Simulator(topo, seed=seed, telemetry=telemetry)
    h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=2, ip=ip_to_int("10.0.1.1"))
    sim.bind(h1)
    sim.bind(h2)
    return sim, h1, h2


def burst(h1, h2, count, payload_bytes=64):
    for i in range(count):
        h1.send_udp(
            dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2,
            payload=i.to_bytes(2, "big") + b"\0" * (payload_bytes - 2),
        )


class TestTailDrop:
    def test_packet_capacity_overflow_drops_deterministically(self):
        sim, h1, h2 = two_hosts(QueueConfig(capacity_packets=2))
        # First send serializes immediately; the next two buffer; the
        # rest overflow a 2-packet queue.
        burst(h1, h2, 5)
        sim.run()
        assert len(h2.received_packets) == 3
        assert sim.stats.queue_drops == 2
        assert sim.stats.packets_dropped == 2

    def test_byte_capacity_overflow_drops(self):
        sim, h1, h2 = two_hosts(QueueConfig(capacity_bytes=256))
        burst(h1, h2, 6, payload_bytes=128)
        sim.run()
        assert sim.stats.queue_drops > 0
        assert (
            len(h2.received_packets) + sim.stats.queue_drops == 6
        )

    def test_no_queue_config_keeps_legacy_path(self):
        sim, h1, h2 = two_hosts(None)
        burst(h1, h2, 5)
        sim.run()
        assert len(h2.received_packets) == 5
        assert sim.stats.queue_drops == 0


class TestSerializationOccupancy:
    def test_port_held_for_transfer_time(self):
        sim, h1, h2 = two_hosts(QueueConfig())
        burst(h1, h2, 4, payload_bytes=1000)
        sim.run()
        assert len(h2.received_packets) == 4
        wire = h2.received_packets[0].wire_length
        transfer = wire * 8 / _BW
        # Four back-to-back serializations; the last arrival lands one
        # propagation delay after the fourth transfer completes.
        assert sim.clock.now == pytest.approx(4 * transfer + 1e-6)

    def test_fifo_order_preserved(self):
        sim, h1, h2 = two_hosts(QueueConfig())
        burst(h1, h2, 8)
        sim.run()
        seqs = [
            int.from_bytes(p.payload[:2], "big")
            for p in h2.received_packets
        ]
        assert seqs == sorted(seqs)


class TestEcnMarking:
    def test_marks_above_threshold_only(self):
        sim, h1, h2 = two_hosts(
            QueueConfig(ecn_threshold_bytes=1),
            telemetry=Telemetry(active=True),
        )
        burst(h1, h2, 4)
        sim.run()
        marks = [p.ecn for p in h2.received_packets]
        # Depth is measured before the packet is added: the first went
        # straight to the wire, the second found the buffer empty, and
        # only the packets queueing behind another one got marked.
        assert marks == [False, False, True, True]
        assert sim.stats.ecn_marked == 2

    def test_no_threshold_never_marks(self):
        sim, h1, h2 = two_hosts(QueueConfig())
        burst(h1, h2, 6)
        sim.run()
        assert sim.stats.ecn_marked == 0
        assert all(not p.ecn for p in h2.received_packets)


class _Forwarder(Node):
    """Minimal two-port relay: anything in on port 1 goes out port 2."""

    def handle_packet(self, packet, in_port):
        if in_port == 1:
            self.sim.transmit(self.name, 2, packet)


def relay_chain(queue, seed=0):
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("s1")
    topo.add_node("h2", kind="host")
    topo.add_link("h1", 1, "s1", 1, latency_s=1e-6,
                  bandwidth_bps=_BW, queue=queue)
    # The downstream hop is 100x slower, so s1's egress queue fills.
    topo.add_link("s1", 2, "h2", 1, latency_s=1e-6,
                  bandwidth_bps=_BW / 100, queue=queue)
    sim = Simulator(topo, seed=seed)
    h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=2, ip=ip_to_int("10.0.1.1"))
    s1 = _Forwarder("s1")
    for node in (h1, s1, h2):
        sim.bind(node)
    return sim, h1, h2


class TestPfcPauseResume:
    def test_backpressure_pauses_then_resumes_upstream(self):
        config = QueueConfig(
            capacity_bytes=1 << 20,
            capacity_packets=1024,
            pause_threshold_bytes=512,
            resume_threshold_bytes=128,
        )
        sim, h1, h2 = relay_chain(config)
        burst(h1, h2, 20, payload_bytes=200)
        sim.run()
        # The slow hop backed s1 up past the watermark: pauses went
        # upstream, yet (buffers being large enough) nothing was lost.
        assert sim.stats.pause_frames >= 1
        assert len(h2.received_packets) == 20
        assert sim.stats.queue_drops == 0
        # Every queue fully drained, so every pause was resumed.
        assert all(
            depth == 0 for _, _, depth in sim.qdisc_queue_depths()
        )

    def test_no_threshold_never_pauses(self):
        sim, h1, h2 = relay_chain(QueueConfig(capacity_packets=1024))
        burst(h1, h2, 20, payload_bytes=200)
        sim.run()
        assert sim.stats.pause_frames == 0


def corrupting_pair(rate, recovery, seed=0, drop_rate=0.0):
    telemetry = Telemetry(active=True)
    sim, h1, h2 = two_hosts(
        QueueConfig(recovery=recovery),
        drop_rate=drop_rate, seed=seed, telemetry=telemetry,
    )
    plan = FaultPlan(seed=seed)
    plan.corrupt_packets(0.0, "h1", "h2", rate=rate)
    injector = FaultInjector(plan)
    injector.attach(sim)
    return sim, h1, h2, injector


class TestLinkLocalRecovery:
    def test_corruption_recovered_without_loss(self):
        sim, h1, h2, injector = corrupting_pair(
            0.4, RecoveryConfig(retransmit_limit=16)
        )
        burst(h1, h2, 30)
        sim.run()
        assert len(h2.received_packets) == 30
        assert sim.stats.packets_dropped == 0
        assert sim.stats.recovery_retransmits > 0
        assert sim.stats.local_resends == sim.stats.recovery_retransmits
        # The CRC model detects the flip; the payload is never mangled.
        assert injector.stats.packets_corrupted > 0
        seqs = [
            int.from_bytes(p.payload[:2], "big")
            for p in h2.received_packets
        ]
        assert seqs == list(range(30))

    def test_recovery_audited(self):
        sim, h1, h2, _ = corrupting_pair(
            0.5, RecoveryConfig(retransmit_limit=16)
        )
        burst(h1, h2, 20)
        sim.run()
        kinds = {
            str(getattr(e.kind, "value", e.kind))
            for e in sim.telemetry.audit
        }
        assert "recovery.resent" in kinds

    def test_exhausted_retries_drop_with_reason(self):
        sim, h1, h2, _ = corrupting_pair(
            1.0, RecoveryConfig(retransmit_limit=2)
        )
        burst(h1, h2, 5)
        sim.run()
        # The first packet serializes synchronously before the fault
        # plan's t=0 activation event runs; the rest all corrupt.
        assert len(h2.received_packets) == 1
        assert sim.stats.packets_dropped == 4
        # Each lost packet burned its full retry budget first.
        assert sim.stats.recovery_retransmits == 8
        counter = sim.telemetry.counter(
            "net.link.dropped", node="h1", reason="recovery_exhausted"
        )
        assert counter.value == 4

    def test_without_recovery_corruption_passes_through(self):
        sim, h1, h2, injector = corrupting_pair(1.0, None, seed=1)
        burst(h1, h2, 5)
        sim.run()
        # No CRC model: the bit flip is silent, packets still arrive
        # (the pre-activation first packet aside, all corrupted).
        assert len(h2.received_packets) == 5
        assert injector.stats.packets_corrupted == 4
        assert sim.stats.recovery_retransmits == 0

    def test_in_order_release_floor_holds_later_packets(self):
        sim, h1, h2 = two_hosts(
            QueueConfig(recovery=RecoveryConfig(holding_packets=64))
        )
        burst(h1, h2, 1)
        sim.run()
        # White-box: pretend a recovery just pinned the release floor
        # far in the future; everything behind it must be held to it.
        queue = sim._qdisc().queues[("h1", 1)]
        floor = sim.clock.now + 1e-3
        queue.release_floor_s = floor
        burst(h1, h2, 3)
        sim.run()
        assert len(h2.received_packets) == 4
        assert sim.stats.recovery_held == 3
        assert sim.clock.now == pytest.approx(floor)

    def test_holding_buffer_overflow_drops(self):
        sim, h1, h2 = two_hosts(
            QueueConfig(recovery=RecoveryConfig(holding_packets=2)),
            telemetry=Telemetry(active=True),
        )
        burst(h1, h2, 1)
        sim.run()
        queue = sim._qdisc().queues[("h1", 1)]
        queue.release_floor_s = sim.clock.now + 1e-3
        burst(h1, h2, 5)
        sim.run()
        # Two packets held behind the floor, the streak past the
        # holding buffer dropped.
        assert sim.stats.recovery_held == 2
        counter = sim.telemetry.counter(
            "net.link.dropped", node="h1", reason="recovery_hold_overflow"
        )
        assert counter.value == 3
        assert len(h2.received_packets) == 3


class TestLegacyParity:
    def test_loss_pattern_matches_queueless_link(self):
        """Same seed, same loss stream: a queued link without recovery
        delivers exactly the packets the legacy path delivers."""
        outcomes = []
        for queue in (None, QueueConfig(capacity_packets=1024)):
            sim, h1, h2 = two_hosts(queue, drop_rate=0.35, seed=11)
            burst(h1, h2, 40)
            sim.run()
            outcomes.append(sorted(
                int.from_bytes(p.payload[:2], "big")
                for p in h2.received_packets
            ))
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 40


class TestConfigValidation:
    def test_rejects_bad_capacities(self):
        with pytest.raises(NetworkError):
            QueueConfig(capacity_bytes=0)
        with pytest.raises(NetworkError):
            QueueConfig(capacity_packets=0)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(NetworkError):
            QueueConfig(ecn_threshold_bytes=0)
        with pytest.raises(NetworkError):
            QueueConfig(resume_threshold_bytes=10)  # no pause threshold
        with pytest.raises(NetworkError):
            QueueConfig(
                pause_threshold_bytes=100, resume_threshold_bytes=200
            )

    def test_resume_defaults_to_half_pause(self):
        config = QueueConfig(pause_threshold_bytes=1000)
        assert config.resume_below_bytes == 500
        assert QueueConfig().resume_below_bytes is None

    def test_rejects_bad_recovery(self):
        with pytest.raises(NetworkError):
            RecoveryConfig(retransmit_limit=0)
        with pytest.raises(NetworkError):
            RecoveryConfig(holding_packets=0)


class TestConfigureQueues:
    def test_configures_all_links_and_strips(self):
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_node(name)
        topo.add_link("a", 1, "b", 1)
        topo.add_link("b", 2, "c", 1)
        config = QueueConfig(capacity_packets=8)
        assert topo.configure_queues(config) == 2
        assert all(link.queue is config for link in topo.links)
        assert topo.link_at("a", 1).queue is config
        assert topo.configure_queues(None) == 2
        assert all(link.queue is None for link in topo.links)

    def test_predicate_filters(self):
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_node(name)
        topo.add_link("a", 1, "b", 1)
        topo.add_link("b", 2, "c", 1)
        config = QueueConfig()
        changed = topo.configure_queues(
            config, predicate=lambda link: "c" in (link.node_a, link.node_b)
        )
        assert changed == 1
        assert topo.link_at("a", 1).queue is None
        assert topo.link_at("c", 1).queue is config
