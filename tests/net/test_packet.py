"""Tests for the packet model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import IPPROTO_UDP, RA_UDP_PORT, RaShimHeader, ip_to_int
from repro.net.packet import Packet
from repro.util.errors import CodecError


def make_udp(payload=b"hello", shim=None):
    return Packet.udp_packet(
        src_mac=0x1, dst_mac=0x2,
        src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int("10.0.0.2"),
        src_port=5555, dst_port=7777, payload=payload, ra_shim=shim,
    )


class TestPacketEncodeDecode:
    def test_udp_round_trip(self):
        pkt = make_udp()
        assert Packet.decode(pkt.encode()) == pkt

    def test_tcp_round_trip(self):
        pkt = Packet.tcp_packet(
            src_mac=1, dst_mac=2, src_ip=3, dst_ip=4,
            src_port=80, dst_port=443, payload=b"data", flags=0x02,
        )
        assert Packet.decode(pkt.encode()) == pkt

    def test_udp_with_shim_round_trip(self):
        shim = RaShimHeader(flags=RaShimHeader.FLAG_POLICY, body=b"policy-bytes")
        pkt = make_udp(shim=shim)
        decoded = Packet.decode(pkt.encode())
        assert decoded.ra_shim == shim
        assert decoded == pkt

    def test_shim_forces_ra_port(self):
        pkt = make_udp(shim=RaShimHeader())
        assert pkt.udp.dst_port == RA_UDP_PORT

    def test_wire_length_matches_encoding(self):
        for pkt in [make_udp(), make_udp(shim=RaShimHeader(body=b"x" * 20))]:
            assert pkt.wire_length == len(pkt.encode())

    def test_length_fields_consistent(self):
        pkt = make_udp(payload=b"x" * 10)
        assert pkt.ipv4.total_length == 20 + 8 + 10
        assert pkt.udp.length == 8 + 10

    def test_unknown_ethertype_kept_as_payload(self):
        from repro.net.headers import EthernetHeader

        raw = EthernetHeader(dst=1, src=2, ethertype=0x86DD).encode() + b"v6stuff"
        pkt = Packet.decode(raw)
        assert pkt.ipv4 is None
        assert pkt.payload == b"v6stuff"


class TestPacketOperations:
    def test_five_tuple(self):
        pkt = make_udp()
        assert pkt.five_tuple == (
            ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), IPPROTO_UDP, 5555, 7777,
        )

    def test_ttl_decrement_returns_new(self):
        pkt = make_udp()
        pkt2 = pkt.with_ttl_decremented()
        assert pkt2.ipv4.ttl == pkt.ipv4.ttl - 1
        assert pkt.ipv4.ttl == 64  # original untouched

    def test_with_shim_adjusts_lengths(self):
        pkt = make_udp(payload=b"x" * 4)
        shim = RaShimHeader(body=b"y" * 10)
        pkt2 = pkt.with_shim(shim)
        assert pkt2.udp.length == pkt.udp.length + shim.wire_length
        assert pkt2.ipv4.total_length == pkt.ipv4.total_length + shim.wire_length
        assert pkt2.wire_length == len(pkt2.encode())

    def test_with_shim_strip(self):
        shim = RaShimHeader(body=b"y" * 10)
        pkt = make_udp(shim=shim)
        stripped = pkt.with_shim(None)
        assert stripped.ra_shim is None
        assert stripped.wire_length == pkt.wire_length - shim.wire_length

    def test_with_shim_replace(self):
        pkt = make_udp(shim=RaShimHeader(body=b"a" * 4))
        pkt2 = pkt.with_shim(RaShimHeader(body=b"b" * 8))
        assert pkt2.wire_length == pkt.wire_length + 4
        assert Packet.decode(pkt2.encode()) == pkt2

    def test_with_shim_on_tcp_rejected(self):
        pkt = Packet.tcp_packet(1, 2, 3, 4, 80, 443)
        with pytest.raises(CodecError):
            pkt.with_shim(RaShimHeader())

    def test_repr_compact(self):
        text = repr(make_udp(shim=RaShimHeader(body=b"xy")))
        assert "ra(" in text and "udp(" in text

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_round_trip_with_arbitrary_payload_and_body(self, payload, body):
        pkt = make_udp(payload=payload, shim=RaShimHeader(body=body))
        assert Packet.decode(pkt.encode()) == pkt


class TestEncodeCaching:
    def test_encode_is_memoized_on_the_instance(self):
        pkt = make_udp()
        first = pkt.encode()
        assert pkt.encode() is first  # same object, not a re-build

    def test_wire_length_agrees_before_and_after_encoding(self):
        fresh = make_udp(shim=RaShimHeader(body=b"x" * 20))
        computed = fresh.wire_length  # arithmetic path (nothing cached)
        encoded_len = len(fresh.encode())
        assert computed == encoded_len
        assert fresh.wire_length == encoded_len  # cached path

    def test_derived_packets_do_not_inherit_stale_bytes(self):
        pkt = make_udp(payload=b"original")
        pkt.encode()  # populate the cache
        hopped = pkt.with_ttl_decremented()
        assert hopped.encode() != pkt.encode()
        assert Packet.decode(hopped.encode()) == hopped

    def test_cache_does_not_affect_equality_or_hashing(self):
        cold, warm = make_udp(), make_udp()
        warm.encode()
        assert cold == warm
        assert hash(cold) == hash(warm)
