"""Tests for deterministic link-loss injection."""

import pytest

from repro.core.appraisal import (
    PathAppraisalPolicy,
    hardware_reference,
    program_reference,
)
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.relying_party import RelyingParty
from repro.crypto.keys import KeyRegistry
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.pera.config import CompositionMode
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.util.errors import NetworkError


def lossy_network(drop_rate=0.3, seed=0):
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("h2", kind="host")
    topo.add_node("s1")
    topo.add_link("h1", 1, "s1", 1)
    topo.add_link("s1", 2, "h2", 1, drop_rate=drop_rate)
    sim = Simulator(topo, seed=seed)
    h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=2, ip=ip_to_int("10.0.1.1"))
    switch = NetworkAwarePeraSwitch("s1")
    for node in (h1, h2, switch):
        sim.bind(node)
    switch.runtime.arbitrate("ctl", 1)
    program = ipv4_forwarding_program()
    switch.runtime.set_forwarding_pipeline_config("ctl", program)
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    return sim, h1, h2, switch, program


class TestLossInjection:
    def test_zero_loss_delivers_all(self):
        sim, h1, h2, _, _ = lossy_network(drop_rate=0.0)
        for _ in range(20):
            h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()
        assert len(h2.received_packets) == 20

    def test_loss_drops_some(self):
        sim, h1, h2, _, _ = lossy_network(drop_rate=0.4)
        for _ in range(50):
            h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()
        delivered = len(h2.received_packets)
        assert 0 < delivered < 50
        assert sim.stats.packets_dropped == 50 - delivered

    def test_deterministic_given_seed(self):
        def run_once():
            sim, h1, h2, _, _ = lossy_network(drop_rate=0.4, seed=7)
            for _ in range(30):
                h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
            sim.run()
            return len(h2.received_packets)

        assert run_once() == run_once()

    def test_invalid_drop_rate_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(NetworkError):
            topo.add_link("a", 1, "b", 1, drop_rate=1.0)
        with pytest.raises(NetworkError):
            topo.add_link("a", 1, "b", 1, drop_rate=-0.1)

    def test_drops_are_audited_with_trace(self):
        """Every loss-RNG drop lands in the audit journal as a
        ``packet.dropped`` event carrying the victim's trace id."""
        from repro.telemetry.audit import AuditKind
        from repro.telemetry.instrument import Telemetry

        topo = Topology()
        topo.add_node("h1", kind="host")
        topo.add_node("h2", kind="host")
        topo.add_link("h1", 1, "h2", 1, drop_rate=0.5)
        telemetry = Telemetry(active=True)
        sim = Simulator(topo, seed=11, telemetry=telemetry)
        h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
        h2 = Host("h2", mac=2, ip=ip_to_int("10.0.1.1"))
        sim.bind(h1)
        sim.bind(h2)
        for _ in range(30):
            h1.send_udp(dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2)
        sim.run()
        assert sim.stats.packets_dropped > 0
        dropped = [
            e for e in telemetry.audit.events
            if e.kind == AuditKind.PACKET_DROPPED
        ]
        assert len(dropped) == sim.stats.packets_dropped
        assert all(e.detail.get("reason") == "link_loss" for e in dropped)
        assert all(e.trace is not None for e in dropped)

    def test_attestation_survives_loss(self):
        """Delivered packets still appraise; lost ones simply never
        arrive — loss does not corrupt evidence."""
        sim, h1, h2, switch, program = lossy_network(drop_rate=0.3, seed=3)
        anchors = KeyRegistry()
        anchors.register_pair(switch.keys)
        rp = RelyingParty(
            policy=ap1_bank_path_attestation(),
            appraisal=PathAppraisalPolicy(
                anchors=anchors,
                reference_measurements={
                    "s1": {
                        InertiaClass.HARDWARE: hardware_reference(
                            switch.engine.hardware_identity
                        ),
                        InertiaClass.PROGRAM: program_reference(program),
                    }
                },
                program_names={
                    program_reference(program): program.full_name
                },
            ),
            composition=CompositionMode.CHAINED,
        )
        rp.attach(sim, h1, h2)
        for _ in range(20):
            rp.send(b"x")
        sim.run()
        assert 0 < len(rp.verdicts) < 20  # some lost
        assert all(v.accepted for v in rp.verdicts)
