"""Fat-tree / leaf–spine generators and pod-aware shard partitioning."""

import pytest

from repro.net.sharding import partition_topology
from repro.net.topology import fabric_pod_map, fat_tree, leaf_spine
from repro.util.errors import NetworkError


class TestFatTreeGenerator:
    def test_k4_counts(self):
        topo = fat_tree(4)
        names = topo.node_names
        switches = [n for n in names if topo.kind_of(n) != "host"]
        hosts = [n for n in names if topo.kind_of(n) == "host"]
        assert len(switches) == 20  # 4 pods x (2+2) + 4 cores
        assert len(hosts) == 16  # 2 hosts on each of 8 edges

    def test_names_sort_pod_contiguously(self):
        topo = fat_tree(4)
        switches = sorted(
            n for n in topo.node_names if topo.kind_of(n) != "host"
        )
        # p00a00 p00a01 p00e00 p00e01 p01... cores last under 'z'.
        assert switches[:4] == ["p00a00", "p00a01", "p00e00", "p00e01"]
        assert switches[-4:] == ["zcore00", "zcore01", "zcore02", "zcore03"]

    def test_port_conventions(self):
        topo = fat_tree(4)  # hosts_per_edge defaults to k/2 = 2
        # Edge: hosts on 1..2, aggregation uplinks on 3..4.
        assert topo.neighbor("p00e00", 1)[0] == "h-p00e00-0"
        assert topo.neighbor("p00e00", 3)[0] == "p00a00"
        assert topo.neighbor("p00e00", 4)[0] == "p00a01"
        # Aggregation: edges on 1..2, core uplinks on 3..4.
        assert topo.neighbor("p00a01", 1)[0] == "p00e00"
        assert topo.neighbor("p00a01", 3)[0] == "zcore02"
        # Core ai*half+j faces pod p on port 1+p.
        for pod in range(4):
            assert topo.neighbor("zcore00", 1 + pod)[0] == f"p{pod:02d}a00"

    def test_hosts_per_edge_override(self):
        topo = fat_tree(4, hosts_per_edge=1)
        hosts = [n for n in topo.node_names if topo.kind_of(n) == "host"]
        assert len(hosts) == 8
        # Uplinks shift down with fewer access ports.
        assert topo.neighbor("p00e00", 2)[0] == "p00a00"

    def test_odd_k_rejected(self):
        with pytest.raises(NetworkError):
            fat_tree(5)
        with pytest.raises(NetworkError):
            fat_tree(0)


class TestFabricPodMap:
    def test_fat_tree_maps_every_switch(self):
        topo = fat_tree(4)
        pods = fabric_pod_map(topo)
        assert pods["p02e01"] == "p02"
        assert pods["p02a00"] == "p02"
        assert pods["zcore03"] == "zcore"
        assert "h-p00e00-0" not in pods
        switches = [n for n in topo.node_names if topo.kind_of(n) != "host"]
        assert set(pods) == set(switches)

    def test_all_or_nothing(self):
        topo = fat_tree(4)
        topo.add_node("oddball")  # one off-convention switch: no map
        assert fabric_pod_map(topo) == {}

    def test_leaf_spine_has_no_pods(self):
        assert fabric_pod_map(leaf_spine(2, 2)) == {}


class TestLeafSpineParallelLinks:
    def test_parallel_uplinks_wired(self):
        topo = leaf_spine(2, 2, hosts_per_leaf=1, parallel_links=2)
        # leaf0 uplinks: spine0 on ports 2,3 and spine1 on ports 4,5.
        assert topo.neighbor("leaf00", 2)[0] == "spine00"
        assert topo.neighbor("leaf00", 3)[0] == "spine00"
        assert topo.neighbor("leaf00", 4)[0] == "spine01"
        assert topo.neighbor("leaf00", 5)[0] == "spine01"

    def test_single_link_matches_legacy_convention(self):
        single = leaf_spine(2, 2, hosts_per_leaf=2, parallel_links=1)
        assert single.neighbor("leaf00", 3)[0] == "spine00"
        assert single.neighbor("spine01", 2)[0] == "leaf01"

    def test_invalid_parallel_links(self):
        with pytest.raises(NetworkError):
            leaf_spine(2, 2, parallel_links=0)


class TestPodAwarePartitioning:
    def test_no_pod_is_ever_split(self):
        topo = fat_tree(4)
        pods = fabric_pod_map(topo)
        for shards in (2, 3, 4, 5):
            part = partition_topology(topo, shards)
            owner_of_pod = {}
            for switch, tag in pods.items():
                owner_of_pod.setdefault(tag, set()).add(part.owner[switch])
            assert all(len(v) == 1 for v in owner_of_pod.values()), (
                shards,
                owner_of_pod,
            )

    def test_cuts_are_pod_core_only_and_set_lookahead(self):
        topo = fat_tree(4)
        part = partition_topology(topo, 4)
        pods = fabric_pod_map(topo)
        for link in part.cut_links:
            tags = {pods[link.node_a], pods[link.node_b]}
            assert "zcore" in tags and len(tags) == 2
        # Pod-core fabric links carry the 2us default; that's the window.
        assert part.lookahead_s == pytest.approx(2e-6)

    def test_balanced_within_one_group(self):
        topo = fat_tree(4)  # five groups of four switches each
        part = partition_topology(topo, 2)
        sizes = [
            sum(
                1
                for n in part.nodes_of(shard)
                if topo.kind_of(n) != "host"
            )
            for shard in range(part.shard_count)
        ]
        assert sum(sizes) == 20
        assert max(sizes) - min(sizes) <= 4

    def test_hosts_follow_their_edge_switch(self):
        topo = fat_tree(4)
        part = partition_topology(topo, 4)
        for name in topo.node_names:
            if topo.kind_of(name) == "host":
                edge = name.split("-")[1]
                assert part.owner[name] == part.owner[edge]

    def test_shards_capped_at_group_count(self):
        part = partition_topology(fat_tree(4), 10)
        assert part.shard_count <= 5  # 4 pods + the core block

    def test_explicit_pods_override(self):
        topo = leaf_spine(2, 2, hosts_per_leaf=1)
        pods = {
            "leaf00": "g0",
            "spine00": "g0",
            "leaf01": "g1",
            "spine01": "g1",
        }
        part = partition_topology(topo, 2, pods=pods)
        assert part.owner["leaf00"] == part.owner["spine00"]
        assert part.owner["leaf01"] == part.owner["spine01"]
        assert part.owner["leaf00"] != part.owner["leaf01"]

    def test_legacy_chunking_preserved_without_pods(self):
        topo = leaf_spine(4, 2, hosts_per_leaf=1)
        part = partition_topology(topo, 2)
        anchors = sorted(
            n for n in topo.node_names if topo.kind_of(n) != "host"
        )
        # Plain contiguous divmod split: 3 + 3 over six switches.
        assert [part.owner[n] for n in anchors] == [0, 0, 0, 1, 1, 1]
