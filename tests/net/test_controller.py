"""Tests for the central routing controller."""

import pytest

from repro.net.controller import RoutingController
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import fat_tree_topology, linear_topology, ring_topology
from repro.pera.switch import PeraSwitch
from repro.pisa.switch import PisaSwitch


def bind_hosts_and_switches(topo, switch_cls=PisaSwitch):
    sim = Simulator(topo)
    base_ip = ip_to_int("10.0.0.0")
    for index, name in enumerate(topo.nodes_of_kind("host"), start=1):
        sim.bind(Host(name, mac=index, ip=base_ip + index))
    for name in topo.nodes_of_kind("switch"):
        sim.bind(switch_cls(name))
    return sim


class TestRoutingController:
    def test_provision_linear(self):
        sim = bind_hosts_and_switches(linear_topology(3))
        controller = RoutingController(sim)
        routes = controller.provision()
        assert routes == 3 * 2  # 3 switches x 2 hosts

    def test_end_to_end_after_provision(self):
        sim = bind_hosts_and_switches(linear_topology(3))
        RoutingController(sim).provision()
        src = sim.node("h-src")
        dst = sim.node("h-dst")
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
                     payload=b"routed")
        sim.run()
        assert len(dst.received_packets) == 1

    def test_ring_any_pair(self):
        sim = bind_hosts_and_switches(ring_topology(4))
        RoutingController(sim).provision()
        h1, h3 = sim.node("h1"), sim.node("h3")
        h1.send_udp(dst_mac=h3.mac, dst_ip=h3.ip, src_port=1, dst_port=2)
        sim.run()
        assert len(h3.received_packets) == 1

    def test_fat_tree_cross_pod(self):
        topo = fat_tree_topology(4)
        sim = bind_hosts_and_switches(topo)
        RoutingController(sim).provision()
        hosts = topo.nodes_of_kind("host")
        src = sim.node(hosts[0])  # pod 0
        dst = sim.node(hosts[-1])  # pod 3
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        assert len(dst.received_packets) == 1

    def test_works_with_pera_switches(self):
        sim = bind_hosts_and_switches(linear_topology(2), switch_cls=PeraSwitch)
        RoutingController(sim).provision()
        src, dst = sim.node("h-src"), sim.node("h-dst")
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2)
        sim.run()
        assert len(dst.received_packets) == 1

    def test_mastership_conflict_detected(self):
        from repro.util.errors import NetworkError

        sim = bind_hosts_and_switches(linear_topology(1))
        switch = sim.node("s1")
        switch.runtime.arbitrate("rogue", 100)
        controller = RoutingController(sim, election_id=1)
        with pytest.raises(NetworkError, match="arbitration"):
            controller.take_mastership()

    def test_control_writes_invalidate_pera_cache(self):
        """P4Runtime writes must invalidate cached evidence (Fig. 4)."""
        from repro.net.headers import RaShimHeader
        from repro.pera.config import DetailLevel, EvidenceConfig

        bind_hosts_and_switches(linear_topology(1))
        # Rebind: need a config-detail PERA switch.
        sim2 = Simulator(linear_topology(1))
        src = Host("h-src", mac=1, ip=ip_to_int("10.0.0.1"))
        dst = Host("h-dst", mac=2, ip=ip_to_int("10.0.0.2"))
        switch = PeraSwitch("s1", config=EvidenceConfig(detail=DetailLevel.CONFIG))
        for node in (src, dst, switch):
            sim2.bind(node)
        controller = RoutingController(sim2)
        controller.provision()
        shim = RaShimHeader(flags=RaShimHeader.FLAG_POLICY)
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
                     ra_shim=shim)
        sim2.run()
        assert switch.ra_stats.signatures_produced == 1
        # A new route write invalidates the cached signed record.
        controller.install_host_routes()  # rewrites -> duplicate-safe?
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
                     ra_shim=shim)
        sim2.run()
        assert switch.ra_stats.signatures_produced == 2
