"""Failure matrix: every fault kind leaves exactly its audit trail.

Each scenario activates one fault kind against a live simulator and
asserts (a) the observable damage, (b) exactly one matching
``fault.injected`` activation event (plus ``fault.cleared`` for the
up/restart/window-end events), and (c) per-packet effect events that
carry the victim packet's trace id.
"""

import pytest

from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.relying_party import RelyingParty
from repro.crypto.keys import KeyRegistry
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.net.controller import RoutingController
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import Topology, linear_topology
from repro.pera.config import DetailLevel, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import athens_rogue_program, ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.telemetry.audit import AuditKind
from repro.telemetry.instrument import Telemetry
from repro.util.clock import SkewedClock
from repro.util.errors import NetworkError


def chain(telemetry, seed=0):
    """h1 -- s1 -- h2 with an attesting PERA switch."""
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("h2", kind="host")
    topo.add_node("s1")
    topo.add_link("h1", 1, "s1", 1)
    topo.add_link("s1", 2, "h2", 1)
    sim = Simulator(topo, seed=seed, telemetry=telemetry)
    h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=2, ip=ip_to_int("10.0.1.1"))
    switch = NetworkAwarePeraSwitch("s1")
    for node in (h1, h2, switch):
        sim.bind(node)
    switch.runtime.arbitrate("ctl", 1)
    program = ipv4_forwarding_program()
    switch.runtime.set_forwarding_pipeline_config("ctl", program)
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    return sim, h1, h2, switch, program


def oob_chain(telemetry, seed=0):
    """Like :func:`chain` but mirroring evidence out-of-band to a
    live collector host."""
    topo = linear_topology(1)
    topo.add_node("collector", kind="host")
    topo.add_link("s1", 3, "collector", 1)
    sim = Simulator(topo, seed=seed, telemetry=telemetry)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    collector = Host("collector", mac=0x3, ip=ip_to_int("10.0.2.1"))
    for node in (src, dst, collector):
        sim.bind(node)
    switch = NetworkAwarePeraSwitch(
        "s1",
        config=EvidenceConfig(detail=DetailLevel.MINIMAL),
        appraiser_node="collector",
        out_of_band=True,
    )
    sim.bind(switch)
    program = ipv4_forwarding_program()
    switch.runtime.arbitrate("ctl", 1)
    switch.runtime.set_forwarding_pipeline_config("ctl", program)
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    return sim, src, dst, collector, switch, program


def send_attested(src, dst):
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=b"probe",
        ra_shim=RaShimHeader(flags=RaShimHeader.FLAG_POLICY, body=b""),
    )


def relying_party(switch, program, telemetry):
    anchors = KeyRegistry()
    anchors.register_pair(switch.keys)
    return RelyingParty(
        policy=ap1_bank_path_attestation(),
        appraisal=PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements={switch.name: {
                InertiaClass.HARDWARE: hardware_reference(
                    switch.engine.hardware_identity
                ),
                InertiaClass.PROGRAM: program_reference(program),
            }},
            program_names={program_reference(program): program.full_name},
        ),
        telemetry=telemetry,
    )


def fault_audit(telemetry, fault, kind=AuditKind.FAULT_INJECTED):
    return [
        e for e in telemetry.audit.events
        if e.kind == kind and e.detail.get("fault") == fault
    ]


def drop_audit(telemetry, reason):
    return [
        e for e in telemetry.audit.events
        if e.kind == AuditKind.PACKET_DROPPED
        and e.detail.get("reason") == reason
    ]


class TestWiring:
    def test_attach_twice_raises(self):
        sim, *_ = chain(Telemetry(active=True))
        injector = FaultInjector(FaultPlan())
        injector.attach(sim)
        with pytest.raises(NetworkError):
            injector.attach(sim)


class TestLinkFaults:
    def test_link_down_drops_and_clears(self):
        telemetry = Telemetry(active=True)
        sim, h1, h2, _, _ = chain(telemetry)
        plan = FaultPlan().link_down(0.0, "s1", "h2", duration_s=5e-3)
        FaultInjector(plan).attach(sim)
        sim.schedule(1e-3, lambda: h1.send_udp(
            dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2
        ))
        sim.schedule(10e-3, lambda: h1.send_udp(
            dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2
        ))
        sim.run()
        assert len(h2.received_packets) == 1
        assert len(fault_audit(telemetry, FaultKind.LINK_DOWN)) == 1
        assert len(fault_audit(
            telemetry, FaultKind.LINK_UP, AuditKind.FAULT_CLEARED
        )) == 1
        drops = drop_audit(telemetry, "fault_link_down")
        assert len(drops) == 1
        assert drops[0].trace is not None

    def test_extra_loss_uses_injector_rng_and_audits(self):
        telemetry = Telemetry(active=True)
        sim, h1, h2, _, _ = chain(telemetry, seed=3)
        plan = FaultPlan(seed=3).link_loss(0.0, "s1", "h2", rate=0.9)
        plan.link_loss(1.0, "s1", "h2", rate=0.0)
        injector = FaultInjector(plan).attach(sim)
        for index in range(30):
            sim.schedule(index * 1e-3, lambda: h1.send_udp(
                dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2
            ))
        sim.run()
        assert injector.stats.extra_losses > 0
        assert len(h2.received_packets) == 30 - injector.stats.extra_losses
        assert len(fault_audit(telemetry, FaultKind.LINK_LOSS)) == 1
        assert len(fault_audit(
            telemetry, FaultKind.LINK_LOSS, AuditKind.FAULT_CLEARED
        )) == 1
        drops = drop_audit(telemetry, "fault_link_loss")
        assert len(drops) == injector.stats.extra_losses
        assert all(d.trace is not None for d in drops)


class TestNodeFaults:
    def test_crash_then_restart(self):
        telemetry = Telemetry(active=True)
        sim, h1, h2, _, _ = chain(telemetry)
        plan = FaultPlan().crash_node(0.0, "h2").restart_node(5e-3, "h2")
        FaultInjector(plan).attach(sim)
        sim.schedule(1e-3, lambda: h1.send_udp(
            dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2
        ))
        sim.schedule(10e-3, lambda: h1.send_udp(
            dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2
        ))
        sim.run()
        assert len(h2.received_packets) == 1
        assert len(fault_audit(telemetry, FaultKind.NODE_CRASH)) == 1
        assert len(fault_audit(
            telemetry, FaultKind.NODE_RESTART, AuditKind.FAULT_CLEARED
        )) == 1
        assert len(drop_audit(telemetry, "node_down")) == 1

    def test_clock_skew_rebinds_cache_clock(self):
        telemetry = Telemetry(active=True)
        sim, _, _, switch, _ = chain(telemetry)
        plan = FaultPlan().clock_skew(0.0, "s1", skew_s=120.0)
        FaultInjector(plan).attach(sim)
        sim.run()
        assert len(fault_audit(telemetry, FaultKind.CLOCK_SKEW)) == 1
        skewed = switch.cache._clock
        assert isinstance(skewed, SkewedClock)
        assert skewed.skew_s == pytest.approx(120.0)


class TestCorruption:
    def test_bit_flips_are_audited_per_victim(self):
        telemetry = Telemetry(active=True)
        sim, h1, h2, _, _ = chain(telemetry)
        plan = FaultPlan().corrupt_packets(
            0.0, "s1", "h2", rate=1.0, duration_s=0.1
        )
        injector = FaultInjector(plan).attach(sim)
        for index in range(3):
            sim.schedule(index * 1e-3, lambda: h1.send_udp(
                dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2,
                payload=b"hello",
            ))
        sim.run()
        assert len(h2.received_packets) == 3
        assert all(p.payload != b"hello" for p in h2.received_packets)
        assert injector.stats.packets_corrupted == 3
        flips = fault_audit(telemetry, "bit_flip")
        assert len(flips) == 3
        assert all(f.trace is not None for f in flips)
        assert len(fault_audit(telemetry, FaultKind.PACKET_CORRUPT)) == 1
        assert len(fault_audit(
            telemetry, FaultKind.PACKET_CORRUPT, AuditKind.FAULT_CLEARED
        )) == 1


class TestEvidenceFaults:
    def test_inband_strip_is_caught_by_coverage_check(self):
        telemetry = Telemetry(active=True)
        sim, h1, h2, switch, program = chain(telemetry)
        rp = relying_party(switch, program, telemetry)
        rp.attach(sim, h1, h2)
        plan = FaultPlan().strip_inband(0.0, "s1", "h2")
        injector = FaultInjector(plan).attach(sim)
        sim.schedule(1e-3, lambda: rp.send(b"secret"))
        sim.run()
        assert injector.stats.records_stripped > 0
        assert len(rp.verdicts) == 1
        assert not rp.verdicts[0].accepted
        strips = fault_audit(telemetry, "record_strip")
        assert len(strips) == 1
        assert strips[0].trace is not None
        assert len(fault_audit(
            telemetry, FaultKind.EVIDENCE_STRIP_INBAND
        )) == 1

    def test_oob_strip_drops_evidence_on_the_control_channel(self):
        telemetry = Telemetry(active=True)
        sim, src, dst, collector, switch, _ = oob_chain(telemetry)
        plan = FaultPlan().strip_evidence(0.0, "s1")
        injector = FaultInjector(plan).attach(sim)
        sim.schedule(1e-3, lambda: send_attested(src, dst))
        sim.run()
        assert injector.stats.control_stripped >= 1
        assert collector.control_received == []
        dropped = [
            e for e in telemetry.audit.events
            if e.kind == AuditKind.CONTROL_DROPPED
            and e.detail.get("reason") == "fault_stripped"
        ]
        assert len(dropped) >= 1
        assert len(fault_audit(telemetry, FaultKind.EVIDENCE_STRIP_OOB)) == 1

    def test_tampered_signature_fails_appraisal(self):
        telemetry = Telemetry(active=True)
        sim, src, dst, collector, switch, program = oob_chain(telemetry)
        plan = FaultPlan().tamper_evidence(0.0, "s1")
        injector = FaultInjector(plan).attach(sim)
        sim.schedule(1e-3, lambda: send_attested(src, dst))
        sim.run()
        assert injector.stats.control_tampered >= 1
        records = [m for _, _, m in collector.control_received]
        assert records
        anchors = KeyRegistry()
        anchors.register_pair(switch.keys)
        appraiser = PathAppraiser(
            "Appraiser",
            PathAppraisalPolicy(
                anchors=anchors,
                reference_measurements={"s1": {
                    InertiaClass.HARDWARE: hardware_reference(
                        switch.engine.hardware_identity
                    ),
                    InertiaClass.PROGRAM: program_reference(program),
                }},
            ),
            telemetry=telemetry,
        )
        verdict = appraiser.appraise_records(
            records, hop_count=len(records), compiled=None
        )
        assert not verdict.accepted
        assert any("signature" in f.lower() for f in verdict.failures)
        tampers = fault_audit(telemetry, "signature_tamper")
        assert len(tampers) >= 1
        assert all(t.trace is not None for t in tampers)
        assert len(fault_audit(telemetry, FaultKind.EVIDENCE_TAMPER)) == 1


class TestCompromise:
    def test_swap_detected_then_reprovision_recovers(self):
        telemetry = Telemetry(active=True)
        sim, h1, h2, switch, program = chain(telemetry)
        rp = relying_party(switch, program, telemetry)
        rp.attach(sim, h1, h2)

        def keep_forwarding(node, actor):
            node.runtime.write(actor, TableEntry(
                table="ipv4_lpm",
                keys=(MatchKey(
                    MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24,
                ),),
                action="forward", params=(2,),
            ))

        plan = FaultPlan().compromise_switch(
            1e-3, "s1", athens_rogue_program, configure=keep_forwarding
        )
        FaultInjector(plan).attach(sim)
        controller = RoutingController(sim, name="ctl", election_id=1)
        sim.schedule(0.0, lambda: rp.send(b"before"))
        sim.schedule(2e-3, lambda: rp.send(b"during"))
        sim.schedule(3e-3, lambda: controller.reprovision(
            "s1", program_factory=ipv4_forwarding_program
        ))
        sim.schedule(4e-3, lambda: rp.send(b"after"))
        sim.run()
        assert [v.accepted for v in rp.verdicts] == [True, False, True]
        assert len(fault_audit(telemetry, FaultKind.SWITCH_COMPROMISE)) == 1
        reprovisions = [
            e for e in telemetry.audit.events
            if e.kind == AuditKind.RECOVERY_REPROVISIONED
        ]
        assert len(reprovisions) == 1
        assert reprovisions[0].detail.get("target") == "s1"
