"""Batched-mode tamper matrix: every forgery leaves exactly one
``check.failed`` audit event.

Per-packet signatures and epoch-batched Merkle proofs must be
equivalent under tampering: a flipped record byte, a forged proof
sibling, a forged root signature, and a cross-epoch proof replay each
yield exactly one journaled check failure — and a byte-identical
replay of a packet's genuine evidence is still caught by the nonce
check, so batching opens no replay hole.
"""

from dataclasses import replace

import pytest

from repro.core.appraisal import PathAppraiser
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.usecases import _appraiser_for, _pera_chain
from repro.core.wire import encode_compiled_policy
from repro.evidence.verify import SignatureCache
from repro.net.headers import RaShimHeader
from repro.pera.config import BatchingSpec, CompositionMode, EvidenceConfig
from repro.pera.epoch import EpochRootVerifier
from repro.pera.records import (
    BatchedHopRecord,
    decode_record_stack,
    verify_record_batch,
)
from repro.pisa.programs import firewall_program
from repro.ra.nonce import NonceManager
from repro.telemetry import AuditKind, Check, Telemetry, TraceContext

TRACE = TraceContext(trace_id="abcdef012345", hop=3, origin="h-src")


@pytest.fixture(scope="module")
def delivered():
    """One honest 2-switch CHAINED+batched run spanning two epochs.

    Four packets with ``max_records=2`` give every switch two sealed
    epochs, so the matrix can replay proofs and records across epoch
    boundaries. Returns (stacks, hop_count, switches, program) where
    ``stacks[i]`` is packet *i*'s decoded record list.
    """
    config = EvidenceConfig(
        composition=CompositionMode.CHAINED,
        batching=BatchingSpec(max_records=2, max_delay_s=0.0),
    )
    program = firewall_program()
    sim, src, dst, switches = _pera_chain(2, config, programs=[program] * 2)
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src", "s1", "s2", "h-dst"],
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    for _ in range(4):
        src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
            payload=b"probe",
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY,
                body=encode_compiled_policy(policy),
            ),
        )
    sim.run()
    assert len(dst.received_packets) == 4
    stacks = [
        decode_record_stack(p.ra_shim.body) for p in dst.received_packets
    ]
    hop_count = dst.received_packets[0].ra_shim.hop_count
    return stacks, hop_count, switches, program


def _appraiser(switches, program, telemetry, **kwargs):
    base = _appraiser_for(switches, [program] * len(switches))
    return PathAppraiser(
        "Appraiser", base.policy, telemetry=telemetry, **kwargs
    )


def _check_failures(telemetry):
    return [
        e for e in telemetry.audit.events if e.kind == AuditKind.CHECK_FAILED
    ]


class TestBatchedTamperMatrix:
    def test_honest_batched_run_appraises_clean(self, delivered):
        stacks, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        for stack in stacks:
            assert all(isinstance(r, BatchedHopRecord) for r in stack)
            verdict = appraiser.appraise_records(stack, hop_count, trace=TRACE)
            assert verdict.accepted, verdict.failures
        assert _check_failures(tel) == []

    def test_flipped_record_byte_breaks_the_proof(self, delivered):
        stacks, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        honest = stacks[0]
        # Flip a payload field: the leaf hash changes, the proof dies.
        forged = replace(honest[0], sequence=honest[0].sequence + 1)
        verdict = appraiser.appraise_records(
            [forged, honest[1]], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SIGNATURE
        assert "Merkle proof" in events[0].detail["message"]
        assert events[0].detail["message"] in verdict.failures
        assert events[0].trace == TRACE.trace_id

    def test_forged_proof_sibling_breaks_the_proof(self, delivered):
        stacks, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        honest = stacks[0]
        (sibling, is_left), *rest = honest[0].proof_path
        flipped = bytes((sibling[0] ^ 0x01,)) + sibling[1:]
        forged = replace(
            honest[0], proof_path=((flipped, is_left),) + tuple(rest)
        )
        verdict = appraiser.appraise_records(
            [forged, honest[1]], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SIGNATURE
        assert "Merkle proof" in events[0].detail["message"]

    def test_forged_root_signature_is_rejected(self, delivered):
        stacks, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        honest = stacks[0]
        signature = honest[0].root_signature
        forged = replace(
            honest[0],
            root_signature=signature[:-1] + bytes((signature[-1] ^ 0xFF,)),
        )
        verdict = appraiser.appraise_records(
            [forged, honest[1]], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SIGNATURE
        assert "epoch root signature" in events[0].detail["message"]

    def test_cross_epoch_proof_replay_is_rejected(self, delivered):
        """Splice epoch 2's (genuinely signed) header onto an epoch-1
        record: the root signature verifies, the proof must not."""
        stacks, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        epoch1 = stacks[0][0]
        epoch2 = stacks[2][0]
        assert epoch1.epoch_id != epoch2.epoch_id
        spliced = replace(
            epoch1,
            epoch_id=epoch2.epoch_id,
            epoch_root=epoch2.epoch_root,
            root_signature=epoch2.root_signature,
            leaf_count=epoch2.leaf_count,
        )
        # The stolen header itself is genuine...
        assert spliced.verify_root(appraiser.policy.anchors)
        # ...but it does not commit to this record.
        verdict = appraiser.appraise_records(
            [spliced, stacks[0][1]], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SIGNATURE
        assert "Merkle proof" in events[0].detail["message"]

    def test_flipped_leaf_index_breaks_the_proof(self, delivered):
        """The claimed leaf index is part of what the proof binds.

        The hash walk must be driven by the claimed position, so an
        otherwise-genuine record whose ``leaf_index`` is flipped in
        transit dies in the proof check."""
        stacks, hop_count, switches, program = delivered
        tel = Telemetry()
        appraiser = _appraiser(switches, program, tel)
        honest = stacks[0]
        forged = replace(honest[0], leaf_index=honest[0].leaf_index ^ 1)
        verdict = appraiser.appraise_records(
            [forged, honest[1]], hop_count, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.SIGNATURE
        assert "Merkle proof" in events[0].detail["message"]

    def test_byte_identical_replay_is_caught_by_the_nonce(self, delivered):
        """Replay a packet's *unmodified* batched evidence wholesale.

        Every record is genuine, so signatures, proofs, measurements
        and chain all verify — replay protection is the nonce's job,
        and epoch batching must not open a hole in it: the consumed
        nonce yields exactly one ``check.failed``."""
        stacks, hop_count, switches, program = delivered
        tel = Telemetry()
        nonces = NonceManager(seed="batched-matrix")
        nonce = nonces.issue()
        nonces.consume(nonce)  # the relying party already accepted it
        compiled = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=["h-src", "s1", "s2", "h-dst"],
            bindings={"client": "h-dst"},
            composition=CompositionMode.CHAINED,
            nonce=nonce,
        )
        appraiser = _appraiser(switches, program, tel, nonces=nonces)
        replayed = stacks[0]  # byte-identical: no fields touched
        assert all(r.verify(appraiser.policy.anchors) for r in replayed)
        verdict = appraiser.appraise_records(
            replayed, hop_count, compiled=compiled, trace=TRACE
        )
        assert not verdict.accepted
        events = _check_failures(tel)
        assert len(events) == 1
        assert events[0].detail["check"] == Check.NONCE
        assert events[0].detail["message"] == "nonce replayed"


class TestBatchedVsSequentialParity:
    """``verify_record_batch`` must agree with per-record ``verify``
    on every tamper variant — the batched crypto path cannot accept a
    record the sequential path rejects, or vice versa."""

    def _variants(self, stacks):
        honest = stacks[0]
        epoch2 = stacks[2][0]
        signature = honest[0].root_signature
        (sibling, is_left), *rest = honest[0].proof_path
        flipped_sibling = bytes((sibling[0] ^ 0x01,)) + sibling[1:]
        return [
            honest[0],  # genuine
            honest[1],  # genuine, second switch
            replace(honest[0], sequence=honest[0].sequence + 1),
            replace(
                honest[0],
                proof_path=((flipped_sibling, is_left),) + tuple(rest),
            ),
            replace(
                honest[0],
                root_signature=signature[:-1] + bytes((signature[-1] ^ 0xFF,)),
            ),
            replace(
                honest[0],
                epoch_id=epoch2.epoch_id,
                epoch_root=epoch2.epoch_root,
                root_signature=epoch2.root_signature,
                leaf_count=epoch2.leaf_count,
            ),
            replace(honest[0], leaf_index=honest[0].leaf_index ^ 1),
        ]

    def test_verdict_parity_across_the_tamper_matrix(self, delivered):
        stacks, hop_count, switches, program = delivered
        anchors = _appraiser(switches, program, Telemetry()).policy.anchors
        records = self._variants(stacks)
        sequential = [r.verify(anchors) for r in records]
        batched = verify_record_batch(anchors, records, cache=SignatureCache())
        assert batched == sequential
        assert sequential == [True, True, False, False, False, False, False]

    def test_epoch_root_verifier_matches_per_record_verify(self, delivered):
        stacks, hop_count, switches, program = delivered
        anchors = _appraiser(switches, program, Telemetry()).policy.anchors
        records = self._variants(stacks)
        verifier = EpochRootVerifier(anchors, cache=SignatureCache())
        for record in records:
            verifier.add(record)
        # Genuine records of one epoch dedup to a single pending root;
        # each forged header is a distinct root to settle.
        assert verifier.pending_count < len(records)
        assert verifier.verify_records(records) == [
            r.verify(anchors) for r in records
        ]
