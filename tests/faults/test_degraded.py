"""Degraded-mode appraisal: what a verdict means when evidence never
arrives.

Fail-closed is the default everywhere — silence rejects. Fail-open is
an explicit opt-in and its acceptances are flagged ``degraded`` and
journaled, so they are never mistaken for attested trust.
"""

import pytest

from repro.core.chaos import run_degraded_oob
from repro.crypto.keys import KeyRegistry
from repro.faults import FailMode, FaultInjector, FaultPlan, RetryPolicy
from repro.net.headers import ip_to_int
from repro.net.simulator import Node, Simulator
from repro.net.topology import star_topology
from repro.ra.attester import AttestingHost, VerifierHost, golden_value
from repro.ra.protocol import (
    AttestationScenario,
    run_out_of_band_resilient,
)
from repro.telemetry.audit import AuditKind, Check

GOLDEN = {"Hardware": b"tofino-model-x", "Program": b"firewall_v5-binary"}


def honest_scenario():
    return AttestationScenario(
        switch_targets=dict(GOLDEN), golden_targets=dict(GOLDEN)
    )


class TestDegradedOutOfBand:
    def test_fail_closed_is_the_default(self):
        result = run_degraded_oob()
        assert not result.verdict.accepted
        assert result.verdict.degraded
        assert any("unavailable" in f for f in result.verdict.failures)
        assert result.oob_gave_up >= 1
        kinds = [e.kind for e in result.telemetry.audit.events]
        assert AuditKind.RECOVERY_GAVE_UP in kinds
        availability = [
            e for e in result.telemetry.audit.events
            if e.kind == AuditKind.CHECK_FAILED
            and e.detail.get("check") == Check.AVAILABILITY
        ]
        assert availability, "availability failure must be journaled"

    def test_fail_open_accepts_but_flags_degraded(self):
        result = run_degraded_oob(fail_mode=FailMode.OPEN)
        assert result.verdict.accepted
        assert result.verdict.degraded
        # The availability failure is journaled even though accepted.
        kinds = [e.kind for e in result.telemetry.audit.events]
        assert AuditKind.CHECK_FAILED in kinds

    def test_restart_in_time_recovers_cleanly(self):
        result = run_degraded_oob(restart_at=0.7e-3)
        assert result.oob_recovered == 1
        assert result.verdict.accepted
        assert not result.verdict.degraded


class TestVerifierHostTimeout:
    def build(self, retry, fail_mode=FailMode.CLOSED):
        class Relay(Node):
            def handle_packet(self, packet, in_port):
                out = 2 if in_port == 1 else 1
                self.sim.transmit(self.name, out, packet)

        topo = star_topology(2)
        sim = Simulator(topo)
        attester = AttestingHost("h2", mac=2, ip=ip_to_int("10.0.0.2"))
        attester.install("tls", b"verified-tls-1.3")
        anchors = KeyRegistry()
        anchors.register_pair(attester.keys)
        golden = {"h2": {"tls": golden_value(b"verified-tls-1.3")}}
        verifier = VerifierHost(
            "h1", mac=1, ip=ip_to_int("10.0.0.1"),
            anchors=anchors, golden=golden,
            retry_policy=retry, fail_mode=fail_mode,
        )
        sim.bind(verifier)
        sim.bind(attester)
        sim.bind(Relay("core"))
        return sim, verifier, attester

    def test_unreachable_attester_times_out_closed(self):
        retry = RetryPolicy(max_attempts=2, timeout_s=1e-3, base_delay_s=1e-4)
        sim, verifier, _ = self.build(retry)
        FaultInjector(FaultPlan().crash_node(0.0, "h2")).attach(sim)
        nonce = verifier.request_attestation("h2", ("tls",))
        sim.run()
        verdict = verifier.verdicts[nonce]
        assert not verdict.accepted
        assert verdict.degraded
        assert any("unreachable" in f for f in verdict.failures)
        assert verifier.timeouts == retry.max_attempts
        # The first challenge is sent before the crash lands (dropped
        # at delivery); every re-issue after it fails at the sender.
        assert verifier.request_send_failures >= 1

    def test_unreachable_attester_fail_open(self):
        retry = RetryPolicy(max_attempts=2, timeout_s=1e-3, base_delay_s=1e-4)
        sim, verifier, _ = self.build(retry, fail_mode=FailMode.OPEN)
        FaultInjector(FaultPlan().crash_node(0.0, "h2")).attach(sim)
        nonce = verifier.request_attestation("h2", ("tls",))
        sim.run()
        verdict = verifier.verdicts[nonce]
        assert verdict.accepted
        assert verdict.degraded

    def test_retry_survives_transient_crash(self):
        """The attester is down for the first attempt only; the
        re-issued challenge (same nonce) succeeds."""
        retry = RetryPolicy(max_attempts=3, timeout_s=1e-3, base_delay_s=1e-4)
        sim, verifier, _ = self.build(retry)
        plan = FaultPlan().crash_node(0.0, "h2").restart_node(0.5e-3, "h2")
        FaultInjector(plan).attach(sim)
        nonce = verifier.request_attestation("h2", ("tls",))
        sim.run()
        verdict = verifier.verdicts[nonce]
        assert verdict.accepted
        assert not verdict.degraded
        assert verifier.timeouts >= 1  # the first attempt did time out


class TestProtocolResilience:
    def test_total_loss_concludes_degraded_closed(self):
        run = run_out_of_band_resilient(
            honest_scenario(),
            loss_rate=1.0,
            retry=RetryPolicy(max_attempts=3),
        )
        assert not run.accepted
        assert run.degraded
        assert run.attempts == 3
        assert run.delivery_failures == 3

    def test_total_loss_fail_open(self):
        run = run_out_of_band_resilient(
            honest_scenario(),
            loss_rate=1.0,
            retry=RetryPolicy(max_attempts=2),
            fail_mode=FailMode.OPEN,
        )
        assert run.accepted
        assert run.degraded

    def test_partial_loss_recovers_with_fresh_nonce(self):
        run = run_out_of_band_resilient(
            honest_scenario(),
            loss_rate=0.5,
            seed=1,  # first attempt lost, second delivered
            retry=RetryPolicy(max_attempts=3),
        )
        assert run.accepted
        assert not run.degraded
        assert run.attempts == 2
        assert run.delivery_failures == 1

    def test_no_retry_policy_means_single_shot(self):
        run = run_out_of_band_resilient(honest_scenario(), loss_rate=1.0)
        assert not run.accepted
        assert run.attempts == 1

    def test_validates_loss_rate(self):
        with pytest.raises(ValueError):
            run_out_of_band_resilient(honest_scenario(), loss_rate=1.5)
