"""Deterministic replay: same FaultPlan seed, byte-identical run.

The acceptance property of the fault subsystem — a chaos run is an
*experiment*, and experiments must replay. Two runs with the same seed
must agree on every statistic and produce byte-identical audit-journal
exports; a different seed must tell a different story.
"""

import json

from repro.core.chaos import run_chaos_athens, run_degraded_oob


class TestChaosReplay:
    def test_same_seed_replays_byte_identically(self):
        first = run_chaos_athens(seed=5)
        second = run_chaos_athens(seed=5)
        assert first.stats == second.stats
        assert first.fault_stats == second.fault_stats
        assert [v.accepted for v in first.verdicts] == [
            v.accepted for v in second.verdicts
        ]
        assert first.ra_counters == second.ra_counters
        assert first.audit_export() == second.audit_export()

    def test_different_seed_diverges(self):
        baseline = run_chaos_athens(seed=5)
        other = run_chaos_athens(seed=6)
        assert baseline.audit_export() != other.audit_export()

    def test_degraded_run_replays(self):
        def export(result):
            return json.dumps(
                [e.as_dict() for e in result.telemetry.audit.events],
                sort_keys=True,
                default=repr,
            )

        assert export(run_degraded_oob(seed=2)) == export(
            run_degraded_oob(seed=2)
        )


class TestChaosStory:
    """The Athens chaos scenario actually exercises every mechanism."""

    def test_compromise_detected_and_recovered(self):
        result = run_chaos_athens(seed=7)
        assert result.first_rejection is not None
        assert result.recovered_at is not None
        assert result.recovered_at > result.first_rejection
        # The rogue program really exfiltrated before reprovisioning.
        assert result.exfiltrated > 0

    def test_resilience_machinery_engaged(self):
        result = run_chaos_athens(seed=7)
        assert result.stats.local_resends > 0
        assert result.collector_records > 0
        retries = sum(
            c["oob_retries"] for c in result.ra_counters.values()
        )
        assert retries > 0
        assert result.fault_stats.injected > 0
        assert result.fault_stats.cleared > 0

    def test_corruption_rejects_but_never_crashes(self):
        result = run_chaos_athens(seed=7)
        # The late corruption window produced binding-check rejections
        # on top of the compromise window's measurement rejections.
        assert result.fault_stats.packets_corrupted > 0
        assert any(not v.accepted for v in result.verdicts)
        # Every sent packet concluded in a verdict or a counted drop —
        # nothing vanished into an exception.
        assert len(result.verdicts) <= result.packets_sent
