"""FaultPlan: pure-data schedules with validated builders."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan, link_key


class TestLinkKey:
    def test_direction_agnostic(self):
        assert link_key("s1", "s2") == link_key("s2", "s1") == "s1|s2"


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultEvent(time_s=-1.0, kind=FaultKind.LINK_DOWN, target="a|b")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(time_s=0.0, kind="meteor_strike", target="s1")

    def test_describe_hides_callables(self):
        event = FaultEvent(
            time_s=1.0,
            kind=FaultKind.SWITCH_COMPROMISE,
            target="s1",
            params={"program_factory": lambda: None, "actor": "eve"},
        )
        text = event.describe()
        assert "lambda" not in text
        assert "eve" in text
        assert "switch_compromise" in text


class TestBuilders:
    def test_link_loss_validates_rate(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.link_loss(0.0, "a", "b", rate=1.0)
        with pytest.raises(ValueError):
            plan.link_loss(0.0, "a", "b", rate=-0.1)

    def test_link_down_with_duration_adds_up_event(self):
        plan = FaultPlan().link_down(1.0, "a", "b", duration_s=0.5)
        kinds = [e.kind for e in plan.schedule()]
        assert kinds == [FaultKind.LINK_DOWN, FaultKind.LINK_UP]
        assert plan.schedule()[1].time_s == pytest.approx(1.5)

    def test_link_down_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            FaultPlan().link_down(1.0, "a", "b", duration_s=0.0)

    def test_flap_expands_to_cycles(self):
        plan = FaultPlan().link_flap(
            0.0, "a", "b", down_s=1.0, up_s=2.0, cycles=3
        )
        schedule = plan.schedule()
        assert len(schedule) == 6  # 3 x (down + up)
        downs = [e.time_s for e in schedule if e.kind == FaultKind.LINK_DOWN]
        assert downs == pytest.approx([0.0, 3.0, 6.0])

    def test_flap_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            FaultPlan().link_flap(0.0, "a", "b", down_s=1.0, up_s=1.0, cycles=0)

    def test_corrupt_window_adds_clear_event(self):
        plan = FaultPlan().corrupt_packets(
            2.0, "a", "b", rate=0.5, duration_s=1.0
        )
        schedule = plan.schedule()
        assert [e.kind for e in schedule] == [FaultKind.PACKET_CORRUPT] * 2
        assert schedule[1].params["rate"] == 0.0

    def test_schedule_sorted_by_time_stable_on_ties(self):
        plan = (
            FaultPlan()
            .crash_node(5.0, "n1")
            .crash_node(1.0, "n2")
            .restart_node(5.0, "n1")
        )
        schedule = plan.schedule()
        assert [e.target for e in schedule] == ["n2", "n1", "n1"]
        # Insertion order preserved on the time tie.
        assert schedule[1].kind == FaultKind.NODE_CRASH
        assert schedule[2].kind == FaultKind.NODE_RESTART

    def test_describe_and_len(self):
        plan = FaultPlan(seed=42).clock_skew(1.0, "s1", skew_s=60.0)
        assert len(plan) == 1
        assert "seed 42" in plan.describe()
        assert "clock_skew" in plan.describe()
        assert "FaultPlan(seed=42" in repr(plan)

    def test_empty_plan_describes_itself(self):
        assert "no faults" in FaultPlan().describe()

    def test_events_are_pure_data(self):
        """Building a plan touches no simulator; reusing it is safe."""
        plan = FaultPlan().link_down(1.0, "a", "b")
        first = plan.events
        second = plan.events
        assert first == second
        assert isinstance(first, tuple)
