"""RetryPolicy and FailMode semantics."""

import pytest

from repro.faults import FailMode, RetryPolicy


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=1.0, multiplier=2.0, max_delay_s=100.0
        )
        assert policy.backoff_delay(1) == pytest.approx(1.0)
        assert policy.backoff_delay(2) == pytest.approx(2.0)
        assert policy.backoff_delay(3) == pytest.approx(4.0)

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=10.0, max_delay_s=5.0
        )
        assert policy.backoff_delay(4) == pytest.approx(5.0)

    def test_delays_covers_every_retry(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, max_delay_s=1e9)
        # max_attempts counts total sends: 3 retries follow the first.
        assert policy.delays() == pytest.approx((1.0, 2.0, 4.0))

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            RetryPolicy().max_attempts = 9


class TestFailMode:
    def test_closed_is_the_default_vocabulary(self):
        assert FailMode.CLOSED == "fail_closed"
        assert FailMode.OPEN == "fail_open"
        assert set(FailMode.ALL) == {FailMode.CLOSED, FailMode.OPEN}
