"""Tests for the appraiser, nonces and certificates."""

import pytest

from repro.copland.evidence import (
    EmptyEvidence,
    MeasurementEvidence,
    NonceEvidence,
    SignedEvidence,
)
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.ra.appraiser import AppraisalPolicy, Appraiser
from repro.ra.certificates import Certificate, CertificateStore
from repro.ra.claims import AppraisalVerdict, Claim
from repro.ra.nonce import NonceManager
from repro.util.errors import VerificationError


def make_evidence(value=b"good", signer=None, nonce=None):
    prior = NonceEvidence("n", nonce) if nonce else EmptyEvidence()
    evidence = MeasurementEvidence(
        asp="attest", place="Switch", target="Program", target_place="Switch",
        value=value, prior=prior,
    )
    if signer is not None:
        return SignedEvidence(
            evidence=evidence, place=signer.owner,
            signature=signer.sign(evidence.encode()),
        )
    return evidence


class TestNonceManager:
    def test_issue_unique(self):
        manager = NonceManager("seed")
        assert manager.issue() != manager.issue()

    def test_deterministic_across_instances(self):
        assert NonceManager("s").issue() == NonceManager("s").issue()

    def test_consume_lifecycle(self):
        manager = NonceManager("seed")
        nonce = manager.issue()
        assert manager.check(nonce) is None
        manager.consume(nonce)
        assert manager.check(nonce) == "nonce replayed"
        with pytest.raises(VerificationError, match="replayed"):
            manager.consume(nonce)

    def test_unknown_nonce(self):
        manager = NonceManager("seed")
        assert manager.check(b"\x00" * 16) == "nonce was never issued"
        with pytest.raises(VerificationError):
            manager.consume(b"\x00" * 16)


class TestAppraiser:
    def build(self, require_nonce=False, strict=False):
        switch_keys = KeyPair.generate("Switch")
        anchors = KeyRegistry()
        anchors.register_pair(switch_keys)
        nonces = NonceManager("test")
        appraiser = Appraiser(
            name="A",
            anchors=anchors,
            policy=AppraisalPolicy(
                reference_values={("attest", "Program"): b"good"},
                required_signers=("Switch",),
                require_nonce=require_nonce,
                strict=strict,
            ),
            nonces=nonces,
        )
        return appraiser, switch_keys, nonces

    def test_accepts_good_evidence(self):
        appraiser, keys, _ = self.build()
        verdict = appraiser.appraise(make_evidence(signer=keys))
        assert verdict.accepted
        assert verdict.checked_measurements == 1
        assert verdict.checked_signatures == 1

    def test_rejects_wrong_measurement(self):
        appraiser, keys, _ = self.build()
        verdict = appraiser.appraise(make_evidence(value=b"evil", signer=keys))
        assert not verdict.accepted
        assert any("reference value" in f for f in verdict.failures)

    def test_rejects_missing_signature(self):
        appraiser, _, _ = self.build()
        verdict = appraiser.appraise(make_evidence())
        assert not verdict.accepted
        assert any("missing required signature" in f for f in verdict.failures)

    def test_rejects_unknown_signer(self):
        appraiser, _, _ = self.build()
        rogue = KeyPair.generate("Rogue")
        inner = make_evidence()
        forged = SignedEvidence(
            evidence=inner, place="Rogue", signature=rogue.sign(inner.encode())
        )
        verdict = appraiser.appraise(forged)
        assert not verdict.accepted

    def test_rejects_tampered_signature(self):
        appraiser, keys, _ = self.build()
        evidence = make_evidence(signer=keys)
        tampered = SignedEvidence(
            evidence=evidence.evidence,
            place=evidence.place,
            signature=bytes(64),
        )
        verdict = appraiser.appraise(tampered)
        assert not verdict.accepted
        assert any("failed verification" in f for f in verdict.failures)

    def test_nonce_required_and_fresh(self):
        appraiser, keys, nonces = self.build(require_nonce=True)
        nonce = nonces.issue()
        verdict = appraiser.appraise(make_evidence(signer=keys, nonce=nonce))
        assert verdict.accepted
        # Replaying the same evidence fails: nonce already consumed.
        verdict2 = appraiser.appraise(make_evidence(signer=keys, nonce=nonce))
        assert not verdict2.accepted
        assert any("replayed" in f for f in verdict2.failures)

    def test_nonce_missing_rejected(self):
        appraiser, keys, _ = self.build(require_nonce=True)
        verdict = appraiser.appraise(make_evidence(signer=keys))
        assert not verdict.accepted
        assert any("no nonce" in f for f in verdict.failures)

    def test_unissued_nonce_rejected(self):
        appraiser, keys, _ = self.build(require_nonce=True)
        verdict = appraiser.appraise(
            make_evidence(signer=keys, nonce=b"\x99" * 16)
        )
        assert not verdict.accepted

    def test_strict_mode_flags_unknown_measurements(self):
        appraiser, keys, _ = self.build(strict=True)
        unknown = MeasurementEvidence(
            asp="mystery", place="Switch", target="Thing", target_place="Switch",
            value=b"?",
        )
        signed = SignedEvidence(
            evidence=unknown, place="Switch", signature=keys.sign(unknown.encode())
        )
        verdict = appraiser.appraise(signed)
        assert not verdict.accepted

    def test_verdict_describe(self):
        appraiser, keys, _ = self.build()
        claim = Claim(attester="Switch", targets=("Program",))
        verdict = appraiser.appraise(make_evidence(signer=keys), claim=claim)
        text = verdict.describe()
        assert "ACCEPTED" in text and "Switch" in text


class TestCertificates:
    def test_issue_and_verify(self):
        appraiser_keys = KeyPair.generate("Appraiser")
        anchors = KeyRegistry()
        anchors.register_pair(appraiser_keys)
        cert = Certificate.issue(
            appraiser_keys, "Switch", b"\x01" * 16,
            AppraisalVerdict(accepted=True),
        )
        assert cert.verify(anchors)

    def test_forged_certificate_fails(self):
        appraiser_keys = KeyPair.generate("Appraiser")
        anchors = KeyRegistry()
        anchors.register_pair(appraiser_keys)
        cert = Certificate.issue(
            appraiser_keys, "Switch", b"\x01" * 16,
            AppraisalVerdict(accepted=False),
        )
        # Flip the verdict bit without re-signing.
        forged = Certificate(
            appraiser=cert.appraiser, attester=cert.attester,
            nonce=cert.nonce, accepted=True, signature=cert.signature,
        )
        assert not forged.verify(anchors)

    def test_store_retrieve(self):
        appraiser_keys = KeyPair.generate("Appraiser")
        store = CertificateStore()
        cert = Certificate.issue(
            appraiser_keys, "Switch", b"\x02" * 16, AppraisalVerdict(accepted=True)
        )
        store.store(cert)
        assert store.retrieve(b"\x02" * 16) is cert
        assert store.has(b"\x02" * 16)
        assert len(store) == 1

    def test_duplicate_nonce_rejected(self):
        appraiser_keys = KeyPair.generate("Appraiser")
        store = CertificateStore()
        cert = Certificate.issue(
            appraiser_keys, "Switch", b"\x03" * 16, AppraisalVerdict(accepted=True)
        )
        store.store(cert)
        with pytest.raises(VerificationError, match="already stored"):
            store.store(cert)

    def test_retrieve_unknown_nonce(self):
        with pytest.raises(VerificationError, match="no certificate"):
            CertificateStore().retrieve(b"\x04" * 16)
