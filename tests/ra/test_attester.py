"""Tests for host-based attestation over the network (UC5 host side)."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.net.headers import ip_to_int
from repro.net.simulator import Simulator
from repro.net.topology import star_topology
from repro.ra.attester import (
    AttestationResponse,
    AttestingHost,
    VerifierHost,
    golden_value,
)
from repro.util.errors import VerificationError


class Repeater:
    pass


def build():
    """verifier (h1) and attester (h2) joined through a relay switch."""
    from repro.net.simulator import Node

    class Relay(Node):
        def handle_packet(self, packet, in_port):
            out = 2 if in_port == 1 else 1
            self.sim.transmit(self.name, out, packet)

    topo = star_topology(2)
    sim = Simulator(topo)
    attester = AttestingHost("h2", mac=2, ip=ip_to_int("10.0.0.2"))
    attester.install("tls", b"verified-tls-1.3")
    attester.install("browser", b"firefox-130")
    anchors = KeyRegistry()
    anchors.register_pair(attester.keys)
    golden = {
        "h2": {
            "tls": golden_value(b"verified-tls-1.3"),
            "browser": golden_value(b"firefox-130"),
        }
    }
    verifier = VerifierHost(
        "h1", mac=1, ip=ip_to_int("10.0.0.1"),
        anchors=anchors, golden=golden,
    )
    sim.bind(verifier)
    sim.bind(attester)
    sim.bind(Relay("core"))
    return sim, verifier, attester


class TestHostAttestation:
    def test_honest_host_accepted(self):
        sim, verifier, attester = build()
        nonce = verifier.request_attestation("h2", ("tls", "browser"))
        sim.run()
        verdict = verifier.verdicts[nonce]
        assert verdict.accepted, verdict.failures
        assert attester.requests_served == 1

    def test_corrupt_component_rejected(self):
        sim, verifier, attester = build()
        attester.corrupt("tls", b"backdoored-tls")
        nonce = verifier.request_attestation("h2", ("tls",))
        sim.run()
        verdict = verifier.verdicts[nonce]
        assert not verdict.accepted
        assert any("golden" in f for f in verdict.failures)

    def test_missing_component_reported(self):
        sim, verifier, attester = build()
        nonce = verifier.request_attestation("h2", ("ghost",))
        sim.run()
        assert not verifier.verdicts[nonce].accepted

    def test_response_replay_rejected(self):
        sim, verifier, attester = build()
        nonce = verifier.request_attestation("h2", ("tls",))
        sim.run()
        assert verifier.verdicts[nonce].accepted
        # Replay the same response: the nonce is consumed/unsolicited.
        measurements = (("tls", golden_value(b"verified-tls-1.3")),)
        replay = AttestationResponse(
            attester="h2", nonce=nonce, measurements=measurements,
            signature=attester.keys.sign(AttestationResponse.payload(
                "h2", nonce, measurements
            )),
        )
        verifier.handle_control("h2", replay)
        assert not verifier.verdicts[nonce].accepted

    def test_forged_signature_rejected(self):
        sim, verifier, attester = build()
        nonce = verifier.request_attestation("h2", ("tls",))
        # Intercept: deliver a forged response instead of running sim.
        from repro.crypto.keys import KeyPair

        mallory = KeyPair.generate("mallory")
        measurements = (("tls", golden_value(b"verified-tls-1.3")),)
        forged = AttestationResponse(
            attester="h2", nonce=nonce, measurements=measurements,
            signature=mallory.sign(AttestationResponse.payload(
                "h2", nonce, measurements
            )),
        )
        verifier.handle_control("mallory", forged)
        verdict = verifier.verdicts[nonce]
        assert not verdict.accepted
        assert any("signature" in f for f in verdict.failures)

    def test_wrong_attester_name_rejected(self):
        sim, verifier, attester = build()
        nonce = verifier.request_attestation("h2", ("tls",))
        measurements = (("tls", golden_value(b"verified-tls-1.3")),)
        response = AttestationResponse(
            attester="h9", nonce=nonce, measurements=measurements,
            signature=attester.keys.sign(AttestationResponse.payload(
                "h9", nonce, measurements
            )),
        )
        verifier.handle_control("h9", response)
        assert not verifier.verdicts[nonce].accepted

    def test_corrupt_unknown_component_raises(self):
        _, _, attester = build()
        with pytest.raises(VerificationError):
            attester.corrupt("nope")

    def test_control_message_counting(self):
        sim, verifier, attester = build()
        verifier.request_attestation("h2", ("tls",))
        sim.run()
        # One request + one response on the control channel.
        assert sim.stats.control_messages == 2
