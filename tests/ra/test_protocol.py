"""Tests for the Fig. 2 protocol variants (expressions (3) and (4))."""


from repro.ra.protocol import (
    AttestationScenario,
    run_in_band,
    run_out_of_band,
)

GOLDEN = {"Hardware": b"tofino-model-x", "Program": b"firewall_v5-binary"}


def honest_scenario():
    return AttestationScenario(
        switch_targets=dict(GOLDEN), golden_targets=dict(GOLDEN)
    )


def compromised_scenario():
    targets = dict(GOLDEN)
    targets["Program"] = b"firewall_v5-binary-with-implant"
    return AttestationScenario(switch_targets=targets, golden_targets=dict(GOLDEN))


class TestOutOfBand:
    def test_honest_switch_accepted(self):
        run = run_out_of_band(honest_scenario())
        assert run.accepted
        assert run.variant == "out-of-band"
        assert run.rp1_informed and run.rp2_informed

    def test_compromised_switch_rejected(self):
        run = run_out_of_band(compromised_scenario())
        assert not run.accepted
        assert run.certificate is not None
        assert not run.certificate.accepted

    def test_certificate_stored_and_verifiable(self):
        run = run_out_of_band(honest_scenario())
        assert run.certificate is not None
        assert run.certificate.attester == "Switch"

    def test_verdict_details(self):
        run = run_out_of_band(honest_scenario())
        assert run.verdict is not None
        assert run.verdict.checked_signatures >= 1

    def test_message_count_positive(self):
        run = run_out_of_band(honest_scenario())
        # RP1->Switch, Switch->RP1, RP1->Appraiser (+replies), and the
        # separate RP2->Appraiser round: at least 3 request/reply pairs.
        assert run.messages >= 6


class TestInBand:
    def test_honest_switch_accepted(self):
        run = run_in_band(honest_scenario())
        assert run.accepted
        assert run.variant == "in-band"
        assert run.rp1_informed and run.rp2_informed

    def test_compromised_switch_rejected(self):
        run = run_in_band(compromised_scenario())
        assert not run.accepted

    def test_certificate_issued(self):
        run = run_in_band(honest_scenario())
        assert run.certificate is not None


class TestVariantComparison:
    """The shape claims of E2: in-band needs fewer messages; only the
    out-of-band variant needs the nonce-indexed store."""

    def test_in_band_fewer_messages(self):
        oob = run_out_of_band(honest_scenario())
        ib = run_in_band(honest_scenario())
        assert ib.messages < oob.messages

    def test_only_out_of_band_stores(self):
        scenario = honest_scenario()
        context_messages = run_out_of_band(scenario)
        assert context_messages.certificate is not None
        # The in-band run issues a certificate but never stores it:
        # run_in_band's context has an empty store.
        in_band_scenario = honest_scenario()
        context = in_band_scenario.build()
        from repro.copland.parser import parse_request
        from repro.ra.protocol import IN_BAND

        nonce = context.nonces.issue()
        context.vm.execute_request(parse_request(IN_BAND), {"n": nonce})
        assert len(context.store) == 0

    def test_hardware_change_also_detected(self):
        targets = dict(GOLDEN)
        targets["Hardware"] = b"counterfeit-asic"
        scenario = AttestationScenario(
            switch_targets=targets, golden_targets=dict(GOLDEN)
        )
        assert not run_out_of_band(scenario).accepted
        assert not run_in_band(scenario).accepted
