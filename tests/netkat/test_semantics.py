"""Tests for NetKAT denotational semantics."""

import pytest

from repro.netkat.ast import (
    DROP,
    ID,
    Dup,
    Filter,
    ite,
    mod,
    pand,
    pnot,
    por,
    seq,
    star,
    test as tst,
    union,
    TRUE,
    FALSE,
)
from repro.netkat.semantics import NkPacket, eval_policy, eval_predicate, run, traces
from repro.util.errors import PolicyError


def pk(**fields):
    return NkPacket(fields)


class TestNkPacket:
    def test_get_set(self):
        packet = pk(a=1)
        assert packet.get("a") == 1
        assert packet.get("b") is None
        assert packet.set("b", 2).get("b") == 2
        assert packet.get("b") is None  # immutable

    def test_equality_and_hash(self):
        assert pk(a=1, b=2) == pk(b=2, a=1)
        assert hash(pk(a=1)) == hash(pk(a=1))
        assert pk(a=1) != pk(a=2)

    def test_as_dict(self):
        assert pk(a=1, b="x").as_dict() == {"a": 1, "b": "x"}


class TestPredicates:
    def test_true_false(self):
        assert eval_predicate(TRUE, pk())
        assert not eval_predicate(FALSE, pk())

    def test_test(self):
        assert eval_predicate(tst("sw", "s1"), pk(sw="s1"))
        assert not eval_predicate(tst("sw", "s1"), pk(sw="s2"))
        assert not eval_predicate(tst("sw", "s1"), pk())

    def test_connectives(self):
        packet = pk(a=1, b=2)
        assert eval_predicate(pand(tst("a", 1), tst("b", 2)), packet)
        assert not eval_predicate(pand(tst("a", 1), tst("b", 3)), packet)
        assert eval_predicate(por(tst("a", 9), tst("b", 2)), packet)
        assert eval_predicate(pnot(tst("a", 9)), packet)

    def test_smart_constructor_simplification(self):
        assert pand(TRUE, tst("a", 1)) == tst("a", 1)
        assert pand(FALSE, tst("a", 1)) == FALSE
        assert por(TRUE, tst("a", 1)) == TRUE
        assert pnot(pnot(tst("a", 1))) == tst("a", 1)


class TestPolicies:
    def test_id_drop(self):
        assert run(ID, pk(a=1)) == {pk(a=1)}
        assert run(DROP, pk(a=1)) == set()

    def test_filter(self):
        assert run(Filter(tst("a", 1)), pk(a=1)) == {pk(a=1)}
        assert run(Filter(tst("a", 1)), pk(a=2)) == set()

    def test_mod(self):
        assert run(mod("a", 5), pk(a=1)) == {pk(a=5)}
        assert run(mod("b", 7), pk(a=1)) == {pk(a=1, b=7)}

    def test_union_is_multicast(self):
        policy = union(mod("port", 1), mod("port", 2))
        assert run(policy, pk()) == {pk(port=1), pk(port=2)}

    def test_seq_composes(self):
        policy = seq(mod("a", 1), Filter(tst("a", 1)), mod("b", 2))
        assert run(policy, pk()) == {pk(a=1, b=2)}

    def test_seq_annihilates_on_drop(self):
        assert run(seq(mod("a", 1), DROP), pk()) == set()

    def test_ite(self):
        policy = ite(tst("a", 1), mod("out", "yes"), mod("out", "no"))
        assert run(policy, pk(a=1)) == {pk(a=1, out="yes")}
        assert run(policy, pk(a=2)) == {pk(a=2, out="no")}

    def test_star_zero_iterations_included(self):
        policy = star(seq(Filter(tst("a", 0)), mod("a", 1)))
        assert pk(a=5) in run(policy, pk(a=5))

    def test_star_counts_up(self):
        # a := a+1 encoded as chain of guarded increments, 0..3.
        step = union(*[
            seq(Filter(tst("a", i)), mod("a", i + 1)) for i in range(3)
        ])
        results = run(star(step), pk(a=0))
        assert results == {pk(a=0), pk(a=1), pk(a=2), pk(a=3)}

    def test_star_non_convergent_raises(self):
        # dup under star grows the history forever.
        with pytest.raises(PolicyError, match="converge"):
            eval_policy(star(Dup()), (pk(a=1),), max_star_iterations=10)

    def test_dup_records_history(self):
        policy = seq(mod("a", 1), Dup(), mod("a", 2))
        all_traces = traces(policy, pk(a=0))
        assert all_traces == {(pk(a=1), pk(a=2))}

    def test_empty_history_rejected(self):
        with pytest.raises(PolicyError):
            eval_policy(ID, ())

    def test_kat_axiom_filter_commutes_with_itself(self):
        # p;p = p for filters (idempotence).
        f = Filter(tst("a", 1))
        for packet in [pk(a=1), pk(a=2)]:
            assert run(seq(f, f), packet) == run(f, packet)

    def test_kat_axiom_union_commutative(self):
        p = mod("x", 1)
        q = mod("x", 2)
        for packet in [pk(), pk(x=9)]:
            assert run(union(p, q), packet) == run(union(q, p), packet)

    def test_star_unfolding_axiom(self):
        # p* = id + p ; p*
        step = union(*[
            seq(Filter(tst("a", i)), mod("a", i + 1)) for i in range(2)
        ])
        lhs = star(step)
        rhs = union(ID, seq(step, star(step)))
        for packet in [pk(a=0), pk(a=1), pk(a=5)]:
            assert run(lhs, packet) == run(rhs, packet)
