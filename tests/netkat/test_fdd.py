"""Tests for FDD compilation — including a property test that the
compiled FDD and the flattened flow rules agree with the denotational
semantics on random policies and packets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netkat.ast import (
    DROP,
    ID,
    Dup,
    Filter,
    ite,
    mod,
    pand,
    pnot,
    por,
    seq,
    star,
    test as tst,
    union,
    TRUE,
    FALSE,
)
from repro.netkat.fdd import (
    LEAF_DROP,
    LEAF_ID,
    compile_policy,
    compile_predicate,
    eval_fdd,
    eval_flow_rules,
    fdd_to_flow_rules,
)
from repro.netkat.semantics import NkPacket, run
from repro.util.errors import PolicyError


def pk(**fields):
    return NkPacket(fields)


class TestFddBasics:
    def test_id_drop(self):
        assert compile_policy(ID) == LEAF_ID
        assert compile_policy(DROP) == LEAF_DROP

    def test_filter(self):
        fdd = compile_policy(Filter(tst("a", 1)))
        assert eval_fdd(fdd, pk(a=1)) == {pk(a=1)}
        assert eval_fdd(fdd, pk(a=2)) == set()

    def test_mod(self):
        fdd = compile_policy(mod("a", 5))
        assert eval_fdd(fdd, pk()) == {pk(a=5)}

    def test_negation(self):
        fdd = compile_policy(Filter(pnot(tst("a", 1))))
        assert eval_fdd(fdd, pk(a=2)) == {pk(a=2)}
        assert eval_fdd(fdd, pk(a=1)) == set()

    def test_negate_non_predicate_rejected(self):
        from repro.netkat.fdd import fdd_negate

        with pytest.raises(PolicyError):
            fdd_negate(compile_policy(mod("a", 1)))

    def test_seq_mod_then_filter(self):
        # a:=1 ; filter a=1 ≡ a:=1
        fdd = compile_policy(seq(mod("a", 1), Filter(tst("a", 1))))
        assert eval_fdd(fdd, pk(a=9)) == {pk(a=1)}

    def test_seq_mod_then_contradicting_filter(self):
        fdd = compile_policy(seq(mod("a", 1), Filter(tst("a", 2))))
        assert eval_fdd(fdd, pk(a=2)) == set()

    def test_union_multicast(self):
        fdd = compile_policy(union(mod("p", 1), mod("p", 2)))
        assert eval_fdd(fdd, pk()) == {pk(p=1), pk(p=2)}

    def test_local_star(self):
        step = union(*[
            seq(Filter(tst("a", i)), mod("a", i + 1)) for i in range(3)
        ])
        fdd = compile_policy(star(step))
        assert eval_fdd(fdd, pk(a=0)) == {pk(a=0), pk(a=1), pk(a=2), pk(a=3)}

    def test_dup_rejected(self):
        with pytest.raises(PolicyError, match="dup"):
            compile_policy(Dup())

    def test_branch_collapse(self):
        # filter (a=1 or not a=1) ≡ id, and the FDD should collapse.
        fdd = compile_policy(Filter(por(tst("a", 1), pnot(tst("a", 1)))))
        assert fdd == LEAF_ID


class TestFlowRules:
    def test_simple_rules(self):
        policy = ite(tst("dst", 1), mod("port", 1), mod("port", 2))
        rules = fdd_to_flow_rules(compile_policy(policy))
        assert eval_flow_rules(rules, pk(dst=1)) == {pk(dst=1, port=1)}
        assert eval_flow_rules(rules, pk(dst=2)) == {pk(dst=2, port=2)}

    def test_priorities_strictly_decreasing(self):
        policy = union(
            seq(Filter(tst("dst", 1)), mod("port", 1)),
            seq(Filter(tst("dst", 2)), mod("port", 2)),
        )
        rules = fdd_to_flow_rules(compile_policy(policy))
        priorities = [rule.priority for rule in rules]
        assert priorities == sorted(priorities, reverse=True)
        assert len(set(priorities)) == len(priorities)

    def test_drop_rule_emitted(self):
        rules = fdd_to_flow_rules(compile_policy(Filter(tst("a", 1))))
        # There must be a catch-all with empty actions (drop).
        assert any(not rule.actions for rule in rules)


# --- property-based equivalence: semantics == FDD == flow rules ---------------

FIELDS = ["a", "b"]
VALUES = [0, 1, 2]

# Bounded recursion (max_leaves) keeps compile times predictable.
predicates = st.recursive(
    st.one_of(
        st.just(TRUE),
        st.just(FALSE),
        st.builds(tst, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
    ),
    lambda inner: st.one_of(
        st.builds(pand, inner, inner),
        st.builds(por, inner, inner),
        st.builds(pnot, inner),
    ),
    max_leaves=8,
)

policies = st.recursive(
    st.one_of(
        st.builds(Filter, predicates),
        st.builds(mod, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
    ),
    lambda inner: st.one_of(
        st.builds(union, inner, inner),
        st.builds(seq, inner, inner),
        st.builds(star, inner),
    ),
    max_leaves=10,
)

packets = st.builds(
    lambda a, b: NkPacket({"a": a, "b": b}),
    st.sampled_from(VALUES),
    st.sampled_from(VALUES),
)


class TestCompilerEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(policies, packets)
    def test_fdd_matches_semantics(self, policy, packet):
        fdd = compile_policy(policy)
        assert eval_fdd(fdd, packet) == run(policy, packet)

    @settings(max_examples=60, deadline=None)
    @given(policies, packets)
    def test_flow_rules_match_semantics(self, policy, packet):
        rules = fdd_to_flow_rules(compile_policy(policy))
        assert eval_flow_rules(rules, packet) == run(policy, packet)

    @settings(max_examples=60, deadline=None)
    @given(predicates, packets)
    def test_predicate_fdd_is_id_or_drop(self, pred, packet):
        from repro.netkat.semantics import eval_predicate

        fdd = compile_predicate(pred)
        out = eval_fdd(fdd, packet)
        if eval_predicate(pred, packet):
            assert out == {packet}
        else:
            assert out == set()
