"""Tests for the NetKAT concrete syntax."""

import pytest

from repro.netkat.ast import (
    DROP,
    ID,
    Dup,
    Filter,
    Seq,
    Union,
    mod,
    pand,
    pnot,
    star,
    test as tst,
    TRUE,
)
from repro.netkat.parser import parse_policy, parse_predicate
from repro.netkat.semantics import NkPacket, run
from repro.util.errors import PolicyError


class TestPredicateParsing:
    def test_atoms(self):
        assert parse_predicate("true") == TRUE
        assert parse_predicate("sw = s1") == tst("sw", "s1")
        assert parse_predicate("port = 2") == tst("port", 2)
        assert parse_predicate('name = "with space"') == tst("name", "with space")

    def test_connective_precedence(self):
        # and binds tighter than or.
        pred = parse_predicate("a = 1 or b = 2 and c = 3")
        assert pred == pand(tst("b", 2), tst("c", 3)) | tst("a", 1) or True
        # Structural check:
        from repro.netkat.ast import Or

        assert isinstance(pred, Or)
        assert pred.left == tst("a", 1)

    def test_not(self):
        assert parse_predicate("not a = 1") == pnot(tst("a", 1))

    def test_parens(self):
        pred = parse_predicate("(a = 1 or b = 2) and c = 3")
        from repro.netkat.ast import And

        assert isinstance(pred, And)

    def test_dotted_field_names(self):
        assert parse_predicate("ipv4.dst = 167772161") == tst("ipv4.dst", 167772161)

    def test_errors(self):
        for bad in ["", "a =", "= 1", "a = 1 or", "a ! 1"]:
            with pytest.raises(PolicyError):
                parse_predicate(bad)


class TestPolicyParsing:
    def test_atoms(self):
        assert parse_policy("id") == ID
        assert parse_policy("drop") == DROP
        assert parse_policy("dup") == Dup()
        assert parse_policy("port := 3") == mod("port", 3)
        assert parse_policy("filter sw = s1") == Filter(tst("sw", "s1"))

    def test_precedence_seq_over_union(self):
        policy = parse_policy("port := 1 ; sw := a + port := 2")
        assert isinstance(policy, Union)
        assert isinstance(policy.left, Seq)

    def test_star(self):
        policy = parse_policy("(port := 1)*")
        assert policy == star(mod("port", 1))

    def test_ite(self):
        policy = parse_policy("if a = 1 then port := 1 else drop")
        assert run(policy, NkPacket({"a": 1})) == {NkPacket({"a": 1, "port": 1})}
        assert run(policy, NkPacket({"a": 2})) == set()

    def test_round_trip_semantics(self):
        text = "filter sw = s1 ; (port := 1 + port := 2)"
        policy = parse_policy(text)
        results = run(policy, NkPacket({"sw": "s1"}))
        assert results == {
            NkPacket({"sw": "s1", "port": 1}),
            NkPacket({"sw": "s1", "port": 2}),
        }

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PolicyError, match="trailing"):
            parse_policy("id id")

    def test_errors(self):
        for bad in ["", "filter", "port :=", "if a = 1 then id", "(id"]:
            with pytest.raises(PolicyError):
                parse_policy(bad)

    def test_keyword_not_a_field(self):
        with pytest.raises(PolicyError):
            parse_policy("drop := 1")
