"""Tests for installing compiled NetKAT policies onto PISA switches."""

import pytest

from repro.net.headers import ip_to_int
from repro.net.packet import Packet
from repro.netkat.ast import Filter, ite, mod, pand, pnot, seq, union, test as tst
from repro.netkat.install import compile_to_program, install_policy
from repro.netkat.semantics import NkPacket, run
from repro.pisa.pipeline import DROP_PORT, PacketContext
from repro.pisa.runtime import P4Runtime
from repro.util.errors import PolicyError

DST_A = ip_to_int("10.0.1.1")
DST_B = ip_to_int("10.0.2.1")


def make_runtime(policy, key_fields=None):
    runtime = P4Runtime("s1")
    runtime.arbitrate("ctl", 1)
    install_policy(runtime, "ctl", policy, key_fields=key_fields)
    return runtime


def process(runtime, dst, dscp=0):
    packet = Packet.udp_packet(
        src_mac=1, dst_mac=2, src_ip=ip_to_int("10.0.0.1"), dst_ip=dst,
        src_port=1000, dst_port=2000,
    )
    ctx = PacketContext.from_packet(packet, ingress_port=1)
    if dscp:
        ctx.fields["ipv4.dscp"] = dscp
    runtime.pipeline.process(ctx)
    return ctx


class TestInstallPolicy:
    def test_if_then_else_forwarding(self):
        policy = ite(tst("ipv4.dst", DST_A), mod("port", 2), mod("port", 3))
        runtime = make_runtime(policy)
        assert process(runtime, DST_A).egress_spec == 2
        assert process(runtime, DST_B).egress_spec == 3

    def test_filter_drops_unmatched(self):
        policy = seq(Filter(tst("ipv4.dst", DST_A)), mod("port", 2))
        runtime = make_runtime(policy)
        assert process(runtime, DST_A).egress_spec == 2
        assert process(runtime, DST_B).egress_spec == DROP_PORT

    def test_negation_via_priorities(self):
        policy = seq(Filter(pnot(tst("ipv4.dst", DST_A))), mod("port", 7))
        runtime = make_runtime(policy)
        assert process(runtime, DST_A).egress_spec == DROP_PORT
        assert process(runtime, DST_B).egress_spec == 7

    def test_field_rewrite_applied(self):
        policy = seq(
            Filter(tst("ipv4.dst", DST_A)),
            mod("ipv4.dscp", 46),
            mod("port", 2),
        )
        runtime = make_runtime(policy)
        ctx = process(runtime, DST_A)
        assert ctx.fields["ipv4.dscp"] == 46
        assert ctx.egress_spec == 2

    def test_multi_field_policy(self):
        policy = seq(
            Filter(pand(tst("ipv4.dst", DST_A), tst("udp.dst_port", 2000))),
            mod("port", 4),
        )
        runtime = make_runtime(policy)
        assert process(runtime, DST_A).egress_spec == 4

    def test_multicast_rejected(self):
        policy = union(mod("port", 1), mod("port", 2))
        with pytest.raises(PolicyError, match="multicast"):
            compile_to_program(policy)

    def test_port_test_rejected(self):
        policy = seq(Filter(tst("port", 1)), mod("port", 2))
        with pytest.raises(PolicyError, match="port"):
            compile_to_program(policy)

    def test_missing_key_field_rejected(self):
        policy = seq(Filter(tst("ipv4.dst", DST_A)), mod("port", 2))
        with pytest.raises(PolicyError, match="key_fields"):
            compile_to_program(policy, key_fields=["udp.dst_port"])

    def test_program_measurement_tracks_policy(self):
        p1, _ = compile_to_program(
            seq(Filter(tst("ipv4.dst", DST_A)), mod("port", 2))
        )
        p2, _ = compile_to_program(
            seq(Filter(tst("ipv4.dst", DST_A)), mod("port", 3))
        )
        assert p1.measurement() != p2.measurement()

    def test_equivalence_with_netkat_semantics(self):
        """The installed pipeline agrees with the denotational model."""
        policy = ite(
            tst("ipv4.dst", DST_A),
            seq(mod("ipv4.dscp", 10), mod("port", 2)),
            ite(tst("ipv4.dst", DST_B), mod("port", 3),
                Filter(tst("ipv4.ttl", 0))),
        )
        runtime = make_runtime(policy)
        for dst in (DST_A, DST_B, ip_to_int("10.9.9.9")):
            ctx = process(runtime, dst)
            model = run(policy, NkPacket({"ipv4.dst": dst, "ipv4.ttl": 64}))
            if not model:
                assert ctx.egress_spec == DROP_PORT
            else:
                (out,) = model
                assert ctx.egress_spec == out.get("port")
                expected_dscp = out.get("ipv4.dscp")
                if expected_dscp is not None:
                    assert ctx.fields["ipv4.dscp"] == expected_dscp
