"""Round-trip tests for the NetKAT printers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netkat.ast import (
    DROP,
    ID,
    Dup,
    Filter,
    mod,
    pand,
    pnot,
    por,
    seq,
    star,
    test as tst,
    union,
    TRUE,
    FALSE,
)
from repro.netkat.parser import parse_policy, parse_predicate
from repro.netkat.printer import policy_to_text, predicate_to_text

FIELDS = ["a", "ipv4.dst", "sw-id"]
VALUES = [0, 7, "s1", "left right"]

predicates = st.deferred(lambda: st.one_of(
    st.just(TRUE),
    st.just(FALSE),
    st.builds(tst, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
    st.builds(pand, predicates, predicates),
    st.builds(por, predicates, predicates),
    st.builds(pnot, predicates),
))

policies = st.deferred(lambda: st.one_of(
    st.builds(Filter, predicates),
    st.builds(mod, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
    st.just(Dup()),
    st.builds(union, policies, policies),
    st.builds(seq, policies, policies),
    st.builds(star, policies),
))


class TestPredicatePrinter:
    def test_simple_forms(self):
        assert predicate_to_text(TRUE) == "true"
        assert predicate_to_text(tst("a", 1)) == "a = 1"
        assert predicate_to_text(tst("a", "s1")) == 'a = "s1"'

    @settings(max_examples=150, deadline=None)
    @given(predicates)
    def test_round_trip(self, pred):
        assert parse_predicate(predicate_to_text(pred)) == pred


class TestPolicyPrinter:
    def test_simple_forms(self):
        assert policy_to_text(ID) == "id"
        assert policy_to_text(DROP) == "drop"
        assert policy_to_text(mod("port", 2)) == "port := 2"

    @settings(max_examples=150, deadline=None)
    @given(policies)
    def test_round_trip(self, policy):
        assert parse_policy(policy_to_text(policy)) == policy
