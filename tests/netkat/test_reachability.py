"""Tests for topology encoding and reachability queries."""


from repro.net.routing import all_pairs_next_hop
from repro.net.topology import Topology, linear_topology, ring_topology
from repro.netkat.ast import Filter, seq, test as tst
from repro.netkat.reachability import (
    PORT_FIELD,
    SWITCH_FIELD,
    forwarding_hop_policy,
    network_policy,
    reachable,
    reachable_set,
    topology_policy,
)
from repro.netkat.semantics import NkPacket, run


def at(switch, port, **extra):
    return NkPacket({SWITCH_FIELD: switch, PORT_FIELD: port, **extra})


class TestTopologyPolicy:
    def test_link_teleports_both_ways(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", 1, "b", 2)
        t = topology_policy(topo)
        assert run(t, at("a", 1)) == {at("b", 2)}
        assert run(t, at("b", 2)) == {at("a", 1)}

    def test_unlinked_position_drops(self):
        topo = Topology()
        topo.add_node("a")
        t = topology_policy(topo)
        assert run(t, at("a", 1)) == set()

    def test_empty_topology_is_drop(self):
        t = topology_policy(Topology())
        assert run(t, at("a", 1)) == set()


class TestReachability:
    def hop_and_topo(self, switch_count=3):
        topo = linear_topology(switch_count)
        hop = forwarding_hop_policy(
            topo, all_pairs_next_hop(topo), destination_field="dst"
        )
        return topo, hop, topology_policy(topo)

    def test_linear_end_to_end(self):
        _, hop, t = self.hop_and_topo()
        start = at("h-src", 1, dst="h-dst")
        assert reachable(hop, t, start, tst(SWITCH_FIELD, "h-dst"))

    def test_unroutable_destination_unreachable(self):
        _, hop, t = self.hop_and_topo()
        start = at("h-src", 1, dst="nowhere")
        assert not reachable(hop, t, start, tst(SWITCH_FIELD, "h-dst"))

    def test_reachable_set_contains_intermediate_hops(self):
        _, hop, t = self.hop_and_topo()
        start = at("h-src", 1, dst="h-dst")
        switches_seen = {p.get(SWITCH_FIELD) for p in reachable_set(hop, t, start)}
        assert {"s1", "s2", "s3", "h-dst"} <= switches_seen

    def test_filtering_hop_blocks_path(self):
        # A hop policy that drops everything at s2 partitions the chain.
        topo = linear_topology(3)
        hop = forwarding_hop_policy(topo, all_pairs_next_hop(topo), "dst")
        blocked = seq(Filter(~tst(SWITCH_FIELD, "s2")), hop)
        t = topology_policy(topo)
        start = at("h-src", 1, dst="h-dst")
        assert not reachable(blocked, t, start, tst(SWITCH_FIELD, "h-dst"))

    def test_ring_reaches_all_hosts(self):
        topo = ring_topology(4)
        hop = forwarding_hop_policy(topo, all_pairs_next_hop(topo), "dst")
        t = topology_policy(topo)
        start = at("h1", 1, dst="h3")
        assert reachable(hop, t, start, tst(SWITCH_FIELD, "h3"))

    def test_network_policy_delivers_exact_packet(self):
        _, hop, t = self.hop_and_topo(2)
        start = at("h-src", 1, dst="h-dst")
        finals = run(network_policy(hop, t), start)
        assert any(p.get(SWITCH_FIELD) == "h-dst" for p in finals)
