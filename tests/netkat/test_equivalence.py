"""KAT/NetKAT axioms, checked against the implementation.

Each axiom of the NetKAT equational theory (Anderson et al. 2014,
Fig. 3) is verified for randomly generated policies via the decision
procedure — so the compiler provably respects the algebra on the
sampled space.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netkat.ast import (
    DROP,
    ID,
    Filter,
    Seq,
    Union,
    mod,
    pand,
    pnot,
    por,
    seq,
    star,
    test as tst,
    union,
)
from repro.netkat.equivalence import equivalent, implies
from repro.util.errors import PolicyError

FIELDS = ["a", "b"]
VALUES = [0, 1]

# Bounded recursion (max_leaves) keeps example sizes — and hence the
# FDD equivalence checks — small and fast.
predicates = st.recursive(
    st.builds(tst, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
    lambda inner: st.one_of(
        st.builds(pand, inner, inner),
        st.builds(por, inner, inner),
        st.builds(pnot, inner),
    ),
    max_leaves=6,
)

policies = st.recursive(
    st.one_of(
        st.builds(Filter, predicates),
        st.builds(mod, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
    ),
    lambda inner: st.one_of(
        st.builds(union, inner, inner),
        st.builds(seq, inner, inner),
        st.builds(star, inner),
    ),
    max_leaves=8,
)

# Recursive policy strategies occasionally generate large examples;
# suppress the size/speed health checks rather than let them flake.
SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
        HealthCheck.large_base_example,
    ],
)


class TestKatAxioms:
    @settings(**SETTINGS)
    @given(policies)
    def test_union_idempotent(self, p):
        assert equivalent(union(p, p), p)

    @settings(**SETTINGS)
    @given(policies, policies)
    def test_union_commutative(self, p, q):
        assert equivalent(union(p, q), union(q, p))

    @settings(**SETTINGS)
    @given(policies, policies, policies)
    def test_union_associative(self, p, q, r):
        assert equivalent(Union(Union(p, q), r), Union(p, Union(q, r)))

    @settings(**SETTINGS)
    @given(policies)
    def test_seq_identity(self, p):
        assert equivalent(Seq(p, ID), p)
        assert equivalent(Seq(ID, p), p)

    @settings(**SETTINGS)
    @given(policies)
    def test_seq_annihilator(self, p):
        assert equivalent(Seq(p, DROP), DROP)
        assert equivalent(Seq(DROP, p), DROP)

    @settings(**SETTINGS)
    @given(policies, policies, policies)
    def test_seq_distributes_over_union(self, p, q, r):
        assert equivalent(Seq(p, Union(q, r)), Union(Seq(p, q), Seq(p, r)))
        assert equivalent(Seq(Union(p, q), r), Union(Seq(p, r), Seq(q, r)))

    @settings(**SETTINGS)
    @given(policies)
    def test_star_unfolding(self, p):
        assert equivalent(star(p), union(ID, seq(p, star(p))))

    @settings(**SETTINGS)
    @given(policies)
    def test_star_idempotent(self, p):
        assert equivalent(star(star(p)), star(p))

    @settings(**SETTINGS)
    @given(predicates)
    def test_excluded_middle(self, a):
        assert equivalent(Filter(por(a, pnot(a))), ID)
        assert equivalent(Filter(pand(a, pnot(a))), DROP)

    def test_mod_then_test_absorbs(self):
        # f:=1 ; filter f=1 ≡ f:=1 (the NetKAT packet-algebra axiom).
        assert equivalent(
            seq(mod("a", 1), Filter(tst("a", 1))), mod("a", 1)
        )

    def test_mod_overwrite(self):
        assert equivalent(seq(mod("a", 1), mod("a", 2)), mod("a", 2))

    def test_distinct_mods_not_equivalent(self):
        assert not equivalent(mod("a", 1), mod("a", 0))


class TestInclusion:
    @settings(**SETTINGS)
    @given(policies, policies)
    def test_left_below_union(self, p, q):
        assert implies(p, union(p, q))

    @settings(**SETTINGS)
    @given(policies)
    def test_drop_is_bottom(self, p):
        assert implies(DROP, p)

    @settings(**SETTINGS)
    @given(policies)
    def test_p_below_star(self, p):
        assert implies(p, star(p))

    def test_strict_inclusion(self):
        small = seq(Filter(tst("a", 1)), mod("b", 1))
        big = mod("b", 1)
        assert implies(small, big)
        assert not implies(big, small)

    def test_dup_rejected(self):
        from repro.netkat.ast import Dup

        with pytest.raises(PolicyError):
            equivalent(Dup(), ID)
