"""API-surface checks: everything exported is importable and documented.

A downstream user navigates this library through ``__all__`` and
docstrings; this test keeps both honest for every subpackage.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.crypto",
    "repro.net",
    "repro.pisa",
    "repro.netkat",
    "repro.evidence",
    "repro.copland",
    "repro.ra",
    "repro.pera",
    "repro.core",
    "repro.analysis",
    "repro.telemetry",
    "repro.faults",
    "repro.workload",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports_and_has_docstring(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{package_name} lacks a module docstring"
    )


@pytest.mark.parametrize(
    "package_name", [p for p in PACKAGES if p != "repro"]
)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package_name} has no __all__"
    for name in exported:
        assert hasattr(module, name), (
            f"{package_name}.__all__ lists {name!r} but it is not defined"
        )


@pytest.mark.parametrize(
    "package_name", [p for p in PACKAGES if p != "repro"]
)
def test_exported_callables_are_documented(package_name):
    module = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name} exports undocumented items: {undocumented}"
    )


def test_no_export_name_collisions_across_layers():
    """Distinct concepts must not shadow each other across packages
    (e.g. two different ``Policy`` classes exported under one name is
    fine *within* their packages, but the names we re-export from
    repro.core must not silently collide with repro.copland's)."""
    core = importlib.import_module("repro.core")
    copland = importlib.import_module("repro.copland")
    shared = set(core.__all__) & set(copland.__all__)
    assert shared == set(), f"ambiguous exports: {shared}"
