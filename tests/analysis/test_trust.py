"""Tests for trust analysis and mechanical policy hardening."""


from repro.analysis.trust import (
    analyze_phrase_trust,
    harden_phrase,
    hardening_report,
)
from repro.copland.adversary import AdversaryTier, ProtocolModel
from repro.copland.ast import BranchSeq, Linear, Sign
from repro.copland.parser import parse_phrase

BANKING_MODEL = ProtocolModel(
    residence={"av": "ks", "bmon": "us", "exts": "us"},
    adversary_places=frozenset({"us"}),
    malicious=frozenset({"exts"}),
)

EXPR1 = "@ks [av us bmon] -~- @us [bmon us exts]"


class TestAnalyze:
    def test_report_fields(self):
        report = analyze_phrase_trust(
            parse_phrase(EXPR1), BANKING_MODEL, at_place="bank"
        )
        assert report.tier == AdversaryTier.DELAYED
        assert report.strategy is not None
        assert not report.resists_slow_adversaries

    def test_describe_renders(self):
        report = analyze_phrase_trust(
            parse_phrase(EXPR1), BANKING_MODEL, at_place="bank"
        )
        text = report.describe()
        assert "DELAYED" in text and "witness" in text

    def test_impossible_reported(self):
        report = analyze_phrase_trust(
            parse_phrase("@ks [av us exts]"), BANKING_MODEL, at_place="bank"
        )
        assert report.tier == AdversaryTier.IMPOSSIBLE
        assert report.resists_slow_adversaries
        assert "no corrupt/repair strategy" in report.describe()


class TestHarden:
    def test_parallel_becomes_sequential(self):
        hardened = harden_phrase(parse_phrase(EXPR1))
        assert isinstance(hardened, BranchSeq)

    def test_signatures_added(self):
        hardened = harden_phrase(parse_phrase(EXPR1))
        # Both arms now end with a signature inside their @place.
        left, right = hardened.left, hardened.right
        for arm in (left, right):
            inner = arm.phrase
            assert isinstance(inner, Linear)
            assert isinstance(inner.right, Sign)

    def test_already_signed_untouched(self):
        phrase = parse_phrase("@ks [av us bmon -> !]")
        assert harden_phrase(phrase) == phrase

    def test_non_measurement_arms_untouched(self):
        phrase = parse_phrase("! -~- #")
        hardened = harden_phrase(phrase)
        assert isinstance(hardened, BranchSeq)
        assert hardened.left == parse_phrase("!")

    def test_hardening_matches_expression_2_shape(self):
        hardened = harden_phrase(parse_phrase(EXPR1))
        expr2 = parse_phrase("@ks [av us bmon -> !] -<- @us [bmon us exts -> !]")
        assert hardened == expr2


class TestHardeningReport:
    def test_expression_1_improves_to_recent(self):
        report = hardening_report(
            parse_phrase(EXPR1), BANKING_MODEL, at_place="bank"
        )
        assert report.before.tier == AdversaryTier.DELAYED
        assert report.after.tier == AdversaryTier.RECENT
        assert report.improved

    def test_describe(self):
        report = hardening_report(
            parse_phrase(EXPR1), BANKING_MODEL, at_place="bank"
        )
        text = report.describe()
        assert "before hardening" in text
        assert "DELAYED -> RECENT" in text

    def test_already_strong_unchanged(self):
        phrase = parse_phrase("@ks [av us exts]")
        report = hardening_report(phrase, BANKING_MODEL, at_place="bank")
        assert report.before.tier == report.after.tier == AdversaryTier.IMPOSSIBLE
        assert not report.improved
