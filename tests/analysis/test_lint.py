"""Tests for deployment linting."""


from repro.analysis.lint import errors_only, lint_deployment
from repro.core.appraisal import (
    PathAppraisalPolicy,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import CompiledPolicy, HopDirective
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.pera.config import CompositionMode, DetailLevel
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import firewall_program


def good_appraisal(places=("s1", "s2")):
    program = firewall_program()
    anchors = KeyRegistry()
    references = {}
    for place in places:
        anchors.register_pair(KeyPair.generate(place))
        references[place] = {
            InertiaClass.HARDWARE: hardware_reference(f"asic-{place}".encode()),
            InertiaClass.PROGRAM: program_reference(program),
        }
    return PathAppraisalPolicy(
        anchors=anchors,
        reference_measurements=references,
        program_names={program_reference(program): program.full_name},
    ), program


def compiled(**overrides):
    defaults = dict(
        policy_id="x", relying_party="rp", nonce=b"\x01" * 16,
        appraiser="A",
        hop=HopDirective(
            test_text="attests = 1", attest=("X",),
            detail=DetailLevel.MINIMAL,
            composition=CompositionMode.CHAINED, sign=True,
        ),
        min_attested_hops=2,
    )
    defaults.update(overrides)
    return CompiledPolicy(**defaults)


class TestLint:
    def test_clean_deployment_no_errors(self):
        appraisal, _ = good_appraisal()
        findings = lint_deployment(
            compiled(), appraisal, expected_places=("s1", "s2")
        )
        assert errors_only(findings) == []

    def test_missing_reference_place_is_error(self):
        appraisal, _ = good_appraisal(places=("s1",))
        findings = lint_deployment(
            compiled(), appraisal, expected_places=("s1", "ghost")
        )
        assert any("ghost" in str(f) for f in errors_only(findings))

    def test_unchecked_detail_class_is_warning(self):
        appraisal, _ = good_appraisal()
        findings = lint_deployment(
            compiled(hop=HopDirective(
                detail=DetailLevel.CONFIG,  # TABLES requested
                composition=CompositionMode.CHAINED, sign=True,
            )),
            appraisal, expected_places=("s1",),
        )
        assert any("TABLES" in str(f) and "unchecked" in str(f)
                   for f in findings)
        assert errors_only(findings) == []

    def test_unknown_required_function_is_warning(self):
        appraisal, _ = good_appraisal()
        findings = lint_deployment(
            compiled(required_functions=(("*", "mystery_fn"),)),
            appraisal, expected_places=("s1",),
        )
        assert any("mystery_fn" in str(f) for f in findings)
        # Not an error: appraisal skips unresolvable names by design.
        assert not any("mystery_fn" in str(f) for f in errors_only(findings))

    def test_known_required_function_ok(self):
        appraisal, program = good_appraisal()
        findings = lint_deployment(
            compiled(required_functions=(("*", program.full_name),)),
            appraisal, expected_places=("s1",),
        )
        assert errors_only(findings) == []

    def test_unsigned_policy_is_error(self):
        appraisal, _ = good_appraisal()
        findings = lint_deployment(
            compiled(hop=HopDirective(sign=False)),
            appraisal,
        )
        assert any("sign" in str(f) for f in errors_only(findings))

    def test_missing_nonce_is_warning(self):
        appraisal, _ = good_appraisal()
        findings = lint_deployment(compiled(nonce=b""), appraisal)
        assert any("replayed" in str(f) for f in findings)
        assert not any("replayed" in str(f) for f in errors_only(findings))

    def test_pointwise_advisory(self):
        appraisal, _ = good_appraisal()
        findings = lint_deployment(
            compiled(hop=HopDirective(
                composition=CompositionMode.POINTWISE, sign=True,
            )),
            appraisal,
        )
        assert any("pointwise" in str(f) for f in findings)

    def test_malformed_guard_is_error(self):
        appraisal, _ = good_appraisal()
        findings = lint_deployment(
            compiled(hop=HopDirective(test_text="=== not a predicate",
                                      sign=True)),
            appraisal,
        )
        assert any("does not parse" in str(f) for f in errors_only(findings))

    def test_sampling_contradiction_warned(self):
        appraisal, _ = good_appraisal()
        appraisal.allow_sampling = True
        findings = lint_deployment(compiled(), appraisal)
        assert any("sampling" in str(f) for f in findings)

    def test_pseudonym_mapping_respected(self):
        appraisal, _ = good_appraisal(places=("s1-real",))
        appraisal.pseudonym_signers["pseu-1"] = "s1-real"
        findings = lint_deployment(
            compiled(), appraisal, expected_places=("pseu-1",)
        )
        assert errors_only(findings) == []
