"""System-scale integration: attestation across a k=4 fat-tree.

Exercises the whole stack at once: topology builder, routing
controller (P4Runtime over 20 switches), network-aware PERA switches,
policy compilation per path, multiple concurrent flows, and per-flow
appraisal — the closest thing to the paper's datacenter deployment
story (UC1's "tenants of a datacenter").
"""

import pytest

from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.net.controller import RoutingController
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.routing import shortest_path
from repro.net.simulator import Simulator
from repro.net.topology import fat_tree_topology
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pera.records import decode_record_stack
from repro.pisa.programs import ipv4_forwarding_program


@pytest.fixture(scope="module")
def fat_tree():
    """A provisioned k=4 fat-tree with attesting switches everywhere."""
    topo = fat_tree_topology(4)
    sim = Simulator(topo)
    base_ip = ip_to_int("10.0.0.0")
    hosts = {}
    for index, name in enumerate(topo.nodes_of_kind("host"), start=1):
        host = Host(name, mac=index, ip=base_ip + index)
        sim.bind(host)
        hosts[name] = host
    switches = {}
    for name in topo.nodes_of_kind("switch"):
        switch = NetworkAwarePeraSwitch(
            name, config=EvidenceConfig(composition=CompositionMode.CHAINED)
        )
        sim.bind(switch)
        switches[name] = switch
    controller = RoutingController(sim)
    controller.take_mastership()
    programs = controller.install_programs(ipv4_forwarding_program)
    controller.install_host_routes()

    anchors = KeyRegistry()
    references, names = {}, {}
    for name, switch in switches.items():
        anchors.register_pair(switch.keys)
        program = programs[name]
        references[name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(program),
        }
        names[program_reference(program)] = program.full_name
    appraiser = PathAppraiser("Appraiser", PathAppraisalPolicy(
        anchors=anchors, reference_measurements=references,
        program_names=names,
    ))
    return sim, topo, hosts, switches, appraiser


def send_attested(sim, topo, src, dst):
    path = shortest_path(topo, src.name, dst.name)
    compiled = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=path,
        bindings={"client": dst.name},
        composition=CompositionMode.CHAINED,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=7000, dst_port=7001,
        payload=b"dc-flow",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(compiled),
        ),
    )
    return path, compiled


class TestFatTreeAttestation:
    def test_cross_pod_flow_fully_attested(self, fat_tree):
        sim, topo, hosts, switches, appraiser = fat_tree
        src = hosts["h-0-0-0"]
        dst = hosts["h-3-1-1"]
        dst.clear()
        path, compiled = send_attested(sim, topo, src, dst)
        sim.run()
        assert len(dst.received_packets) == 1
        packet = dst.received_packets[0]
        switch_hops = len(path) - 2
        # Every switch on the (cross-pod) path attested: edge, agg,
        # core, agg, edge.
        assert switch_hops == 5
        records = decode_record_stack(packet.ra_shim.body)
        assert len(records) == switch_hops
        verdict = appraiser.appraise_packet(packet, compiled)
        assert verdict.accepted, verdict.failures

    def test_same_edge_flow_short_path(self, fat_tree):
        sim, topo, hosts, switches, appraiser = fat_tree
        src = hosts["h-0-0-0"]
        dst = hosts["h-0-0-1"]
        dst.clear()
        path, compiled = send_attested(sim, topo, src, dst)
        sim.run()
        records = decode_record_stack(dst.received_packets[0].ra_shim.body)
        assert len(records) == 1  # same edge switch
        verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
        assert verdict.accepted

    def test_many_concurrent_flows_all_appraise(self, fat_tree):
        sim, topo, hosts, switches, appraiser = fat_tree
        names = sorted(hosts)
        pairs = list(zip(names[:6], reversed(names[-6:])))
        compileds = {}
        for src_name, dst_name in pairs:
            if src_name == dst_name:
                continue
            hosts[dst_name].clear()
        for src_name, dst_name in pairs:
            if src_name == dst_name:
                continue
            _, compiled = send_attested(
                sim, topo, hosts[src_name], hosts[dst_name]
            )
            compileds[dst_name] = compiled
        sim.run()
        appraised = 0
        for dst_name, compiled in compileds.items():
            for packet in hosts[dst_name].received_packets:
                if packet.ra_shim is None:
                    continue
                verdict = appraiser.appraise_packet(packet, compiled)
                assert verdict.accepted, verdict.failures
                appraised += 1
        assert appraised == len(compileds)

    def test_one_rogue_core_switch_poisons_only_crossing_flows(self, fat_tree):
        sim, topo, hosts, switches, appraiser = fat_tree
        # Swap the program on one core switch.
        from repro.pisa.programs import athens_rogue_program
        from repro.pisa.runtime import TableEntry
        from repro.pisa.tables import MatchKey, MatchKind

        rogue_name = "c0-0"
        rogue = switches[rogue_name]
        rogue.runtime.arbitrate("attacker", 99)
        rogue.runtime.set_forwarding_pipeline_config(
            "attacker", athens_rogue_program()
        )
        # Reinstall this switch's routes under the attacker identity.
        for host in hosts.values():
            path = shortest_path(topo, rogue_name, host.name)
            if len(path) < 2:
                continue
            port = topo.port_towards(rogue_name, path[1])
            rogue.runtime.write("attacker", TableEntry(
                table="ipv4_lpm",
                keys=(MatchKey(MatchKind.LPM, host.ip, prefix_len=32),),
                action="forward", params=(port,),
            ))

        src, dst = hosts["h-0-0-0"], hosts["h-3-1-1"]
        dst.clear()
        path, compiled = send_attested(sim, topo, src, dst)
        sim.run()
        packet = dst.received_packets[-1]
        verdict = appraiser.appraise_packet(packet, compiled)
        if rogue_name in path:
            assert not verdict.accepted
            assert any("PROGRAM" in f for f in verdict.failures)
        # A same-pod flow that avoids the core is unaffected.
        src2, dst2 = hosts["h-1-0-0"], hosts["h-1-1-0"]
        dst2.clear()
        path2, compiled2 = send_attested(sim, topo, src2, dst2)
        assert rogue_name not in path2
        sim.run()
        verdict2 = appraiser.appraise_packet(
            dst2.received_packets[-1], compiled2
        )
        assert verdict2.accepted, verdict2.failures
