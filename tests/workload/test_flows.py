"""Flow payload codec, specs, the engine, and FCT accounting."""

import pytest

from repro.net.headers import ip_to_int
from repro.net.simulator import Simulator
from repro.net.topology import leaf_spine
from repro.util.errors import NetworkError
from repro.workload.flows import (
    FLOW_PAYLOAD_MIN_BYTES,
    FlowEngine,
    FlowSink,
    FlowSpec,
    decode_flow_payload,
    encode_flow_payload,
    flow_completion_times,
)


class TestPayloadCodec:
    def test_roundtrip(self):
        payload = encode_flow_payload(421, 17, 64)
        assert len(payload) == 64
        assert decode_flow_payload(payload) == (421, 17)

    def test_minimum_size_enforced(self):
        encode_flow_payload(1, 0, FLOW_PAYLOAD_MIN_BYTES)
        with pytest.raises(NetworkError):
            encode_flow_payload(1, 0, FLOW_PAYLOAD_MIN_BYTES - 1)

    def test_foreign_payloads_decode_to_none(self):
        assert decode_flow_payload(b"") is None
        assert decode_flow_payload(b"short") is None
        assert decode_flow_payload(b"X" * 64) is None


class TestFlowSpec:
    def test_validation(self):
        base = dict(
            flow_id=1, src="a", dst="b", src_port=1, dst_port=2, packets=3
        )
        FlowSpec(**base)
        with pytest.raises(NetworkError):
            FlowSpec(**{**base, "packets": 0})
        with pytest.raises(NetworkError):
            FlowSpec(**{**base, "payload_bytes": 4})
        with pytest.raises(NetworkError):
            FlowSpec(**{**base, "start_s": -1.0})
        with pytest.raises(NetworkError):
            FlowSpec(**{**base, "dst": "a"})

    def test_last_send_time(self):
        spec = FlowSpec(
            flow_id=1, src="a", dst="b", src_port=1, dst_port=2,
            packets=5, start_s=10e-6, gap_s=2e-6,
        )
        assert spec.last_send_s == pytest.approx(18e-6)


def small_fabric():
    """Two leaves, one spine, four FlowSink hosts, static forwarding."""
    from repro.net.controller import RoutingController
    from repro.pisa.programs import ipv4_forwarding_program
    from repro.pisa.switch import PisaSwitch

    topo = leaf_spine(2, 1, hosts_per_leaf=2)
    sim = Simulator(topo, seed=1)
    sinks = {}
    for i, (leaf, j) in enumerate(
        (leaf, j) for leaf in ("leaf00", "leaf01") for j in range(2)
    ):
        name = f"h-{leaf}-{j}"
        sinks[name] = FlowSink(
            name, mac=i + 1, ip=ip_to_int(f"10.0.{i}.1")
        )
        sim.bind(sinks[name])
    for switch in ("leaf00", "leaf01", "spine00"):
        sim.bind(PisaSwitch(switch))
    RoutingController(sim, name="ctl").provision(ipv4_forwarding_program)
    return sim, sinks


class TestFlowEngineAndSink:
    def test_flows_delivered_and_accounted(self):
        sim, sinks = small_fabric()
        engine = FlowEngine(sim, sinks)
        flows = [
            FlowSpec(
                flow_id=10, src="h-leaf00-0", dst="h-leaf01-1",
                src_port=1000, dst_port=2000, packets=4, gap_s=1e-6,
            ),
            FlowSpec(
                flow_id=11, src="h-leaf01-0", dst="h-leaf00-1",
                src_port=1001, dst_port=2000, packets=2,
                start_s=5e-6,
            ),
        ]
        assert engine.launch(flows) == 6
        assert engine.flows_launched == 2
        sim.run()
        record = sinks["h-leaf01-1"].flow_arrivals[10]
        assert int(record[0]) == 4
        assert record[2] > record[1]
        assert int(sinks["h-leaf00-1"].flow_arrivals[11][0]) == 2
        # Bulk packets are accounted, not retained.
        assert sinks["h-leaf01-1"].received == []

        fct = flow_completion_times(flows, sinks.values())
        assert set(fct) == {10, 11}
        assert fct[10] > 3e-6  # three pacing gaps plus network latency

    def test_partial_flows_omitted_from_fct(self):
        sim, sinks = small_fabric()
        engine = FlowEngine(sim, sinks)
        flow = FlowSpec(
            flow_id=20, src="h-leaf00-0", dst="h-leaf01-0",
            src_port=1, dst_port=2, packets=10, gap_s=10e-6,
        )
        engine.launch([flow])
        sim.run(until=25e-6)  # only the first few packets sent
        assert flow_completion_times([flow], sinks.values()) == {}

    def test_duplicate_flow_ids_rejected(self):
        sim, sinks = small_fabric()
        engine = FlowEngine(sim, sinks)
        spec = dict(
            src="h-leaf00-0", dst="h-leaf01-0",
            src_port=1, dst_port=2, packets=1,
        )
        with pytest.raises(NetworkError, match="duplicate flow id"):
            engine.launch([
                FlowSpec(flow_id=5, **spec),
                FlowSpec(flow_id=5, **spec),
            ])

    def test_unknown_host_rejected(self):
        sim, sinks = small_fabric()
        engine = FlowEngine(sim, sinks)
        with pytest.raises(NetworkError, match="unknown host"):
            engine.launch([
                FlowSpec(
                    flow_id=1, src="h-leaf00-0", dst="ghost",
                    src_port=1, dst_port=2, packets=1,
                )
            ])
