"""Seeded traffic mixes: determinism, shape, and timing properties."""

import random

import pytest

from repro.util.errors import NetworkError
from repro.workload.mixes import (
    elephant_mice_mix,
    on_off_starts,
    poisson_starts,
    web_session_mix,
)

HOSTS = [f"h{i:02d}" for i in range(8)]


class TestArrivalProcesses:
    def test_poisson_monotone_and_seeded(self):
        a = poisson_starts(random.Random(3), 50, 100_000.0, t0=1e-3)
        b = poisson_starts(random.Random(3), 50, 100_000.0, t0=1e-3)
        assert a == b
        assert len(a) == 50
        assert a[0] > 1e-3
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_poisson_rate_validated(self):
        with pytest.raises(NetworkError):
            poisson_starts(random.Random(0), 5, 0.0)

    def test_on_off_bursts(self):
        starts = on_off_starts(
            random.Random(1), 20, burst_len=5,
            on_rate_per_s=1e6, off_gap_s=100e-6,
        )
        assert len(starts) == 20
        assert all(x < y for x, y in zip(starts, starts[1:]))

    def test_on_off_validated(self):
        with pytest.raises(NetworkError):
            on_off_starts(random.Random(0), 5, 0, 1e6, 1e-6)
        with pytest.raises(NetworkError):
            on_off_starts(random.Random(0), 5, 2, 1e6, 0.0)


class TestElephantMiceMix:
    def test_pure_function_of_arguments(self):
        a = elephant_mice_mix(HOSTS, seed=7, flows=40)
        b = elephant_mice_mix(HOSTS, seed=7, flows=40)
        assert a == b
        assert a != elephant_mice_mix(HOSTS, seed=8, flows=40)

    def test_shape_and_ids(self):
        specs = elephant_mice_mix(
            HOSTS, seed=7, flows=40, first_flow_id=100
        )
        assert len(specs) == 40
        assert [s.flow_id for s in specs] == list(range(100, 140))
        assert all(s.src != s.dst for s in specs)
        assert all(s.src in HOSTS and s.dst in HOSTS for s in specs)
        assert {s.kind for s in specs} <= {"mouse", "elephant"}

    def test_size_classes_respect_bounds(self):
        specs = elephant_mice_mix(
            HOSTS, seed=3, flows=200, mice_fraction=0.5,
            mice_packets=(1, 4), elephant_packets=(50, 60),
        )
        mice = [s for s in specs if s.kind == "mouse"]
        elephants = [s for s in specs if s.kind == "elephant"]
        assert mice and elephants
        assert all(1 <= s.packets <= 4 for s in mice)
        assert all(50 <= s.packets <= 60 for s in elephants)

    def test_start_times_staggered_uniquely(self):
        specs = elephant_mice_mix(HOSTS, seed=5, flows=100)
        starts = [s.start_s for s in specs]
        assert len(set(starts)) == len(starts)
        assert all(t >= 0 for t in starts)

    def test_bad_arguments(self):
        with pytest.raises(NetworkError):
            elephant_mice_mix(["only"], seed=0, flows=1)
        with pytest.raises(NetworkError):
            elephant_mice_mix(HOSTS, seed=0, flows=1, mice_fraction=1.5)
        with pytest.raises(NetworkError):
            elephant_mice_mix(HOSTS, seed=0, flows=1, arrival="fractal")


class TestWebSessionMix:
    def test_request_response_pairing(self):
        specs = web_session_mix(HOSTS, seed=9, sessions=20)
        assert len(specs) == 40
        for req, resp in zip(specs[0::2], specs[1::2]):
            assert req.kind == "request" and resp.kind == "response"
            assert resp.src == req.dst and resp.dst == req.src
            assert req.dst_port == 80 and resp.src_port == 80
            assert resp.dst_port == req.src_port
            # Server thinks before answering; no causal coupling, but
            # the schedule always leaves the turnaround visible.
            assert resp.start_s > req.last_send_s

    def test_seeded_determinism(self):
        a = web_session_mix(HOSTS, seed=1, sessions=10)
        assert a == web_session_mix(HOSTS, seed=1, sessions=10)

    def test_dedicated_server_pool(self):
        servers = HOSTS[:2]
        specs = web_session_mix(
            HOSTS[2:], seed=4, sessions=15, servers=servers
        )
        assert all(s.dst in servers for s in specs if s.kind == "request")
        assert all(s.src in servers for s in specs if s.kind == "response")
