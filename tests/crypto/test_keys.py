"""Tests for key pairs and the trust-anchor registry."""

import pytest

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.util.errors import CryptoError


class TestKeyPair:
    def test_generate_deterministic(self):
        assert KeyPair.generate("s1").verify_key == KeyPair.generate("s1").verify_key

    def test_distinct_owners_distinct_keys(self):
        assert KeyPair.generate("s1").verify_key != KeyPair.generate("s2").verify_key

    def test_sign_verifies(self):
        pair = KeyPair.generate("s1")
        assert pair.verify_key.verify(b"m", pair.sign(b"m"))


class TestKeyRegistry:
    def test_register_and_lookup(self):
        reg = KeyRegistry()
        pair = KeyPair.generate("s1")
        reg.register_pair(pair)
        assert reg.lookup("s1") == pair.verify_key
        assert reg.knows("s1")

    def test_unknown_lookup_none(self):
        assert KeyRegistry().lookup("ghost") is None

    def test_require_raises_on_unknown(self):
        with pytest.raises(CryptoError, match="ghost"):
            KeyRegistry().require("ghost")

    def test_reregister_same_key_ok(self):
        reg = KeyRegistry()
        pair = KeyPair.generate("s1")
        reg.register_pair(pair)
        reg.register_pair(pair)
        assert len(reg) == 1

    def test_conflicting_key_rejected(self):
        reg = KeyRegistry()
        reg.register("s1", KeyPair.generate("s1").verify_key)
        with pytest.raises(CryptoError, match="different key"):
            reg.register("s1", KeyPair.generate("other").verify_key)

    def test_verify_against_registered(self):
        reg = KeyRegistry()
        pair = KeyPair.generate("s1")
        reg.register_pair(pair)
        assert reg.verify("s1", b"m", pair.sign(b"m"))

    def test_verify_unknown_signer_false(self):
        pair = KeyPair.generate("s1")
        assert not KeyRegistry().verify("s1", b"m", pair.sign(b"m"))

    def test_verify_malformed_signature_false_not_raise(self):
        reg = KeyRegistry()
        reg.register_pair(KeyPair.generate("s1"))
        assert not reg.verify("s1", b"m", b"garbage")

    def test_revoke(self):
        reg = KeyRegistry()
        reg.register_pair(KeyPair.generate("s1"))
        assert reg.revoke("s1")
        assert not reg.knows("s1")
        assert not reg.revoke("s1")

    def test_iteration_sorted(self):
        reg = KeyRegistry()
        for name in ["zeta", "alpha", "mid"]:
            reg.register_pair(KeyPair.generate(name))
        assert [name for name, _ in reg] == ["alpha", "mid", "zeta"]
