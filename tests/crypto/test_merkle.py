"""Tests for Merkle trees and inclusion proofs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleTree
from repro.util.errors import VerificationError


class TestMerkleTree:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.leaf_count == 1
        assert tree.prove(0).verify(b"only", tree.root)

    def test_empty_rejected(self):
        with pytest.raises(VerificationError):
            MerkleTree([])

    def test_all_leaves_provable(self):
        leaves = [f"ev-{i}".encode() for i in range(7)]  # odd count
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert tree.prove(i).verify(leaf, tree.root)

    def test_wrong_leaf_fails(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert not tree.prove(0).verify(b"x", tree.root)

    def test_wrong_root_fails(self):
        tree = MerkleTree([b"a", b"b"])
        other = MerkleTree([b"a", b"c"])
        assert not tree.prove(0).verify(b"a", other.root)

    def test_proof_index_bounds(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(VerificationError):
            tree.prove(1)
        with pytest.raises(VerificationError):
            tree.prove(-1)

    def test_proof_not_transferable_between_positions(self):
        tree = MerkleTree([b"same", b"same", b"other", b"x"])
        proof0 = tree.prove(0)
        # Proof for index 0 also proves leaf content b"same"; using the
        # *content* of another leaf at the wrong index must fail.
        assert not proof0.verify(b"other", tree.root)

    def test_leaf_accessor(self):
        tree = MerkleTree([b"a", b"b"])
        assert tree.leaf(1) == b"b"

    def test_root_changes_with_any_leaf(self):
        base = MerkleTree([b"a", b"b", b"c", b"d"]).root
        for i in range(4):
            leaves = [b"a", b"b", b"c", b"d"]
            leaves[i] = b"tampered"
            assert MerkleTree(leaves).root != base

    def test_leaf_set_not_malleable_by_duplication(self):
        # Promotion (not duplication) of odd nodes: [a,b,c] != [a,b,c,c].
        assert MerkleTree([b"a", b"b", b"c"]).root != MerkleTree(
            [b"a", b"b", b"c", b"c"]
        ).root

    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=33))
    def test_every_proof_verifies_property(self, leaves):
        tree = MerkleTree(leaves)
        for i in range(len(leaves)):
            assert tree.prove(i).verify(leaves[i], tree.root)

    @given(st.lists(st.binary(max_size=8), min_size=2, max_size=16))
    def test_order_matters(self, leaves):
        if leaves != list(reversed(leaves)):
            assert MerkleTree(leaves).root != MerkleTree(list(reversed(leaves))).root


class TestPseudonyms:
    def test_stable_per_user(self):
        from repro.crypto.pseudonym import PseudonymAuthority

        auth = PseudonymAuthority(b"operator-secret-0123456789abcdef")
        assert auth.pseudonym_for("alice", "switch-SN42") == auth.pseudonym_for(
            "alice", "switch-SN42"
        )

    def test_users_cannot_correlate(self):
        from repro.crypto.pseudonym import PseudonymAuthority

        auth = PseudonymAuthority(b"operator-secret-0123456789abcdef")
        assert auth.pseudonym_for("alice", "switch-SN42") != auth.pseudonym_for(
            "bob", "switch-SN42"
        )

    def test_lift_with_warrant(self):
        from repro.crypto.pseudonym import PseudonymAuthority

        auth = PseudonymAuthority(b"operator-secret-0123456789abcdef")
        pseu = auth.pseudonym_for("alice", "switch-SN42")
        assert auth.lift("alice", pseu, warrant="court-order-7") == "switch-SN42"

    def test_lift_without_warrant_rejected(self):
        from repro.crypto.pseudonym import PseudonymAuthority
        from repro.util.errors import CryptoError

        auth = PseudonymAuthority(b"operator-secret-0123456789abcdef")
        pseu = auth.pseudonym_for("alice", "switch-SN42")
        with pytest.raises(CryptoError):
            auth.lift("alice", pseu, warrant="")

    def test_unknown_pseudonym_rejected(self):
        from repro.crypto.pseudonym import PseudonymAuthority
        from repro.util.errors import CryptoError

        auth = PseudonymAuthority(b"operator-secret-0123456789abcdef")
        with pytest.raises(CryptoError):
            auth.lift("alice", "pseu-doesnotexist", warrant="w")

    def test_short_secret_rejected(self):
        from repro.crypto.pseudonym import PseudonymAuthority
        from repro.util.errors import CryptoError

        with pytest.raises(CryptoError):
            PseudonymAuthority(b"short")

    def test_is_pseudonym(self):
        from repro.crypto.pseudonym import PseudonymAuthority

        auth = PseudonymAuthority(b"operator-secret-0123456789abcdef")
        pseu = auth.pseudonym_for("alice", "switch-SN42")
        assert auth.is_pseudonym(pseu)
        assert not auth.is_pseudonym("switch-SN42")


class TestProofIndexBinding:
    """The claimed leaf index must agree with the proof's shape.

    The hash walk alone never consults ``leaf_index``, so without the
    shape check the index field would be malleable in transit (the
    epoch-batched record header ships it on the wire)."""

    @given(
        count=st.integers(min_value=1, max_value=33),
        data=st.data(),
    )
    def test_wrong_claimed_index_is_rejected(self, count, data):
        from dataclasses import replace

        leaves = [bytes([i]) * 4 for i in range(count)]
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=count - 1))
        proof = tree.prove(index)
        assert proof.verify(leaves[index], tree.root)
        claimed = data.draw(st.integers(min_value=0, max_value=count - 1))
        if claimed == index:
            return
        forged = replace(proof, leaf_index=claimed)
        assert not forged.verify(leaves[index], tree.root)

    def test_truncated_or_padded_path_is_rejected(self):
        from dataclasses import replace

        tree = MerkleTree([bytes([i]) * 4 for i in range(8)])
        proof = tree.prove(3)
        leaf = tree.leaf(3)
        assert proof.verify(leaf, tree.root)
        assert not replace(proof, path=proof.path[:-1]).verify(leaf, tree.root)
        padded = proof.path + ((b"\x00" * 32, True),)
        assert not replace(proof, path=padded).verify(leaf, tree.root)
