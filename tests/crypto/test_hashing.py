"""Tests for measurement digests and hash chains."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    DIGEST_LEN,
    HashChain,
    digest,
    digest_hex,
    measure_mapping,
)


class TestDigest:
    def test_length(self):
        assert len(digest(b"x")) == DIGEST_LEN

    def test_domain_separation(self):
        assert digest(b"x", domain="a") != digest(b"x", domain="b")

    def test_domain_boundary_unambiguous(self):
        # ("ab", b"c") must differ from ("a", b"bc"): length-prefixed tag.
        assert digest(b"c", domain="ab") != digest(b"bc", domain="a")

    def test_hex_matches_bytes(self):
        assert digest_hex(b"x", "d") == digest(b"x", "d").hex()

    def test_empty_domain_still_tagged(self):
        # Even the empty domain prepends a 2-byte length, so the result
        # differs from a raw sha256.
        assert digest(b"x") != hashlib.sha256(b"x").digest()

    @given(st.binary(max_size=128), st.binary(max_size=128))
    def test_injective_on_distinct_inputs(self, a, b):
        if a != b:
            assert digest(a) != digest(b)


class TestMeasureMapping:
    def test_order_independent(self):
        a = {"t1": b"x", "t2": b"y"}
        b = dict(reversed(list(a.items())))
        assert measure_mapping(a, "tables") == measure_mapping(b, "tables")

    def test_value_change_detected(self):
        assert measure_mapping({"t": b"x"}, "d") != measure_mapping({"t": b"y"}, "d")

    def test_key_change_detected(self):
        assert measure_mapping({"a": b"x"}, "d") != measure_mapping({"b": b"x"}, "d")

    def test_empty_mapping_valid(self):
        assert len(measure_mapping({}, "d")) == DIGEST_LEN

    def test_key_value_boundary_unambiguous(self):
        # {"ab": b"c"} vs {"a": b"bc"} must differ (length prefixes).
        assert measure_mapping({"ab": b"c"}, "d") != measure_mapping({"a": b"bc"}, "d")

    @given(
        st.dictionaries(st.text(max_size=8), st.binary(max_size=16), max_size=8),
        st.dictionaries(st.text(max_size=8), st.binary(max_size=16), max_size=8),
    )
    def test_equal_iff_same_mapping(self, m1, m2):
        same = measure_mapping(m1, "d") == measure_mapping(m2, "d")
        assert same == (m1 == m2)


class TestHashChain:
    def test_genesis_head(self):
        assert HashChain().head == b"\x00" * DIGEST_LEN

    def test_extend_changes_head(self):
        chain = HashChain()
        before = chain.head
        chain.extend(b"link")
        assert chain.head != before
        assert chain.length == 1

    def test_replay_matches_incremental(self):
        links = [b"a", b"b", b"c"]
        chain = HashChain()
        for link in links:
            chain.extend(link)
        assert HashChain.replay(links) == chain.head

    def test_order_sensitive(self):
        assert HashChain.replay([b"a", b"b"]) != HashChain.replay([b"b", b"a"])

    def test_tamper_detected(self):
        assert HashChain.replay([b"a", b"b"]) != HashChain.replay([b"a", b"B"])

    def test_bad_head_length_rejected(self):
        with pytest.raises(ValueError):
            HashChain(head=b"short")

    def test_replay_from_custom_start(self):
        start = digest(b"prior-state")
        assert HashChain.replay([b"x"], start=start) == HashChain.replay(
            [b"x"], start=start
        )
        assert HashChain.replay([b"x"], start=start) != HashChain.replay([b"x"])

    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=10))
    def test_prefix_heads_differ_from_full(self, links):
        full = HashChain.replay(links)
        prefix = HashChain.replay(links[:-1])
        assert full != prefix
