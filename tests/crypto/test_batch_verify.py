"""Adversarial matrix for batched Ed25519 verification.

The batched path must be *indistinguishable* from sequential
verification in everything but cost: identical accept/reject sets
(including malformed-input folds), exact isolation of forged members
via bisection, deterministic randomizers (sharded campaigns must stay
byte-identical), and verify-cache accounting that matches a sequence
of single calls hit-for-hit.
"""

import hashlib

import pytest

from repro.crypto import ed25519
from repro.crypto.ed25519 import (
    SigningKey,
    VerifyKey,
    _base_mul,
    _batch_randomizers,
    _multi_scalar_mul,
    _odd_multiples,
    _point_equal,
    _point_mul,
    _point_negate,
    _wnaf_digits,
    _wnaf_mul,
    _BASE,
    _IDENTITY,
    _L,
    verify_batch,
)
from repro.crypto.keys import KeyRegistry
from repro.util.errors import CryptoError
from repro.evidence.verify import (
    SignatureCache,
    registry_verify,
    registry_verify_batch,
)


def _signers(count):
    return [SigningKey.from_deterministic_seed(f"batch-signer-{i}") for i in range(count)]


def _batch(size, signers):
    """``size`` valid (key, message, signature) items over ``signers``."""
    items = []
    for i in range(size):
        sk = signers[i % len(signers)]
        message = f"batch-message-{i}".encode()
        items.append((sk.verify_key(), message, sk.sign(message)))
    return items


def _forge(items, index):
    """Replace item ``index``'s signature with a wrong (but canonical)
    one: a valid signature over a different message."""
    key, message, _ = items[index]
    sk = SigningKey.from_deterministic_seed("batch-forger")
    forged = list(items)
    forged[index] = (key, message, sk.sign(message))
    return forged


class TestBatchVerify:
    def test_all_valid_batch_accepts_in_one_check(self):
        items = _batch(16, _signers(4))
        stats = {}
        assert verify_batch(items, stats) == [True] * 16
        assert stats == {"batch_checks": 1}

    def test_empty_batch(self):
        assert verify_batch([]) == []

    def test_single_item_batch_matches_single_verify(self):
        items = _batch(1, _signers(1))
        assert verify_batch(items) == [True]
        key, message, signature = items[0]
        assert verify_batch([(key, message, signature[:32] + b"\x00" * 32)]) == [
            False
        ]

    @pytest.mark.parametrize("size", [2, 64, 513])
    def test_one_forgery_is_isolated_to_the_exact_index(self, size):
        signers = _signers(4)
        items = _batch(size, signers)
        forged_index = (2 * size) // 3
        forged = _forge(items, forged_index)
        stats = {}
        results = verify_batch(forged, stats)
        expected = [True] * size
        expected[forged_index] = False
        assert results == expected
        # Bisection resolved the culprit with exact single verifies at
        # the leaves, never accepting a group containing the forgery.
        assert stats.get("single_checks", 0) >= 1

    def test_two_forgeries_in_different_halves_are_both_isolated(self):
        items = _batch(64, _signers(4))
        forged = _forge(_forge(items, 5), 50)
        results = verify_batch(forged)
        expected = [True] * 64
        expected[5] = expected[50] = False
        assert results == expected

    def test_all_forged_batch_rejects_everything(self):
        items = _batch(8, _signers(2))
        forged = items
        for index in range(8):
            forged = _forge(forged, index)
        assert verify_batch(forged) == [False] * 8

    def test_accepts_raw_key_bytes_like_verify_keys(self):
        items = _batch(4, _signers(2))
        as_bytes = [(key.key_bytes, m, s) for key, m, s in items]
        assert verify_batch(as_bytes) == [True] * 4

    def test_repeated_same_signature_batches(self):
        key, message, signature = _batch(1, _signers(1))[0]
        assert verify_batch([(key, message, signature)] * 7) == [True] * 7

    def test_malformed_members_fold_to_false_without_raising(self):
        signers = _signers(2)
        items = _batch(3, signers)
        key, message, signature = items[0]
        bad_length_sig = (key, message, signature[:40])
        bad_key = (b"\x00" * 31, message, signature)
        non_point_r = (key, message, b"\xff" * 32 + signature[32:])
        non_canonical_s = (
            key,
            message,
            signature[:32] + (_L + 1).to_bytes(32, "little"),
        )
        batch = [items[1], bad_length_sig, bad_key, non_point_r, non_canonical_s, items[2]]
        assert verify_batch(batch) == [True, False, False, False, False, True]

    def test_rejection_set_matches_single_verify(self):
        """Every structurally-odd input the single path rejects (after
        its length gates), the batch rejects too — same split logic."""
        sk = _signers(1)[0]
        key = sk.verify_key()
        message = b"parity"
        good = sk.sign(message)
        candidates = [
            good,
            good[:32] + (_L - 1).to_bytes(32, "little"),  # wrong s, canonical
            good[:32] + (_L).to_bytes(32, "little"),  # s == L
            b"\xff" * 32 + good[32:],  # R not on curve
            bytes(64),
        ]
        for signature in candidates:
            assert verify_batch([(key, message, signature)]) == [
                key.verify(message, signature)
            ]

    def test_wrong_key_for_valid_signature_rejects(self):
        signers = _signers(2)
        message = b"key-swap"
        signature = signers[0].sign(message)
        assert verify_batch([(signers[1].verify_key(), message, signature)]) == [
            False
        ]

    def test_swapped_messages_reject(self):
        items = _batch(2, _signers(2))
        (k0, m0, s0), (k1, m1, s1) = items
        assert verify_batch([(k0, m1, s0), (k1, m0, s1)]) == [False, False]


def _small_order_point():
    """A point of exact order 8 (a generator of the torsion subgroup).

    The edwards25519 point group is cyclic of order 8·L, so L times any
    point outside the prime-order subgroup is small-order; probing
    hash-derived encodings finds a full-order-8 one within a few tries.
    """
    counter = 0
    while True:
        candidate = hashlib.sha512(
            b"torsion-probe" + counter.to_bytes(2, "little")
        ).digest()[:32]
        counter += 1
        try:
            point = ed25519._point_decompress(candidate)
        except CryptoError:
            continue
        torsion = _point_mul(_L, point)
        if _point_equal(torsion, _IDENTITY):
            continue
        if _point_equal(_point_mul(4, torsion), _IDENTITY):
            continue  # order 2 or 4; keep looking for full order 8
        return torsion


def _torsion_signature(sk, message, torsion):
    """A signer-side torsion forgery: ``(R + T, s)`` with ``s`` honest.

    The signer computes the challenge over the *displaced* R encoding,
    so ``s·B − k·A = R`` exactly — the verification defect is precisely
    the small-order point ``T``, the shape Chalkias et al. use to split
    cofactorless batch verification from cofactorless single
    verification.
    """
    a, prefix = ed25519._secret_expand(sk.seed)
    public = sk.verify_key().key_bytes
    r = int.from_bytes(ed25519._sha512(prefix + message), "little") % _L
    r_enc = ed25519._point_compress(
        ed25519._point_add(_base_mul(r), torsion)
    )
    k = int.from_bytes(ed25519._sha512(r_enc + public + message), "little") % _L
    s = (r + k * a) % _L
    return r_enc + s.to_bytes(32, "little")


class TestCofactoredTorsionParity:
    """Both verification paths are cofactored, so a small-order torsion
    component in R can never make the batched and single verdicts
    diverge — the attack the deterministic randomizers would otherwise
    expose (grind messages until z_i ≡ 0 mod 8 cancels the torsion)."""

    def test_torsion_signature_accepted_consistently(self):
        # RFC 8032 §5.1.7 explicitly permits the cofactored equation;
        # what matters here is that *both* paths take it.
        sk = SigningKey.from_deterministic_seed("torsion")
        key = sk.verify_key()
        signature = _torsion_signature(sk, b"torsion-msg", _small_order_point())
        assert key.verify(b"torsion-msg", signature) is True
        assert ed25519.verify(key.key_bytes, b"torsion-msg", signature) is True
        assert verify_batch([(key, b"torsion-msg", signature)]) == [True]

    def test_grinding_messages_cannot_split_batch_from_single(self):
        """The historical attack: ~1 in 8 messages made the cofactorless
        batch accept what single verification rejected. Sweep well past
        that expected window and demand verdict parity on every one."""
        sk = SigningKey.from_deterministic_seed("torsion-grinder")
        key = sk.verify_key()
        torsion = _small_order_point()
        for i in range(32):
            message = f"grind-{i}".encode()
            signature = _torsion_signature(sk, message, torsion)
            single = key.verify(message, signature)
            assert verify_batch([(key, message, signature)]) == [single]

    @pytest.mark.parametrize("size", [2, 64])
    def test_torsion_member_in_mixed_batches_keeps_parity(self, size):
        sk = SigningKey.from_deterministic_seed("torsion")
        items = _batch(size, _signers(4))
        key = sk.verify_key()
        message = b"mixed-torsion"
        items[size // 2] = (
            key,
            message,
            _torsion_signature(sk, message, _small_order_point()),
        )
        sequential = [k.verify(m, s) for k, m, s in items]
        assert verify_batch(items) == sequential


class TestRandomizerDeterminism:
    def _prepared(self, items):
        """Mirror verify_batch's screening to build prepared members."""
        prepared = []
        for index, (key, message, signature) in enumerate(items):
            split = ed25519._split_signature(signature)
            r_point, s = split
            k = ed25519._challenge(key.key_bytes, message, signature)
            prepared.append((index, key, message, signature, r_point, s, k))
        return prepared

    def test_same_batch_contents_same_randomizers(self):
        items = _batch(8, _signers(2))
        a = _batch_randomizers(self._prepared(items))
        b = _batch_randomizers(self._prepared(items))
        assert a == b

    def test_randomizers_are_nonzero_and_distinct_per_index(self):
        items = _batch(16, _signers(4))
        zs = _batch_randomizers(self._prepared(items))
        assert all(z != 0 for z in zs)
        assert len(set(zs)) == len(zs)

    def test_different_contents_different_randomizers(self):
        signers = _signers(2)
        a = _batch_randomizers(self._prepared(_batch(4, signers)))
        b = _batch_randomizers(self._prepared(_forge(_batch(4, signers), 1)))
        assert a != b

    def test_verdicts_stable_across_repeated_runs(self):
        """No ``random`` anywhere: repeated runs take identical paths."""
        items = _forge(_batch(9, _signers(3)), 4)
        runs = [verify_batch(items, {}) for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_randomizer_transcript_is_domain_separated(self):
        """The transcript hash starts from the module's domain tag, so
        no other protocol hash in the system can collide with it."""
        assert ed25519._BATCH_DOMAIN.startswith(b"repro.crypto/")


class TestMultiScalarEquivalence:
    """The wNAF/MSM fast paths must agree with the generic ladder."""

    SCALARS = [1, 2, 3, 7, 0xDEADBEEF, _L - 1, (1 << 252) + 12345, _L // 3]

    def test_wnaf_digits_reconstruct_the_scalar(self):
        for scalar in self.SCALARS:
            digits = _wnaf_digits(scalar)
            assert sum(d << i for i, d in enumerate(digits)) == scalar
            for digit in digits:
                assert digit == 0 or digit % 2 == 1
                assert -16 < digit < 16

    def test_odd_multiples_table(self):
        point = _point_mul(9, _BASE)
        table = _odd_multiples(point)
        for i, entry in enumerate(table):
            assert _point_equal(entry, _point_mul(2 * i + 1, point))

    def test_wnaf_mul_matches_generic_ladder(self):
        point = _point_mul(31337, _BASE)
        positives = _odd_multiples(point)
        negatives = tuple(_point_negate(p) for p in positives)
        for scalar in self.SCALARS:
            assert _point_equal(
                _wnaf_mul(scalar, positives, negatives),
                _point_mul(scalar, point),
            )

    def test_multi_scalar_mul_matches_sum_of_ladders(self):
        points = [_point_mul(seed, _BASE) for seed in (5, 11, 23, 41)]
        terms = list(zip(self.SCALARS[:4], points))
        expected = _IDENTITY
        for scalar, point in terms:
            expected = ed25519._point_add(expected, _point_mul(scalar, point))
        assert _point_equal(_multi_scalar_mul(terms), expected)

    def test_multi_scalar_mul_ignores_zero_scalars(self):
        point = _point_mul(77, _BASE)
        assert _point_equal(
            _multi_scalar_mul([(0, point), (5, point)]), _point_mul(5, point)
        )
        assert _point_equal(_multi_scalar_mul([(0, point)]), _IDENTITY)
        assert _point_equal(_multi_scalar_mul([]), _IDENTITY)

    def test_base_mul_matches_generic_ladder(self):
        for scalar in self.SCALARS:
            assert _point_equal(_base_mul(scalar), _point_mul(scalar, _BASE))

    def test_verify_key_caches_negated_point_and_tables(self):
        key = _signers(1)[0].verify_key()
        assert _point_equal(key.neg_point(), _point_negate(key.point()))
        assert key.neg_point() is key.neg_point()
        assert key._wnaf_tables() is key._wnaf_tables()
        positives, negatives = key._wnaf_tables()
        assert _point_equal(positives[0], key.neg_point())
        assert _point_equal(negatives[0], key.point())


class TestMemoizedBatchParity:
    """SignatureCache.verify_batch == a sequence of .verify calls."""

    def _registry(self, signers):
        registry = KeyRegistry()
        for i, sk in enumerate(signers):
            registry.register(f"sw{i}", sk.verify_key())
        return registry

    def _items(self, signers, count, forge_at=()):
        items = []
        for i in range(count):
            owner = f"sw{i % len(signers)}"
            message = f"cache-message-{i % 5}".encode()
            signature = signers[i % len(signers)].sign(message)
            if i in forge_at:
                signature = signature[:32] + bytes(32)
            items.append((owner, message, signature, None))
        items.append(("unknown-place", b"m", bytes(64), None))
        return items

    @pytest.mark.parametrize("forge_at", [(), (3,), (0, 7, 11)])
    def test_verdicts_stats_and_cache_state_match_sequential(self, forge_at):
        signers = _signers(3)
        registry = self._registry(signers)
        items = self._items(signers, 12, forge_at=forge_at)

        sequential_cache = SignatureCache()
        sequential = [
            registry_verify(registry, o, m, s, message_digest=d, cache=sequential_cache)
            for o, m, s, d in items
        ]
        batched_cache = SignatureCache()
        batched = registry_verify_batch(registry, items, cache=batched_cache)

        assert batched == sequential
        assert batched_cache.stats.snapshot() == sequential_cache.stats.snapshot()
        assert list(batched_cache._verdicts.items()) == list(
            sequential_cache._verdicts.items()
        )

    def test_in_batch_duplicates_count_as_hits(self):
        signers = _signers(1)
        registry = self._registry(signers)
        message = b"dup"
        signature = signers[0].sign(message)
        cache = SignatureCache()
        assert registry_verify_batch(
            registry, [("sw0", message, signature, None)] * 5, cache=cache
        ) == [True] * 5
        assert cache.stats.misses == 1
        assert cache.stats.hits == 4

    def test_second_batch_is_all_hits(self):
        signers = _signers(2)
        registry = self._registry(signers)
        items = self._items(signers, 6)[:-1]  # drop the unknown signer
        cache = SignatureCache()
        first = registry_verify_batch(registry, items, cache=cache)
        misses = cache.stats.misses
        second = registry_verify_batch(registry, items, cache=cache)
        assert first == second
        assert cache.stats.misses == misses  # no new crypto work

    def test_eviction_order_matches_sequential(self):
        signers = _signers(1)
        registry = self._registry(signers)
        items = []
        for i in range(6):
            message = f"evict-{i}".encode()
            items.append(("sw0", message, signers[0].sign(message), None))
        sequential_cache = SignatureCache(maxsize=4)
        for o, m, s, d in items:
            registry_verify(registry, o, m, s, message_digest=d, cache=sequential_cache)
        batched_cache = SignatureCache(maxsize=4)
        registry_verify_batch(registry, items, cache=batched_cache)
        assert list(batched_cache._verdicts.items()) == list(
            sequential_cache._verdicts.items()
        )


def test_randomizer_pin():
    """Golden pin: the deterministic randomizer derivation is part of
    the reproducibility contract (sharded campaigns replay the exact
    same batch checks). Changing the transcript layout or domain is a
    breaking change to recorded-run comparability — update docs/CRYPTO.md
    if this moves."""
    sk = SigningKey.from_deterministic_seed("pin")
    message = b"pinned-message"
    signature = sk.sign(message)
    key = sk.verify_key()
    k = ed25519._challenge(key.key_bytes, message, signature)
    split = ed25519._split_signature(signature)
    member = (0, key, message, signature, split[0], split[1], k)
    [z] = _batch_randomizers([member])
    assert z != 0 and z < (1 << 128)
    assert z & 1, "randomizers must be odd (torsion-cancellation guard)"
    expected = hashlib.sha512(
        ed25519._BATCH_DOMAIN
        + (1).to_bytes(4, "little")
        + key.key_bytes
        + signature
        + k.to_bytes(32, "little")
    ).digest()
    rederived = hashlib.sha512(
        expected + (0).to_bytes(4, "little") + (0).to_bytes(4, "little")
    ).digest()
    assert z == int.from_bytes(rederived[:16], "little") | 1
