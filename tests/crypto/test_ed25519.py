"""Tests for the from-scratch Ed25519 implementation.

Includes the RFC 8032 §7.1 test vectors — the implementation must be
bit-compatible with real Ed25519, not merely self-consistent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ed25519 import (
    SIGNATURE_LEN,
    SigningKey,
    VerifyKey,
    public_key_bytes,
    sign,
    verify,
)
from repro.util.errors import CryptoError

# RFC 8032 §7.1 TEST 1-3.
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


class TestRfc8032Vectors:
    @pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex", RFC8032_VECTORS)
    def test_public_key_derivation(self, seed_hex, pub_hex, msg_hex, sig_hex):
        assert public_key_bytes(bytes.fromhex(seed_hex)).hex() == pub_hex

    @pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex", RFC8032_VECTORS)
    def test_signature_matches_vector(self, seed_hex, pub_hex, msg_hex, sig_hex):
        sig = sign(bytes.fromhex(seed_hex), bytes.fromhex(msg_hex))
        assert sig.hex() == sig_hex

    @pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex", RFC8032_VECTORS)
    def test_vector_verifies(self, seed_hex, pub_hex, msg_hex, sig_hex):
        assert verify(
            bytes.fromhex(pub_hex), bytes.fromhex(msg_hex), bytes.fromhex(sig_hex)
        )


class TestSignVerify:
    def test_round_trip(self):
        key = SigningKey.from_deterministic_seed("switch-1")
        sig = key.sign(b"evidence")
        assert key.verify_key().verify(b"evidence", sig)

    def test_wrong_message_rejected(self):
        key = SigningKey.from_deterministic_seed("switch-1")
        sig = key.sign(b"evidence")
        assert not key.verify_key().verify(b"forged", sig)

    def test_wrong_key_rejected(self):
        k1 = SigningKey.from_deterministic_seed("a")
        k2 = SigningKey.from_deterministic_seed("b")
        sig = k1.sign(b"m")
        assert not k2.verify_key().verify(b"m", sig)

    def test_bit_flipped_signature_rejected(self):
        key = SigningKey.from_deterministic_seed("x")
        sig = bytearray(key.sign(b"m"))
        sig[0] ^= 0x01
        assert not key.verify_key().verify(b"m", bytes(sig))

    def test_signature_length(self):
        key = SigningKey.from_deterministic_seed("x")
        assert len(key.sign(b"m")) == SIGNATURE_LEN

    def test_deterministic_keys(self):
        a = SigningKey.from_deterministic_seed("same")
        b = SigningKey.from_deterministic_seed("same")
        assert a.verify_key() == b.verify_key()

    def test_malformed_lengths_raise(self):
        key = SigningKey.from_deterministic_seed("x")
        with pytest.raises(CryptoError):
            verify(b"short", b"m", key.sign(b"m"))
        with pytest.raises(CryptoError):
            key.verify_key().verify(b"m", b"short")
        with pytest.raises(CryptoError):
            VerifyKey(b"short")
        with pytest.raises(CryptoError):
            SigningKey(b"short")

    def test_high_s_rejected(self):
        # Malleability guard: s >= L must be rejected.
        key = SigningKey.from_deterministic_seed("x")
        sig = key.sign(b"m")
        bad = sig[:32] + b"\xff" * 32
        assert not key.verify_key().verify(b"m", bad)

    def test_fingerprint_stable(self):
        key = SigningKey.from_deterministic_seed("x").verify_key()
        assert key.fingerprint() == key.fingerprint()
        assert len(key.fingerprint()) == 16

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=64))
    def test_sign_verify_property(self, message):
        key = SigningKey.from_deterministic_seed("prop")
        assert key.verify_key().verify(message, key.sign(message))


class TestFastMathEquivalence:
    """The windowed base table and Shamir double-scalar trick must be
    drop-in equivalent to plain double-and-add on the same curve."""

    def scalars(self):
        from repro.crypto.ed25519 import _L

        return [0, 1, 2, 7, _L - 1, _L + 5, 2**252 + 1, 0xDEADBEEF]

    def test_base_mul_matches_generic_ladder(self):
        from repro.crypto.ed25519 import (
            _BASE,
            _base_mul,
            _point_equal,
            _point_mul,
        )

        for scalar in self.scalars():
            assert _point_equal(_base_mul(scalar), _point_mul(scalar, _BASE))

    def test_double_scalar_mul_matches_two_ladders(self):
        from repro.crypto.ed25519 import (
            _BASE,
            _double_scalar_mul,
            _point_add,
            _point_equal,
            _point_mul,
        )

        other = _point_mul(9, _BASE)
        for k1 in (0, 3, 0xABCDEF, 2**250 + 11):
            for k2 in (0, 5, 0x123456789):
                combined = _double_scalar_mul(k1, _BASE, k2, other)
                separate = _point_add(
                    _point_mul(k1, _BASE), _point_mul(k2, other)
                )
                assert _point_equal(combined, separate)

    def test_point_double_matches_add_with_self(self):
        from repro.crypto.ed25519 import (
            _BASE,
            _point_add,
            _point_double,
            _point_equal,
            _point_mul,
        )

        for scalar in (1, 2, 42, 2**200 + 3):
            point = _point_mul(scalar, _BASE)
            assert _point_equal(_point_double(point), _point_add(point, point))

    def test_negate_cancels(self):
        from repro.crypto.ed25519 import (
            _BASE,
            _IDENTITY,
            _point_add,
            _point_equal,
            _point_negate,
        )

        assert _point_equal(_point_add(_BASE, _point_negate(_BASE)), _IDENTITY)

    def test_verify_key_point_is_cached(self):
        from repro.crypto.ed25519 import SigningKey

        key = SigningKey.from_deterministic_seed("cache-pin").verify_key()
        assert key.point() is key.point()

    @settings(max_examples=30, deadline=None)
    @given(message=st.binary(max_size=64), seed=st.text(min_size=1, max_size=8))
    def test_fast_sign_verify_round_trip_property(self, message, seed):
        from repro.crypto.ed25519 import SigningKey

        key = SigningKey.from_deterministic_seed(seed)
        assert key.verify_key().verify(message, key.sign(message))
