"""Tests for the Copland concrete syntax."""

import pytest

from repro.copland.ast import (
    Asp,
    At,
    BranchPar,
    BranchSeq,
    Copy,
    Hash,
    Linear,
    Measure,
    Null,
    Sign,
)
from repro.copland.parser import parse_phrase, parse_request
from repro.util.errors import PolicyError


class TestAtoms:
    def test_measurement_triple(self):
        assert parse_phrase("av us bmon") == Measure(
            asp="av", target_place="us", target="bmon"
        )

    def test_bare_service_asp(self):
        assert parse_phrase("appraise") == Asp("appraise")

    def test_service_asp_with_args(self):
        assert parse_phrase("certify(n)") == Asp("certify", ("n",))
        assert parse_phrase("attest(Hardware, Program)") == Asp(
            "attest", ("Hardware", "Program")
        )

    def test_sign_hash_copy_null(self):
        assert parse_phrase("!") == Sign()
        assert parse_phrase("#") == Hash()
        assert parse_phrase("_") == Copy()
        assert parse_phrase("{}") == Null()

    def test_at_place(self):
        assert parse_phrase("@ks [av us bmon]") == At(
            "ks", Measure("av", "us", "bmon")
        )


class TestCompositions:
    def test_linear(self):
        phrase = parse_phrase("av us bmon -> !")
        assert phrase == Linear(Measure("av", "us", "bmon"), Sign())

    def test_linear_chain_left_assoc(self):
        phrase = parse_phrase("attest -> # -> !")
        assert phrase == Linear(Linear(Asp("attest"), Hash()), Sign())

    def test_branch_parallel(self):
        phrase = parse_phrase("av us bmon -~- bmon us exts")
        assert phrase == BranchPar(
            Measure("av", "us", "bmon"),
            Measure("bmon", "us", "exts"),
            left_split="-",
            right_split="-",
        )

    def test_branch_sequential(self):
        phrase = parse_phrase("av us bmon -<- bmon us exts")
        assert isinstance(phrase, BranchSeq)
        assert phrase.left_split == "-" and phrase.right_split == "-"

    def test_branch_gt_is_sequential(self):
        phrase = parse_phrase("attest +>+ appraise")
        assert isinstance(phrase, BranchSeq)
        assert phrase.left_split == "+" and phrase.right_split == "+"

    def test_arrow_binds_tighter_than_branch(self):
        phrase = parse_phrase("a us b -> ! -<- c us d -> !")
        assert isinstance(phrase, BranchSeq)
        assert isinstance(phrase.left, Linear)
        assert isinstance(phrase.right, Linear)

    def test_parens_override(self):
        phrase = parse_phrase("(av us bmon -~- bmon us exts) -> !")
        assert isinstance(phrase, Linear)
        assert isinstance(phrase.left, BranchPar)


class TestPaperExpressions:
    def test_expression_1(self):
        phrase = parse_phrase("@ks [av us bmon] -~- @us [bmon us exts]")
        assert phrase == BranchPar(
            At("ks", Measure("av", "us", "bmon")),
            At("us", Measure("bmon", "us", "exts")),
            left_split="-",
            right_split="-",
        )

    def test_expression_2(self):
        phrase = parse_phrase(
            "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]"
        )
        assert isinstance(phrase, BranchSeq)
        assert phrase.left == At("ks", Linear(Measure("av", "us", "bmon"), Sign()))

    def test_expression_3_out_of_band(self):
        request = parse_request(
            "*RP1 <n> : @Switch [attest(Hardware, Program) -> # -> !] "
            "+>+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]"
        )
        assert request.relying_party == "RP1"
        assert request.params == ("n",)
        assert isinstance(request.phrase, BranchSeq)

    def test_expression_4_in_band(self):
        request = parse_request(
            "*RP1 : @Switch [attest(Hardware, Program) -> # -> !] "
            "-> @RP2 [@Appraiser [appraise -> certify -> !]]"
        )
        assert isinstance(request.phrase, Linear)
        inner = request.phrase.right
        assert isinstance(inner, At) and inner.place == "RP2"
        assert isinstance(inner.phrase, At) and inner.phrase.place == "Appraiser"


class TestRequests:
    def test_simple_request(self):
        request = parse_request("*bank : av us bmon")
        assert request.relying_party == "bank"
        assert request.params == ()

    def test_multi_param_request(self):
        request = parse_request("*bank <n, X> : attest(X) -> !")
        assert request.params == ("n", "X")

    def test_places_collected(self):
        phrase = parse_phrase("@ks [av us bmon] -~- @us [bmon us exts]")
        assert phrase.places() == ("ks", "us")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "@", "@ks", "@ks [", "av us", "-> !", "a -<", "*: x",
        "certify(", "av us bmon extra",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(PolicyError):
            parse_phrase(bad)

    def test_request_needs_star(self):
        with pytest.raises(PolicyError):
            parse_request("bank : av us bmon")
