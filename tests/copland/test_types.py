"""Tests for the static evidence-type semantics.

The headline property: for random phrases, the type inferred *before*
execution exactly matches the shape of the evidence the VM produces —
Copland's typed-evidence guarantee, checked dynamically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.copland.ast import (
    At,
    BranchPar,
    BranchSeq,
    Copy,
    Hash,
    Linear,
    Measure,
    Null,
    Sign,
)
from repro.copland.parser import parse_phrase
from repro.copland.types import (
    AspT,
    HshT,
    MtT,
    NonceT,
    ParT,
    SeqT,
    SigT,
    count_signatures,
    evidence_inhabits,
    infer_evidence_type,
    signing_places,
)
from repro.copland.vm import CoplandVM, Place


def make_vm():
    vm = CoplandVM()
    vm.register(Place("bank"))
    ks = vm.register(Place("ks"))
    us = vm.register(Place("us"))
    ks.install_component("av", b"antivirus")
    us.install_component("bmon", b"monitor")
    us.install_component("exts", b"extensions")
    return vm


class TestInference:
    def test_measurement_type(self):
        etype = infer_evidence_type(parse_phrase("av us bmon"), "ks")
        assert etype == AspT(asp="av", place="ks", prior=MtT())

    def test_at_changes_place(self):
        etype = infer_evidence_type(parse_phrase("@us [bmon us exts]"), "bank")
        assert etype.place == "us"

    def test_linear_threads_evidence(self):
        etype = infer_evidence_type(parse_phrase("av us bmon -> !"), "ks")
        assert etype == SigT(
            place="ks", body=AspT(asp="av", place="ks", prior=MtT())
        )

    def test_hash_forgets_structure(self):
        etype = infer_evidence_type(parse_phrase("av us bmon -> #"), "ks")
        assert etype == HshT(place="ks")

    def test_branch_splits(self):
        etype = infer_evidence_type(
            parse_phrase("_ +~- _"), "p", incoming=NonceT()
        )
        assert etype == ParT(left=NonceT(), right=MtT())

    def test_chained_branch_feeds_right(self):
        etype = infer_evidence_type(
            parse_phrase("av us bmon +>+ !"), "ks"
        )
        assert isinstance(etype, SeqT)
        assert etype.right == SigT(place="ks", body=etype.left)

    def test_expression_2_type(self):
        etype = infer_evidence_type(parse_phrase(
            "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]"
        ), "bank")
        assert count_signatures(etype) == 2
        assert signing_places(etype) == ("ks", "us")

    def test_null_discards(self):
        etype = infer_evidence_type(
            parse_phrase("{}"), "p", incoming=NonceT()
        )
        assert etype == MtT()

    def test_describe_readable(self):
        etype = infer_evidence_type(parse_phrase(
            "@ks [av us bmon -> !]"
        ), "bank")
        assert etype.describe() == "sig_ks(av@ks[mt])"


class TestVmAgreement:
    def test_concrete_examples(self):
        vm = make_vm()
        for text in [
            "av us bmon",
            "@ks [av us bmon -> !]",
            "@ks [av us bmon] -~- @us [bmon us exts]",
            "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]",
            "@ks [av us bmon -> # -> !]",
            "_",
            "{}",
        ]:
            phrase = parse_phrase(text)
            etype = infer_evidence_type(phrase, "bank")
            evidence = vm.execute(phrase, "bank")
            assert evidence_inhabits(evidence, etype), text

    # Random phrase generator over the banking places/components.
    measurements = st.sampled_from([
        Measure("av", "us", "bmon"),
        Measure("bmon", "us", "exts"),
        Measure("av", "us", "exts"),
    ])

    phrases = st.deferred(lambda: st.one_of(
        TestVmAgreement.measurements,
        st.just(Sign()),
        st.just(Hash()),
        st.just(Copy()),
        st.just(Null()),
        st.builds(
            At,
            st.sampled_from(["ks", "us", "bank"]),
            TestVmAgreement.phrases,
        ),
        st.builds(Linear, TestVmAgreement.phrases, TestVmAgreement.phrases),
        st.builds(
            BranchSeq,
            TestVmAgreement.phrases,
            TestVmAgreement.phrases,
            st.sampled_from(["+", "-"]),
            st.sampled_from(["+", "-"]),
            st.booleans(),
        ),
        st.builds(
            BranchPar,
            TestVmAgreement.phrases,
            TestVmAgreement.phrases,
            st.sampled_from(["+", "-"]),
            st.sampled_from(["+", "-"]),
        ),
    ))

    @settings(max_examples=80, deadline=None)
    @given(phrases)
    def test_random_phrases_inhabit_inferred_type(self, phrase):
        vm = make_vm()
        etype = infer_evidence_type(phrase, "bank")
        evidence = vm.execute(phrase, "bank")
        assert evidence_inhabits(evidence, etype)

    @settings(max_examples=40, deadline=None)
    @given(phrases)
    def test_signature_count_matches(self, phrase):
        vm = make_vm()
        etype = infer_evidence_type(phrase, "bank")
        evidence = vm.execute(phrase, "bank")
        assert len(evidence.find_signatures()) == count_signatures(etype)
