"""Tests for event semantics and the corrupt/repair adversary analysis.

The headline results (the paper's §4.2, after Ramsdell/Rowe et al.):

- Expression (1) — parallel composition — falls to a DELAYED adversary
  (one who acts during the run but never inside a protocol-ordered
  window).
- Expression (2) — sequenced — requires a RECENT adversary (corruption
  squeezed between two ordered measurements).
"""

import pytest

from repro.copland.adversary import (
    AdversaryTier,
    ProtocolModel,
    analyze_measurement_protocol,
)
from repro.copland.events import EventKind, linear_extensions, phrase_events
from repro.copland.parser import parse_phrase
from repro.util.errors import PolicyError

EXPR1 = "@ks [av us bmon] -~- @us [bmon us exts]"
EXPR2 = "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]"

BANKING_MODEL = ProtocolModel(
    residence={"av": "ks", "bmon": "us", "exts": "us"},
    adversary_places=frozenset({"us"}),
    malicious=frozenset({"exts"}),
)


class TestPhraseEvents:
    def test_linear_orders_events(self):
        events, order = phrase_events(parse_phrase("av us bmon -> !"), "ks")
        assert [e.kind for e in events] == [EventKind.MEASURE, EventKind.SIGN]
        assert (events[0].event_id, events[1].event_id) in order

    def test_parallel_leaves_unordered(self):
        events, order = phrase_events(parse_phrase(EXPR1), "bank")
        measures = [e for e in events if e.kind is EventKind.MEASURE]
        assert len(measures) == 2
        ids = {e.event_id for e in measures}
        assert not any((a, b) in order for a in ids for b in ids if a != b)

    def test_branch_seq_orders_arms(self):
        events, order = phrase_events(parse_phrase(EXPR2), "bank")
        measures = [e for e in events if e.kind is EventKind.MEASURE]
        av, bmon = measures
        assert av.asp == "av" and bmon.asp == "bmon"
        assert (av.event_id, bmon.event_id) in order

    def test_order_transitively_closed(self):
        events, order = phrase_events(
            parse_phrase("a p x -> b p y -> c p z"), "p"
        )
        first, _, last = events
        assert (first.event_id, last.event_id) in order

    def test_comm_events_bracket_body(self):
        events, order = phrase_events(
            parse_phrase("@ks [av us bmon]"), "bank", include_comms=True
        )
        kinds = [e.kind for e in events]
        assert EventKind.REQUEST in kinds and EventKind.REPLY in kinds
        req = next(e for e in events if e.kind is EventKind.REQUEST)
        rpy = next(e for e in events if e.kind is EventKind.REPLY)
        meas = next(e for e in events if e.kind is EventKind.MEASURE)
        assert (req.event_id, meas.event_id) in order
        assert (meas.event_id, rpy.event_id) in order

    def test_event_places(self):
        events, _ = phrase_events(parse_phrase(EXPR1), "bank")
        places = {e.asp: e.place for e in events if e.kind is EventKind.MEASURE}
        assert places == {"av": "ks", "bmon": "us"}


class TestLinearExtensions:
    def test_total_order_single_extension(self):
        events, order = phrase_events(parse_phrase("a p x -> b p y"), "p")
        assert len(list(linear_extensions(events, order))) == 1

    def test_parallel_pair_two_extensions(self):
        events, order = phrase_events(parse_phrase("a p x -~- b p y"), "p")
        assert len(list(linear_extensions(events, order))) == 2

    def test_extensions_respect_order(self):
        events, order = phrase_events(parse_phrase(EXPR2), "bank")
        for extension in linear_extensions(events, order):
            positions = {e.event_id: i for i, e in enumerate(extension)}
            for a, b in order:
                assert positions[a] < positions[b]

    def test_limit_enforced(self):
        # 6 unordered events -> 720 extensions > limit of 10.
        phrase = parse_phrase(
            "a p x -~- b p y -~- c p z -~- d p w -~- e p v -~- f p u"
        )
        events, order = phrase_events(phrase, "p")
        with pytest.raises(PolicyError, match="extensions"):
            list(linear_extensions(events, order, limit=10))


class TestAdversaryAnalysis:
    def test_expression_1_falls_to_delayed_adversary(self):
        tier, strategy = analyze_measurement_protocol(
            parse_phrase(EXPR1), BANKING_MODEL, at_place="bank"
        )
        assert tier == AdversaryTier.DELAYED
        assert strategy is not None
        # The witness corrupts bmon during the run (either before the
        # exts scan with a later repair, or after av's look — both are
        # delayed attacks); crucially, no action is time-constrained.
        kinds = {(a.kind, a.component) for a in strategy.actions}
        assert ("corrupt", "bmon") in kinds
        assert any(a.after > 0 for a in strategy.actions)
        assert not any(a.constrained for a in strategy.actions)

    def test_expression_2_requires_recent_adversary(self):
        tier, strategy = analyze_measurement_protocol(
            parse_phrase(EXPR2), BANKING_MODEL, at_place="bank"
        )
        assert tier == AdversaryTier.RECENT
        assert any(a.constrained for a in strategy.actions)

    def test_sequencing_strictly_improves(self):
        tier1, _ = analyze_measurement_protocol(
            parse_phrase(EXPR1), BANKING_MODEL, at_place="bank"
        )
        tier2, _ = analyze_measurement_protocol(
            parse_phrase(EXPR2), BANKING_MODEL, at_place="bank"
        )
        assert tier2 > tier1

    def test_kernel_measurer_makes_attack_impossible(self):
        # If the malware were measured directly by kernel-space av,
        # no userspace adversary strategy exists.
        phrase = parse_phrase("@ks [av us exts]")
        tier, strategy = analyze_measurement_protocol(
            phrase, BANKING_MODEL, at_place="bank"
        )
        assert tier == AdversaryTier.IMPOSSIBLE
        assert strategy is None

    def test_remeasurement_after_still_recent(self):
        # Measuring bmon again after C2 doesn't stop a fast adversary
        # that can also repair quickly: still RECENT, not IMPOSSIBLE.
        phrase = parse_phrase(
            "@ks [av us bmon] -<- (@us [bmon us exts] -<- @ks [av us bmon])"
        )
        tier, _ = analyze_measurement_protocol(
            phrase, BANKING_MODEL, at_place="bank"
        )
        assert tier == AdversaryTier.RECENT

    def test_prepositioned_when_single_lying_measurement(self):
        # Only the exts measurement, nothing checks bmon: corrupt bmon
        # before the run and never touch it again.
        phrase = parse_phrase("@us [bmon us exts]")
        tier, strategy = analyze_measurement_protocol(
            phrase, BANKING_MODEL, at_place="bank"
        )
        assert tier == AdversaryTier.PREPOSITIONED
        assert all(a.after == 0 for a in strategy.actions)

    def test_phrase_without_measurements_rejected(self):
        with pytest.raises(PolicyError):
            analyze_measurement_protocol(parse_phrase("!"), BANKING_MODEL)

    def test_strategy_describe_renders_timeline(self):
        _, strategy = analyze_measurement_protocol(
            parse_phrase(EXPR1), BANKING_MODEL, at_place="bank"
        )
        text = strategy.describe()
        assert "tier:" in text
        assert "corrupt" in text
        # Every scheduled event appears in the rendered timeline.
        for entry in strategy.schedule:
            assert entry in text


class TestVmAttackSimulation:
    """Execute the §4.2 attack concretely on the VM: the adversary's
    schedule defeats (1); against (2) the same slow adversary fails."""

    def setup_vm(self):
        from repro.copland.vm import CoplandVM, Place

        vm = CoplandVM()
        vm.register(Place("bank"))
        ks = vm.register(Place("ks"))
        us = vm.register(Place("us"))
        ks.install_component("av", b"antivirus")
        us.install_component("bmon", b"bmon-good")
        us.install_component("exts", b"extensions-good")
        return vm, us

    def appraise(self, vm, evidence, us_golden=b"extensions-good"):
        """Does the evidence claim both bmon and exts are good?"""
        from repro.crypto.hashing import digest as d

        expected = {
            ("av", "bmon"): d(b"bmon-good", domain="component-measurement"),
            ("bmon", "exts"): d(us_golden, domain="component-measurement"),
        }
        for meas in evidence.find_measurements():
            want = expected.get((meas.asp, meas.target))
            if want is not None and meas.value != want:
                return False
        return True

    def test_attack_on_parallel_succeeds(self):
        vm, us = self.setup_vm()
        # Malware installed; bmon corrupted to lie about it.
        us.corrupt_component("exts", b"MALWARE")
        us.corrupt_component("bmon", b"bmon-evil")
        # Adversary schedule: C2 first (lying bmon scans exts), then
        # repair bmon, then C1 (av measures now-clean bmon). The VM's
        # parallel order is right-arm-first, matching this schedule —
        # the adversary repairs bmon via a hook between the arms.
        from repro.copland.parser import parse_phrase as pp
        from repro.copland.evidence import ParallelEvidence

        c2 = vm.execute(pp("@us [bmon us exts]"), "bank")
        us.repair_component("bmon")  # hide the tracks
        c1 = vm.execute(pp("@ks [av us bmon]"), "bank")
        evidence = ParallelEvidence(left=c1, right=c2)
        # The appraisal accepts even though exts is malware.
        assert self.appraise(vm, evidence)
        assert us.components["exts"] == b"MALWARE"

    def test_attack_through_real_parallel_phrase(self):
        """The same attack, run through the actual BranchPar phrase
        using the VM's adversary scheduling hook."""
        vm, us = self.setup_vm()
        us.corrupt_component("exts", b"MALWARE")
        us.corrupt_component("bmon", b"bmon-evil")
        vm.between_par_arms = lambda: us.repair_component("bmon")
        from repro.copland.parser import parse_phrase as pp

        evidence = vm.execute(
            pp("@ks [av us bmon] -~- @us [bmon us exts]"), "bank"
        )
        assert self.appraise(vm, evidence)
        assert us.components["exts"] == b"MALWARE"

    def test_attack_on_sequenced_fails_for_slow_adversary(self):
        vm, us = self.setup_vm()
        us.corrupt_component("exts", b"MALWARE")
        us.corrupt_component("bmon", b"bmon-evil")
        from repro.copland.parser import parse_phrase as pp

        # Sequenced protocol runs C1 first. The slow adversary cannot
        # act mid-protocol: bmon is still corrupt when av measures it.
        evidence = vm.execute(pp(
            "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]"
        ), "bank")
        assert not self.appraise(vm, evidence)
