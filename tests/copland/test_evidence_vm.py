"""Tests for evidence terms and the Copland VM."""

import pytest

from repro.copland.evidence import (
    EmptyEvidence,
    HashEvidence,
    MeasurementEvidence,
    NonceEvidence,
    ParallelEvidence,
    SequenceEvidence,
    SignedEvidence,
)
from repro.copland.manifest import Manifest, PlaceSpec
from repro.copland.parser import parse_phrase, parse_request
from repro.copland.vm import CLEAN_REPORT, CoplandVM, Place
from repro.crypto.hashing import digest
from repro.util.errors import PolicyError


def banking_vm():
    """The §4.2 scenario: kernel space (av) and userspace (bmon, exts)."""
    vm = CoplandVM()
    bank = vm.register(Place("bank"))
    ks = vm.register(Place("ks"))
    us = vm.register(Place("us"))
    ks.install_component("av", b"antivirus-v3-binary")
    us.install_component("bmon", b"browser-monitor-v1")
    us.install_component("exts", b"adblock,passwordmgr")
    return vm, bank, ks, us


class TestEvidenceEncoding:
    def test_distinct_shapes_distinct_encodings(self):
        mt = EmptyEvidence()
        nonce = NonceEvidence("n", b"\x01" * 8)
        meas = MeasurementEvidence("av", "ks", "bmon", "us", b"v")
        encodings = {mt.encode(), nonce.encode(), meas.encode()}
        assert len(encodings) == 3

    def test_sequence_vs_parallel_distinct(self):
        left, right = EmptyEvidence(), NonceEvidence("n", b"x")
        assert SequenceEvidence(left, right).encode() != ParallelEvidence(
            left, right
        ).encode()

    def test_pair_encoding_unambiguous(self):
        # (A,B) must not collide with a differently-split (A', B').
        a = MeasurementEvidence("m", "p", "t", "q", b"xy")
        b = EmptyEvidence()
        ab = SequenceEvidence(a, b).encode()
        ba = SequenceEvidence(b, a).encode()
        assert ab != ba

    def test_walk_and_find(self):
        meas = MeasurementEvidence("av", "ks", "bmon", "us", b"v")
        signed = SignedEvidence(meas, "ks", b"\x00" * 64)
        tree = SequenceEvidence(signed, EmptyEvidence())
        # seq, signed, measurement, its mt prior, and the right mt.
        assert len(list(tree.walk())) == 5
        assert tree.find_measurements() == (meas,)
        assert tree.find_signatures() == (signed,)

    def test_hash_evidence_matches(self):
        inner = MeasurementEvidence("av", "ks", "bmon", "us", b"v")
        hashed = HashEvidence.of(inner, "switch")
        assert HashEvidence.matches(inner, hashed.digest_value)
        assert not HashEvidence.matches(EmptyEvidence(), hashed.digest_value)

    def test_summaries_readable(self):
        meas = MeasurementEvidence("av", "ks", "bmon", "us", b"v")
        assert "av" in meas.summary()
        assert "sig_ks" in SignedEvidence(meas, "ks", b"\x00" * 64).summary()


class TestVmExecution:
    def test_measurement_produces_component_digest(self):
        vm, _, _, us = banking_vm()
        evidence = vm.execute(parse_phrase("bmon us exts"), at_place="us")
        assert isinstance(evidence, MeasurementEvidence)
        assert evidence.value == digest(
            b"adblock,passwordmgr", domain="component-measurement"
        )

    def test_at_changes_place(self):
        vm, _, _, _ = banking_vm()
        evidence = vm.execute(parse_phrase("@ks [av us bmon]"), at_place="bank")
        assert evidence.place == "ks"

    def test_sign_verifies_against_place_key(self):
        vm, _, ks, _ = banking_vm()
        evidence = vm.execute(parse_phrase("@ks [av us bmon -> !]"), at_place="bank")
        assert isinstance(evidence, SignedEvidence)
        assert ks.keypair.verify_key.verify(
            evidence.signed_payload(), evidence.signature
        )

    def test_hash_shrinks_evidence(self):
        vm, _, _, _ = banking_vm()
        full = vm.execute(parse_phrase("@ks [av us bmon]"), at_place="bank")
        hashed = vm.execute(parse_phrase("@ks [av us bmon -> #]"), at_place="bank")
        assert isinstance(hashed, HashEvidence)
        assert HashEvidence.matches(full, hashed.digest_value)

    def test_branch_evidence_shapes(self):
        vm, _, _, _ = banking_vm()
        par = vm.execute(
            parse_phrase("@ks [av us bmon] -~- @us [bmon us exts]"), "bank"
        )
        assert isinstance(par, ParallelEvidence)
        seq_ev = vm.execute(
            parse_phrase("@ks [av us bmon] -<- @us [bmon us exts]"), "bank"
        )
        assert isinstance(seq_ev, SequenceEvidence)

    def test_branch_split_semantics(self):
        vm, _, _, _ = banking_vm()
        request = parse_request("*bank <n> : (_ +~- _)")
        evidence = vm.execute_request(request, {"n": b"\x42" * 8})
        # Left arm got the nonce; right arm got mt.
        assert isinstance(evidence, ParallelEvidence)
        assert isinstance(evidence.left, NonceEvidence)
        assert isinstance(evidence.right, EmptyEvidence)

    def test_nonce_bound_into_evidence(self):
        vm, _, _, _ = banking_vm()
        request = parse_request("*bank <n> : @ks [av us bmon -> !]")
        evidence = vm.execute_request(request, {"n": b"\x42" * 8})
        nonces = [e for e in evidence.walk() if isinstance(e, NonceEvidence)]
        assert len(nonces) == 1
        assert nonces[0].value == b"\x42" * 8

    def test_missing_nonce_rejected(self):
        vm, _, _, _ = banking_vm()
        request = parse_request("*bank <n> : @ks [av us bmon]")
        with pytest.raises(PolicyError, match="missing"):
            vm.execute_request(request)

    def test_corrupt_target_changes_measurement(self):
        vm, _, _, us = banking_vm()
        clean = vm.execute(parse_phrase("bmon us exts"), "us")
        us.corrupt_component("exts", b"keylogger")
        corrupt = vm.execute(parse_phrase("bmon us exts"), "us")
        assert clean.value != corrupt.value

    def test_corrupt_measurer_lies(self):
        vm, _, _, us = banking_vm()
        honest = vm.execute(parse_phrase("bmon us exts"), "us")
        us.corrupt_component("exts", b"keylogger")
        us.corrupt_component("bmon", b"evil-bmon")
        lying = vm.execute(parse_phrase("bmon us exts"), "us")
        # The corrupt bmon reports the golden digest — identical to the
        # honest measurement of the clean component.
        assert lying.value == honest.value

    def test_repair_restores(self):
        vm, _, _, us = banking_vm()
        us.corrupt_component("bmon")
        assert us.is_corrupt("bmon")
        us.repair_component("bmon")
        assert not us.is_corrupt("bmon")

    def test_unknown_place_rejected(self):
        vm, _, _, _ = banking_vm()
        with pytest.raises(PolicyError, match="no place"):
            vm.execute(parse_phrase("@mars [av us bmon]"), "bank")

    def test_unknown_component_rejected(self):
        vm, _, _, _ = banking_vm()
        with pytest.raises(PolicyError, match="component"):
            vm.execute(parse_phrase("av us ghost"), "ks")

    def test_unknown_service_asp_rejected(self):
        vm, _, _, _ = banking_vm()
        with pytest.raises(PolicyError, match="no ASP"):
            vm.execute(parse_phrase("appraise"), "bank")

    def test_custom_asp_invoked(self):
        vm, bank, _, _ = banking_vm()
        bank.asps["appraise"] = lambda place, t, tp, args, prior: CLEAN_REPORT
        evidence = vm.execute(parse_phrase("appraise"), "bank")
        assert evidence.value == CLEAN_REPORT

    def test_events_recorded_in_order(self):
        vm, _, _, _ = banking_vm()
        vm.execute(parse_phrase("@ks [av us bmon -> !]"), "bank")
        kinds = [e.kind for e in vm.events]
        assert kinds == ["req", "measure", "sign", "rpy"]

    def test_duplicate_place_rejected(self):
        vm, _, _, _ = banking_vm()
        with pytest.raises(PolicyError):
            vm.register(Place("bank"))


class TestManifest:
    def make_manifest(self):
        manifest = Manifest()
        manifest.add(PlaceSpec("bank", peers=frozenset({"ks", "us"})))
        manifest.add(PlaceSpec("ks", asps=frozenset({"av"})))
        manifest.add(PlaceSpec("us", asps=frozenset({"bmon"}), can_sign=False))
        return manifest

    def test_executable_phrase_passes(self):
        manifest = self.make_manifest()
        phrase = parse_phrase("@ks [av us bmon -> !]")
        assert manifest.check_executable(phrase, "bank") == []

    def test_missing_asp_reported(self):
        manifest = self.make_manifest()
        phrase = parse_phrase("@ks [bmon us exts]")
        violations = manifest.check_executable(phrase, "bank")
        assert any("bmon" in v for v in violations)

    def test_cannot_sign_reported(self):
        manifest = self.make_manifest()
        phrase = parse_phrase("@us [bmon us exts -> !]")
        violations = manifest.check_executable(phrase, "bank")
        assert any("cannot sign" in v for v in violations)

    def test_unknown_dispatch_target(self):
        manifest = self.make_manifest()
        phrase = parse_phrase("@us [@ks [av us bmon]]")
        violations = manifest.check_executable(phrase, "bank")
        assert any("dispatch" in v for v in violations)

    def test_unknown_place(self):
        manifest = self.make_manifest()
        violations = manifest.check_executable(parse_phrase("av us bmon"), "mars")
        assert violations == ["unknown place 'mars'"]

    def test_duplicate_place_rejected(self):
        manifest = self.make_manifest()
        with pytest.raises(PolicyError):
            manifest.add(PlaceSpec("bank"))
