"""Unit and property tests for the TLV codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import CodecError
from repro.util.tlv import Tlv, TlvCodec

tlv_strategy = st.builds(
    Tlv,
    type=st.integers(min_value=0, max_value=255),
    value=st.binary(max_size=256),
)


class TestTlvElement:
    def test_encode_layout(self):
        assert Tlv(7, b"ab").encode() == b"\x07\x00\x02ab"

    def test_empty_value(self):
        assert Tlv(0, b"").encode() == b"\x00\x00\x00"

    def test_type_out_of_range(self):
        with pytest.raises(CodecError):
            Tlv(256, b"")
        with pytest.raises(CodecError):
            Tlv(-1, b"")

    def test_value_too_long(self):
        with pytest.raises(CodecError):
            Tlv(0, b"x" * 65536)


class TestTlvCodec:
    def test_round_trip_two_elements(self):
        elements = [Tlv(1, b"abc"), Tlv(2, b"")]
        assert TlvCodec.decode(TlvCodec.encode(elements)) == elements

    def test_decode_empty_stream(self):
        assert TlvCodec.decode(b"") == []

    def test_truncated_header(self):
        with pytest.raises(CodecError, match="truncated TLV header"):
            TlvCodec.decode(b"\x01\x00")

    def test_truncated_value(self):
        with pytest.raises(CodecError, match="truncated TLV value"):
            TlvCodec.decode(b"\x01\x00\x05ab")

    def test_trailing_garbage_is_truncation(self):
        good = Tlv(1, b"x").encode()
        with pytest.raises(CodecError):
            TlvCodec.decode(good + b"\x01")

    def test_nested_tlvs(self):
        inner = TlvCodec.encode([Tlv(10, b"deep")])
        outer = TlvCodec.decode(TlvCodec.encode([Tlv(1, inner)]))
        assert TlvCodec.decode(outer[0].value) == [Tlv(10, b"deep")]

    @given(st.lists(tlv_strategy, max_size=20))
    def test_round_trip_property(self, elements):
        assert TlvCodec.decode(TlvCodec.encode(elements)) == elements

    @given(st.lists(tlv_strategy, min_size=1, max_size=10))
    def test_iter_decode_is_lazy_but_complete(self, elements):
        encoded = TlvCodec.encode(elements)
        assert list(TlvCodec.iter_decode(encoded)) == elements
