"""Tests for id allocation and the simulated clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.clock import SimClock
from repro.util.ids import IdAllocator, short_id


class TestIdAllocator:
    def test_sequential_within_namespace(self):
        alloc = IdAllocator()
        assert [alloc.next("a") for _ in range(3)] == [1, 2, 3]

    def test_namespaces_independent(self):
        alloc = IdAllocator()
        alloc.next("a")
        assert alloc.next("b") == 1

    def test_custom_start(self):
        assert IdAllocator(start=100).next() == 100

    def test_peek_does_not_allocate(self):
        alloc = IdAllocator()
        assert alloc.peek() == 1
        assert alloc.peek() == 1
        assert alloc.next() == 1

    def test_reset(self):
        alloc = IdAllocator()
        alloc.next("x")
        alloc.reset("x")
        assert alloc.next("x") == 1


class TestShortId:
    def test_deterministic(self):
        assert short_id(b"abc") == short_id(b"abc")

    def test_distinct_content_distinct_id(self):
        assert short_id(b"abc") != short_id(b"abd")

    def test_length_respected(self):
        assert len(short_id(b"abc", length=12)) == 12

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            short_id(b"x", length=0)
        with pytest.raises(ValueError):
            short_id(b"x", length=65)

    @given(st.binary(max_size=64), st.integers(min_value=1, max_value=64))
    def test_always_hex(self, content, length):
        token = short_id(content, length)
        assert len(token) == length
        int(token, 16)  # must parse as hex


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_forward_only(self):
        clock = SimClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=20))
    def test_monotonic(self, deltas):
        clock = SimClock()
        last = clock.now
        for delta in deltas:
            clock.advance(delta)
            assert clock.now >= last
            last = clock.now
