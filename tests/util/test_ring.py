"""Tests for the counted-eviction ring buffer."""

import pytest

from repro.util.ring import RingBuffer


class TestRingBuffer:
    def test_append_under_capacity(self):
        ring = RingBuffer(3)
        assert ring.append(1) is False
        assert ring.append(2) is False
        assert ring.to_list() == [1, 2]
        assert ring.dropped == 0

    def test_eviction_keeps_newest_and_counts(self):
        ring = RingBuffer(3)
        for i in range(7):
            ring.append(i)
        assert ring.to_list() == [4, 5, 6]
        assert ring.dropped == 4
        assert len(ring) == 3

    def test_append_returns_true_on_eviction(self):
        ring = RingBuffer(1)
        assert ring.append("a") is False
        assert ring.append("b") is True
        assert ring.to_list() == ["b"]

    def test_capacity_property(self):
        assert RingBuffer(5).capacity == 5

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)
        with pytest.raises(ValueError):
            RingBuffer(-1)

    def test_iteration_and_indexing(self):
        ring = RingBuffer(4)
        for i in range(4):
            ring.append(i)
        assert list(ring) == [0, 1, 2, 3]
        assert ring[0] == 0
        assert ring[-1] == 3
        assert ring[1:3] == [1, 2]

    def test_equality_with_list_tuple_and_ring(self):
        ring = RingBuffer(3)
        ring.append(1)
        ring.append(2)
        assert ring == [1, 2]
        assert ring == (1, 2)
        other = RingBuffer(9)
        other.append(1)
        other.append(2)
        assert ring == other  # capacity is not part of equality
        assert ring != [2, 1]

    def test_clear_empties_but_keeps_drop_count(self):
        ring = RingBuffer(2)
        for i in range(5):
            ring.append(i)
        dropped = ring.dropped
        ring.clear()
        assert len(ring) == 0
        assert ring.dropped == dropped

    def test_repr_mentions_state(self):
        ring = RingBuffer(2)
        ring.append(1)
        text = repr(ring)
        assert "capacity=2" in text
        assert "dropped=0" in text
