"""Unit and property tests for repro.util.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bytes_to_int,
    checksum16,
    hexdump,
    int_to_bytes,
    mask_for_prefix,
)


class TestIntBytes:
    def test_round_trip_simple(self):
        assert bytes_to_int(int_to_bytes(0x1234, 2)) == 0x1234

    def test_zero_width_zero_value(self):
        assert int_to_bytes(0, 0) == b""

    def test_big_endian_order(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1, 4)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(0, -1)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_round_trip_property(self, value):
        assert bytes_to_int(int_to_bytes(value, 8)) == value

    @given(st.binary(min_size=1, max_size=16))
    def test_decode_encode_round_trip(self, data):
        assert int_to_bytes(bytes_to_int(data), len(data)) == data


class TestMaskForPrefix:
    def test_slash_24(self):
        assert mask_for_prefix(24) == 0xFFFFFF00

    def test_slash_zero_is_zero(self):
        assert mask_for_prefix(0) == 0

    def test_slash_32_is_full(self):
        assert mask_for_prefix(32) == 0xFFFFFFFF

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mask_for_prefix(33)
        with pytest.raises(ValueError):
            mask_for_prefix(-1)

    @given(st.integers(min_value=0, max_value=32))
    def test_popcount_equals_prefix(self, prefix):
        assert bin(mask_for_prefix(prefix)).count("1") == prefix

    @given(st.integers(min_value=1, max_value=32))
    def test_masks_nest(self, prefix):
        longer = mask_for_prefix(prefix)
        shorter = mask_for_prefix(prefix - 1)
        assert longer & shorter == shorter


class TestChecksum16:
    def test_known_vector(self):
        # Classic RFC 1071 worked example.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert checksum16(data) == 0x220D

    def test_odd_length_padded(self):
        assert checksum16(b"\xff") == checksum16(b"\xff\x00")

    def test_all_zero(self):
        assert checksum16(b"\x00\x00") == 0xFFFF

    @given(st.binary(min_size=0, max_size=64))
    def test_checksum_in_range(self, data):
        assert 0 <= checksum16(data) <= 0xFFFF

    @given(st.binary(min_size=2, max_size=64).filter(lambda d: len(d) % 2 == 0))
    def test_inserting_checksum_validates(self, data):
        # A message whose checksum field holds checksum16(rest) sums to 0.
        csum = checksum16(data)
        whole = data + csum.to_bytes(2, "big")
        assert checksum16(whole) == 0


class TestHexdump:
    def test_empty(self):
        assert hexdump(b"") == ""

    def test_ascii_rendered(self):
        out = hexdump(b"hello")
        assert "hello" in out
        assert "68 65 6c 6c 6f" in out

    def test_non_printable_dotted(self):
        assert hexdump(b"\x00\x01").endswith("..")

    def test_multi_line(self):
        out = hexdump(bytes(range(40)), width=16)
        assert len(out.splitlines()) == 3
