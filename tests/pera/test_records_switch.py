"""Tests for hop records and the PERA switch on a simulated network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import HashChain, digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pera.records import (
    HopRecord,
    decode_record_stack,
    encode_record_stack,
)
from repro.pera.sampling import SamplingMode, SamplingSpec
from repro.pera.switch import PeraSwitch
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.util.errors import CodecError


class TestHopRecord:
    def make_record(self, **overrides):
        defaults = dict(
            place="s1",
            measurements=(
                (InertiaClass.HARDWARE, b"\x01" * 32),
                (InertiaClass.PROGRAM, b"\x02" * 32),
            ),
            sequence=7,
            chain_head=b"\x03" * 32,
            packet_digest=b"\x04" * 32,
        )
        defaults.update(overrides)
        return HopRecord(**defaults)

    def test_round_trip(self):
        keys = KeyPair.generate("s1")
        record = self.make_record().sign_with(keys)
        assert HopRecord.decode(record.encode()) == record

    def test_minimal_round_trip(self):
        record = HopRecord(place="s1", measurements=())
        assert HopRecord.decode(record.encode()) == record

    def test_sign_verify(self):
        keys = KeyPair.generate("s1")
        anchors = KeyRegistry()
        anchors.register_pair(keys)
        record = self.make_record().sign_with(keys)
        assert record.verify(anchors)

    def test_tampered_measurement_fails_verification(self):
        keys = KeyPair.generate("s1")
        anchors = KeyRegistry()
        anchors.register_pair(keys)
        record = self.make_record().sign_with(keys)
        tampered = HopRecord(
            place=record.place,
            measurements=((InertiaClass.HARDWARE, b"\xff" * 32),)
            + record.measurements[1:],
            sequence=record.sequence,
            chain_head=record.chain_head,
            packet_digest=record.packet_digest,
            signature=record.signature,
        )
        assert not tampered.verify(anchors)

    def test_verify_with_pseudonym_signer(self):
        keys = KeyPair.generate("s1-real")
        anchors = KeyRegistry()
        anchors.register_pair(keys)
        record = self.make_record(place="pseu-abc").sign_with(keys)
        assert not record.verify(anchors)  # pseudonym has no anchor
        assert record.verify(anchors, signer="s1-real")

    def test_measurement_for(self):
        record = self.make_record()
        assert record.measurement_for(InertiaClass.HARDWARE) == b"\x01" * 32
        assert record.measurement_for(InertiaClass.TABLES) is None

    def test_stack_round_trip(self):
        records = [self.make_record(sequence=i) for i in range(3)]
        assert decode_record_stack(encode_record_stack(records)) == records

    def test_stack_skips_foreign_tlvs(self):
        from repro.util.tlv import Tlv, TlvCodec

        stack = encode_record_stack([self.make_record()])
        mixed = TlvCodec.encode([Tlv(0x77, b"policy")]) + stack
        assert len(decode_record_stack(mixed)) == 1

    def test_malformed_record_rejected(self):
        with pytest.raises(CodecError):
            HopRecord.decode(b"\x01\x00\x02ab" + b"\xff\x00\x01x")
        with pytest.raises(CodecError, match="missing place"):
            HopRecord.decode(b"")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.binary(max_size=40))
    def test_round_trip_property(self, sequence, blob):
        record = HopRecord(
            place="sw",
            measurements=((InertiaClass.TABLES, blob),),
            sequence=sequence,
        )
        assert HopRecord.decode(record.encode()) == record


def build_pera_chain(switch_count=3, config=None, out_of_band=False):
    """h-src — s1..sN — h-dst, all PERA switches, routed to h-dst."""
    topo = linear_topology(switch_count)
    if out_of_band:
        topo.add_node("appraiser", kind="host")
        topo.add_link("appraiser", 1, "s1", 9)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    appraiser_host = None
    if out_of_band:
        appraiser_host = Host("appraiser", mac=0x3, ip=ip_to_int("10.0.9.9"))
        sim.bind(appraiser_host)
    switches = []
    for i in range(1, switch_count + 1):
        switch = PeraSwitch(
            f"s{i}",
            config=config,
            appraiser_node="appraiser" if out_of_band else None,
            out_of_band=out_of_band,
        )
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config(
            "ctl", ipv4_forwarding_program()
        )
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)
    return sim, src, dst, switches, appraiser_host


def send_ra_packet(src, dst, payload=b"data"):
    shim = RaShimHeader(flags=RaShimHeader.FLAG_POLICY, body=b"")
    return src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=payload, ra_shim=shim,
    )


class TestPeraSwitchInBand:
    def test_records_accumulate_along_path(self):
        sim, src, dst, switches, _ = build_pera_chain(3)
        send_ra_packet(src, dst)
        sim.run()
        assert len(dst.received_packets) == 1
        packet = dst.received_packets[0]
        records = decode_record_stack(packet.ra_shim.body)
        assert [r.place for r in records] == ["s1", "s2", "s3"]
        assert packet.ra_shim.hop_count == 3

    def test_all_signatures_verify(self):
        sim, src, dst, switches, _ = build_pera_chain(3)
        send_ra_packet(src, dst)
        sim.run()
        anchors = KeyRegistry()
        for switch in switches:
            anchors.register_pair(switch.keys)
        records = decode_record_stack(dst.received_packets[0].ra_shim.body)
        assert all(record.verify(anchors) for record in records)

    def test_non_ra_traffic_untouched(self):
        sim, src, dst, switches, _ = build_pera_chain(2)
        src.send_udp(dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
                     payload=b"plain")
        sim.run()
        packet = dst.received_packets[0]
        assert packet.ra_shim is None
        assert all(s.ra_stats.packets_attested == 0 for s in switches)

    def test_default_detail_measures_hardware_and_program(self):
        sim, src, dst, _, _ = build_pera_chain(1)
        send_ra_packet(src, dst)
        sim.run()
        record = decode_record_stack(dst.received_packets[0].ra_shim.body)[0]
        classes = {inertia for inertia, _ in record.measurements}
        assert classes == {InertiaClass.HARDWARE, InertiaClass.PROGRAM}
        assert record.chain_head is None
        assert record.packet_digest is None

    def test_chained_composition_chains(self):
        config = EvidenceConfig(composition=CompositionMode.CHAINED)
        sim, src, dst, _, _ = build_pera_chain(3, config=config)
        send_ra_packet(src, dst)
        sim.run()
        records = decode_record_stack(dst.received_packets[0].ra_shim.body)
        # Each hop's chain head extends the previous one.
        head = HashChain.GENESIS
        for record in records:
            link = digest(
                b"".join(v for _, v in record.measurements),
                domain="hop-measurements",
            )
            chain = HashChain(head=head)
            head = chain.extend(link)
            assert record.chain_head == head

    def test_traffic_path_includes_packet_digest(self):
        config = EvidenceConfig(composition=CompositionMode.TRAFFIC_PATH)
        sim, src, dst, _, _ = build_pera_chain(1, config=config)
        send_ra_packet(src, dst, payload=b"bind-me")
        sim.run()
        record = decode_record_stack(dst.received_packets[0].ra_shim.body)[0]
        assert record.packet_digest is not None

    def test_pointwise_caches_signed_records(self):
        sim, src, dst, switches, _ = build_pera_chain(1)
        for _ in range(5):
            send_ra_packet(src, dst)
        sim.run()
        stats = switches[0].ra_stats
        assert stats.packets_attested == 5
        assert stats.signatures_produced == 1  # one real signing
        assert stats.records_from_cache == 4

    def test_chained_signs_every_packet(self):
        config = EvidenceConfig(composition=CompositionMode.CHAINED)
        sim, src, dst, switches, _ = build_pera_chain(1, config=config)
        for _ in range(5):
            send_ra_packet(src, dst)
        sim.run()
        assert switches[0].ra_stats.signatures_produced == 5

    def test_sampling_skips_but_counts_hops(self):
        config = EvidenceConfig(
            sampling=SamplingSpec(mode=SamplingMode.ONE_IN_N, n=2)
        )
        sim, src, dst, switches, _ = build_pera_chain(1, config=config)
        for _ in range(4):
            send_ra_packet(src, dst)
        sim.run()
        stats = switches[0].ra_stats
        assert stats.packets_attested == 2
        assert stats.packets_skipped_by_sampling == 2
        # Every packet still carries the hop count.
        assert all(
            p.ra_shim.hop_count == 1 for p in dst.received_packets
        )

    def test_evidence_gate_drops(self):
        sim, src, dst, switches, _ = build_pera_chain(1)
        switches[0].evidence_gate = lambda ctx, records: len(records) > 0
        send_ra_packet(src, dst)  # no prior records -> gated
        sim.run()
        assert dst.received_packets == []
        assert switches[0].ra_stats.gated_drops == 1

    def test_pseudonymous_identity(self):
        sim, src, dst, switches, _ = build_pera_chain(1)
        switches[0].pseudonym = "pseu-1234"
        send_ra_packet(src, dst)
        sim.run()
        record = decode_record_stack(dst.received_packets[0].ra_shim.body)[0]
        assert record.place == "pseu-1234"
        anchors = KeyRegistry()
        anchors.register_pair(switches[0].keys)
        assert record.verify(anchors, signer="s1")

    def test_chained_records_carry_ingress_port(self):
        """Paper UC1: evidence indicates the packet 'reached switch S1
        on a specific network port'."""
        config = EvidenceConfig(composition=CompositionMode.CHAINED)
        sim, src, dst, _, _ = build_pera_chain(2, config=config)
        send_ra_packet(src, dst)
        sim.run()
        records = decode_record_stack(dst.received_packets[0].ra_shim.body)
        assert [r.ingress_port for r in records] == [1, 1]

    def test_cached_records_omit_packet_scoped_fields(self):
        """A cached (reusable) record must not pin an ingress port."""
        sim, src, dst, switches, _ = build_pera_chain(1)  # pointwise
        send_ra_packet(src, dst)
        sim.run()
        record = decode_record_stack(dst.received_packets[0].ra_shim.body)[0]
        assert record.ingress_port is None

    def test_cache_invalidation_on_state_change(self):
        sim, src, dst, switches, _ = build_pera_chain(1)
        send_ra_packet(src, dst)
        sim.run()
        switches[0].notify_state_change(InertiaClass.PROGRAM)
        send_ra_packet(src, dst)
        sim.run()
        assert switches[0].ra_stats.signatures_produced == 2

    def test_ra_cost_tracked(self):
        sim, src, dst, switches, _ = build_pera_chain(1)
        send_ra_packet(src, dst)
        sim.run()
        assert switches[0].ra_cost > 0


class TestPeraSwitchOutOfBand:
    def test_evidence_reaches_appraiser_via_control(self):
        sim, src, dst, switches, appraiser = build_pera_chain(
            2, out_of_band=True
        )
        send_ra_packet(src, dst)
        sim.run()
        # Dataplane packet arrives without accumulated records...
        packet = dst.received_packets[0]
        assert decode_record_stack(packet.ra_shim.body) == []
        assert packet.ra_shim.hop_count == 2
        # ...while records went out of band.
        assert len(appraiser.control_received) == 2
        record = appraiser.control_received[0][2]
        assert isinstance(record, HopRecord)

    def test_out_of_band_requires_appraiser(self):
        from repro.util.errors import PipelineError

        sim, src, dst, switches, _ = build_pera_chain(1)
        switches[0].out_of_band = True  # appraiser_node is None
        send_ra_packet(src, dst)
        with pytest.raises(PipelineError, match="out-of-band"):
            sim.run()


class TestCryptoCallCounts:
    """Pin the cache's crypto economics with raw Ed25519 call counts.

    The evidence-cache hit path must be crypto-free: a pointwise switch
    signs once on the miss and then serves every later packet from the
    cache without signing *or* re-verifying the cached record (the
    record was signed locally; appraisal is the verifier's job).
    """

    @pytest.fixture
    def crypto_calls(self, monkeypatch):
        from repro.crypto import ed25519

        calls = {"sign": 0, "verify": 0}
        real_sign = ed25519.SigningKey.sign
        real_verify = ed25519.VerifyKey.verify

        def counting_sign(self, message):
            calls["sign"] += 1
            return real_sign(self, message)

        def counting_verify(self, message, signature):
            calls["verify"] += 1
            return real_verify(self, message, signature)

        monkeypatch.setattr(ed25519.SigningKey, "sign", counting_sign)
        monkeypatch.setattr(ed25519.VerifyKey, "verify", counting_verify)
        return calls

    def test_cache_hit_path_does_no_crypto(self, crypto_calls):
        sim, src, dst, switches, _ = build_pera_chain(1)  # pointwise
        for _ in range(5):
            send_ra_packet(src, dst)
        sim.run()
        stats = switches[0].ra_stats
        assert stats.records_from_cache == 4
        assert crypto_calls["sign"] == 1  # the miss signs once...
        assert crypto_calls["verify"] == 0  # ...and no hit re-verifies

    def test_batched_mode_signs_once_per_epoch(self, crypto_calls):
        from repro.pera.config import BatchingSpec

        config = EvidenceConfig(
            composition=CompositionMode.CHAINED,
            batching=BatchingSpec(max_records=4, max_delay_s=0.0),
        )
        sim, src, dst, switches, _ = build_pera_chain(1, config=config)
        for _ in range(8):
            send_ra_packet(src, dst)
        sim.run()
        assert len(dst.received_packets) == 8
        assert crypto_calls["sign"] == 2  # 8 packets, 2 epoch roots
        assert crypto_calls["verify"] == 0
