"""Tests for the measurement engine, evidence cache and sampler."""

import pytest

from repro.net.headers import ip_to_int
from repro.net.packet import Packet
from repro.pera.cache import EvidenceCache
from repro.pera.inertia import DEFAULT_TTLS, InertiaClass
from repro.pera.measurement import MeasurementEngine
from repro.pera.sampling import Sampler, SamplingMode, SamplingSpec
from repro.pisa.pipeline import PacketContext, Pipeline
from repro.pisa.programs import firewall_program, ipv4_forwarding_program
from repro.pisa.runtime import P4Runtime, TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.util.clock import SimClock
from repro.util.errors import ConfigError, PipelineError


def make_ctx():
    packet = Packet.udp_packet(
        src_mac=1, dst_mac=2, src_ip=ip_to_int("10.0.0.1"),
        dst_ip=ip_to_int("10.0.1.1"), src_port=1, dst_port=2, payload=b"x",
    )
    return PacketContext.from_packet(packet, ingress_port=1)


class TestMeasurementEngine:
    def test_hardware_stable(self):
        engine = MeasurementEngine(b"serial-1")
        pipeline = Pipeline(ipv4_forwarding_program())
        a = engine.measure(InertiaClass.HARDWARE, pipeline)
        b = engine.measure(InertiaClass.HARDWARE, pipeline)
        assert a == b

    def test_different_hardware_differs(self):
        pipeline = Pipeline(ipv4_forwarding_program())
        a = MeasurementEngine(b"serial-1").measure(InertiaClass.HARDWARE, pipeline)
        b = MeasurementEngine(b"serial-2").measure(InertiaClass.HARDWARE, pipeline)
        assert a != b

    def test_program_swap_changes_measurement(self):
        engine = MeasurementEngine(b"s")
        a = engine.measure(
            InertiaClass.PROGRAM, Pipeline(ipv4_forwarding_program())
        )
        b = engine.measure(InertiaClass.PROGRAM, Pipeline(firewall_program()))
        assert a != b

    def test_table_write_changes_tables_measurement(self):
        pipeline = Pipeline(ipv4_forwarding_program())
        engine = MeasurementEngine(b"s")
        before = engine.measure(InertiaClass.TABLES, pipeline)
        runtime = P4Runtime("s")
        runtime.arbitrate("ctl", 1)
        runtime.pipeline = pipeline
        runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, 0, prefix_len=0),),
            action="forward", params=(1,),
        ))
        after = engine.measure(InertiaClass.TABLES, pipeline)
        assert before != after

    def test_register_write_changes_state_measurement(self):
        from repro.pisa.registers import Register

        pipeline = Pipeline(ipv4_forwarding_program())
        pipeline.add_register(Register("r", size=4))
        engine = MeasurementEngine(b"s")
        before = engine.measure(InertiaClass.PROG_STATE, pipeline)
        pipeline.registers["r"].write(0, 42)
        after = engine.measure(InertiaClass.PROG_STATE, pipeline)
        assert before != after

    def test_packet_measurement_binds_packet(self):
        engine = MeasurementEngine(b"s")
        pipeline = Pipeline(ipv4_forwarding_program())
        a = engine.measure(InertiaClass.PACKETS, pipeline, make_ctx())
        ctx2 = make_ctx()
        ctx2.payload = b"different"
        import dataclasses

        ctx2.packet = dataclasses.replace(ctx2.packet, payload=b"different")
        b = engine.measure(InertiaClass.PACKETS, pipeline, ctx2)
        assert a != b

    def test_packet_measurement_requires_ctx(self):
        engine = MeasurementEngine(b"s")
        with pytest.raises(PipelineError):
            engine.measure(InertiaClass.PACKETS, Pipeline(ipv4_forwarding_program()))

    def test_program_measurement_requires_pipeline(self):
        with pytest.raises(PipelineError):
            MeasurementEngine(b"s").measure(InertiaClass.PROGRAM, None)


class TestEvidenceCache:
    def test_miss_then_hit(self):
        cache = EvidenceCache(SimClock())
        assert cache.get(InertiaClass.PROGRAM, b"") is None
        cache.put(InertiaClass.PROGRAM, b"", "record")
        assert cache.get(InertiaClass.PROGRAM, b"") == "record"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_ttl_expiry(self):
        clock = SimClock()
        cache = EvidenceCache(clock, ttls={InertiaClass.PROGRAM: 10.0})
        cache.put(InertiaClass.PROGRAM, b"", "record")
        clock.advance(11.0)
        assert cache.get(InertiaClass.PROGRAM, b"") is None

    def test_high_inertia_outlives_low(self):
        clock = SimClock()
        cache = EvidenceCache(clock)
        cache.put(InertiaClass.HARDWARE, b"", "hw")
        cache.put(InertiaClass.TABLES, b"", "tables")
        clock.advance(DEFAULT_TTLS[InertiaClass.TABLES] + 0.1)
        assert cache.get(InertiaClass.HARDWARE, b"") == "hw"
        assert cache.get(InertiaClass.TABLES, b"") is None

    def test_packets_never_cached(self):
        cache = EvidenceCache(SimClock())
        cache.put(InertiaClass.PACKETS, b"", "record")
        assert cache.get(InertiaClass.PACKETS, b"") is None

    def test_state_digest_invalidation(self):
        cache = EvidenceCache(SimClock())
        cache.put(InertiaClass.TABLES, b"state-1", "record")
        assert cache.get(InertiaClass.TABLES, b"state-2") is None
        assert cache.stats.invalidations == 1

    def test_explicit_invalidate(self):
        cache = EvidenceCache(SimClock())
        cache.put(InertiaClass.PROGRAM, b"", "a")
        cache.put(InertiaClass.HARDWARE, b"", "b")
        cache.invalidate(InertiaClass.PROGRAM)
        assert cache.get(InertiaClass.PROGRAM, b"") is None
        assert cache.get(InertiaClass.HARDWARE, b"") == "b"
        cache.invalidate()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = EvidenceCache(SimClock())
        cache.put(InertiaClass.PROGRAM, b"", "x")
        cache.get(InertiaClass.PROGRAM, b"")
        cache.get(InertiaClass.HARDWARE, b"")
        assert cache.stats.hit_rate == 0.5


class TestSampler:
    def test_every_packet(self):
        sampler = Sampler(SamplingSpec(mode=SamplingMode.EVERY_PACKET))
        assert all(sampler.should_attest(0.0) for _ in range(5))
        assert sampler.sample_rate == 1.0

    def test_one_in_n(self):
        sampler = Sampler(SamplingSpec(mode=SamplingMode.ONE_IN_N, n=3))
        decisions = [sampler.should_attest(0.0) for _ in range(9)]
        assert decisions.count(True) == 3
        assert decisions == [False, False, True] * 3

    def test_one_in_one_is_every_packet(self):
        sampler = Sampler(SamplingSpec(mode=SamplingMode.ONE_IN_N, n=1))
        assert all(sampler.should_attest(0.0) for _ in range(3))

    def test_periodic(self):
        sampler = Sampler(SamplingSpec(mode=SamplingMode.PERIODIC, period_s=1.0))
        assert sampler.should_attest(0.0)
        assert not sampler.should_attest(0.5)
        assert sampler.should_attest(1.5)

    def test_first_of_flow(self):
        sampler = Sampler(SamplingSpec(mode=SamplingMode.FIRST_OF_FLOW))
        assert sampler.should_attest(0.0, flow_key=("a",))
        assert not sampler.should_attest(0.0, flow_key=("a",))
        assert sampler.should_attest(0.0, flow_key=("b",))

    def test_validation(self):
        with pytest.raises(ConfigError):
            SamplingSpec(mode=SamplingMode.ONE_IN_N, n=0)
        with pytest.raises(ConfigError):
            SamplingSpec(mode=SamplingMode.PERIODIC, period_s=0)
