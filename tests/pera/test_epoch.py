"""Epoch-batched signing: the batcher state machine and the switch around it.

One Merkle-root signature per epoch replaces one Ed25519 signature per
packet. These tests pin the state machine (count seal, timer seal,
flush, FIFO release, epoch numbering) and the switch integration
(in-band parking, out-of-band release, stats and audit accounting).
"""

import pytest

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.evidence.nodes import epoch_root_payload
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import BatchingSpec, CompositionMode, EvidenceConfig
from repro.pera.epoch import EpochBatcher
from repro.pera.inertia import InertiaClass
from repro.pera.records import BatchedHopRecord, HopRecord, decode_record_stack
from repro.pera.switch import PeraSwitch
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.telemetry import AuditKind, Telemetry, use_default

KEYS = KeyPair.generate("s1")


def make_record(sequence=0):
    return HopRecord(
        place="s1",
        measurements=(
            (InertiaClass.HARDWARE, b"\x01" * 32),
            (InertiaClass.PROGRAM, b"\x02" * 32),
        ),
        sequence=sequence,
    )


def anchors_for(keys=KEYS):
    registry = KeyRegistry()
    registry.register_pair(keys)
    return registry


class TestEpochBatcher:
    def build(self, max_records=4):
        return EpochBatcher(
            "s1", KEYS, BatchingSpec(max_records=max_records, max_delay_s=0.0)
        )

    def test_empty_seal_is_a_no_op(self):
        batcher = self.build()
        assert batcher.seal() is None
        assert batcher.stats.epochs_sealed == 0

    def test_seal_releases_fifo_with_valid_proofs(self):
        batcher = self.build()
        released = []
        for sequence in range(3):
            batcher.add(make_record(sequence), released.append)
        sealed = batcher.seal(reason="count")
        assert sealed is not None
        assert sealed.leaf_count == 3
        assert [r.sequence for r in released] == [0, 1, 2]
        anchors = anchors_for()
        for index, record in enumerate(released):
            assert isinstance(record, BatchedHopRecord)
            assert record.signature == b""
            assert record.epoch_id == sealed.epoch_id
            assert record.epoch_root == sealed.root
            assert record.leaf_index == index
            assert record.leaf_count == 3
            assert record.verify(anchors)

    def test_on_sealed_fires_before_any_release(self):
        batcher = self.build()
        order = []
        batcher.add(make_record(), lambda r: order.append("release"))
        batcher.add(make_record(1), lambda r: order.append("release"))
        batcher.seal(on_sealed=lambda s: order.append("sealed"))
        assert order == ["sealed", "release", "release"]

    def test_epoch_ids_increment_and_roots_differ(self):
        batcher = self.build()
        batcher.add(make_record(0), lambda r: None)
        first = batcher.seal()
        batcher.add(make_record(1), lambda r: None)
        second = batcher.seal()
        assert (first.epoch_id, second.epoch_id) == (1, 2)
        assert first.root != second.root

    def test_seal_if_is_a_no_op_for_a_closed_epoch(self):
        """The timer-callback shape: a timer armed for epoch N must do
        nothing once N already sealed on record count."""
        batcher = self.build()
        batcher.add(make_record(), lambda r: None)
        armed_for = batcher.epoch_id
        batcher.seal(reason="count")
        batcher.add(make_record(1), lambda r: None)
        assert batcher.seal_if(armed_for) is None
        assert batcher.open_count == 1  # epoch 2 still open
        # But the matching epoch id does seal.
        assert batcher.seal_if(batcher.epoch_id).epoch_id == 2

    def test_stats_track_seal_reasons_and_sizes(self):
        batcher = self.build()
        for sequence in range(3):
            batcher.add(make_record(sequence), lambda r: None)
        batcher.seal(reason="count")
        batcher.add(make_record(3), lambda r: None)
        batcher.seal(reason="timer")
        batcher.add(make_record(4), lambda r: None)
        batcher.seal()
        stats = batcher.stats
        assert stats.epochs_sealed == 3
        assert stats.records_batched == 5
        assert stats.sealed_on_count == 1
        assert stats.sealed_on_timer == 1
        assert stats.sealed_on_flush == 1
        assert stats.largest_epoch == 3

    def test_root_signature_binds_place_epoch_root_and_count(self):
        batcher = self.build()
        batcher.add(make_record(), lambda r: None)
        sealed = batcher.seal()
        verify_key = KEYS.verify_key
        good = epoch_root_payload("s1", sealed.epoch_id, sealed.root, 1)
        assert verify_key.verify(good, sealed.root_signature)
        # Any change of scope — another switch, epoch, or size — breaks it.
        for forged in (
            epoch_root_payload("s2", sealed.epoch_id, sealed.root, 1),
            epoch_root_payload("s1", sealed.epoch_id + 1, sealed.root, 1),
            epoch_root_payload("s1", sealed.epoch_id, sealed.root, 2),
        ):
            assert not verify_key.verify(forged, sealed.root_signature)

    def test_spec_rejects_empty_epochs(self):
        with pytest.raises(ValueError):
            BatchingSpec(max_records=0)


def build_batched_chain(spec, switch_count=1, out_of_band=False):
    """h-src — s1..sN — h-dst with chained+batched PERA switches."""
    config = EvidenceConfig(
        composition=CompositionMode.CHAINED, batching=spec
    )
    topo = linear_topology(switch_count)
    if out_of_band:
        topo.add_node("appraiser", kind="host")
        topo.add_link("appraiser", 1, "s1", 9)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    appraiser_host = None
    if out_of_band:
        appraiser_host = Host("appraiser", mac=0x3, ip=ip_to_int("10.0.9.9"))
        sim.bind(appraiser_host)
    switches = []
    for i in range(1, switch_count + 1):
        switch = PeraSwitch(
            f"s{i}",
            config=config,
            appraiser_node="appraiser" if out_of_band else None,
            out_of_band=out_of_band,
        )
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config(
            "ctl", ipv4_forwarding_program()
        )
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)
    return sim, src, dst, switches, appraiser_host


def send_ra_packet(src, dst, payload=b"data"):
    shim = RaShimHeader(flags=RaShimHeader.FLAG_POLICY, body=b"")
    return src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=payload, ra_shim=shim,
    )


class TestBatchedSwitchInBand:
    def test_count_seal_delivers_proof_bearing_records(self):
        spec = BatchingSpec(max_records=2, max_delay_s=0.0)
        sim, src, dst, switches, _ = build_batched_chain(spec)
        for _ in range(4):
            send_ra_packet(src, dst)
        sim.run()
        assert len(dst.received_packets) == 4
        anchors = anchors_for(switches[0].keys)
        epoch_ids = []
        for packet in dst.received_packets:
            (record,) = decode_record_stack(packet.ra_shim.body)
            assert isinstance(record, BatchedHopRecord)
            assert record.verify(anchors)
            epoch_ids.append(record.epoch_id)
        assert epoch_ids == [1, 1, 2, 2]
        stats = switches[0].ra_stats
        assert stats.packets_attested == 4
        assert stats.signatures_produced == 2  # one per epoch, not per packet
        assert stats.epochs_sealed == 2
        assert stats.records_batched == 4

    def test_packets_park_until_flush(self):
        spec = BatchingSpec(max_records=8, max_delay_s=0.0)
        sim, src, dst, switches, _ = build_batched_chain(spec)
        for _ in range(3):
            send_ra_packet(src, dst)
        sim.run()
        assert dst.received_packets == []  # parked: epoch still open
        switches[0].flush_epochs()
        sim.run()
        assert len(dst.received_packets) == 3
        assert switches[0].epoch_batcher.stats.sealed_on_flush == 1

    def test_timer_seals_a_partial_epoch(self):
        spec = BatchingSpec(max_records=100, max_delay_s=0.002)
        sim, src, dst, switches, _ = build_batched_chain(spec)
        for _ in range(2):
            send_ra_packet(src, dst)
        sim.run()  # runs past the timer event
        assert len(dst.received_packets) == 2
        assert switches[0].epoch_batcher.stats.sealed_on_timer == 1
        assert switches[0].ra_stats.signatures_produced == 1

    def test_release_preserves_chained_composition(self):
        """Records released from one epoch still chain across hops."""
        spec = BatchingSpec(max_records=1, max_delay_s=0.0)
        sim, src, dst, switches, _ = build_batched_chain(spec, switch_count=2)
        send_ra_packet(src, dst)
        sim.run()
        records = decode_record_stack(dst.received_packets[0].ra_shim.body)
        assert [r.place for r in records] == ["s1", "s2"]
        assert all(r.chain_head is not None for r in records)

    def test_epoch_sealed_audit_event(self):
        telemetry = Telemetry(active=True)
        previous = use_default(telemetry)
        try:
            spec = BatchingSpec(max_records=2, max_delay_s=0.0)
            sim, src, dst, switches, _ = build_batched_chain(spec)
            for _ in range(2):
                send_ra_packet(src, dst)
            sim.run()
        finally:
            use_default(previous)
        sealed = [
            e for e in telemetry.audit.events
            if e.kind == AuditKind.EPOCH_SEALED
        ]
        assert len(sealed) == 1
        assert sealed[0].actor == "s1"
        assert sealed[0].detail["records"] == 2
        assert sealed[0].detail["reason"] == "count"
        made = [
            e for e in telemetry.audit.events
            if e.kind == AuditKind.SIGNATURE_MADE
        ]
        assert len(made) == 1  # the root signature, not two per-packet ones
        assert made[0].detail["epoch"] == 1


class TestBatchedSwitchOutOfBand:
    def test_records_reach_appraiser_after_seal(self):
        spec = BatchingSpec(max_records=2, max_delay_s=0.0)
        sim, src, dst, switches, appraiser = build_batched_chain(
            spec, out_of_band=True
        )
        for _ in range(2):
            send_ra_packet(src, dst)
        sim.run()
        # Dataplane packets are NOT parked out of band: the hop count
        # bumps immediately and the shim stays empty.
        assert len(dst.received_packets) == 2
        assert all(
            p.ra_shim.hop_count == 1 and decode_record_stack(p.ra_shim.body) == []
            for p in dst.received_packets
        )
        assert len(appraiser.control_received) == 2
        anchors = anchors_for(switches[0].keys)
        for _, sender, record in appraiser.control_received:
            assert sender == "s1"
            assert isinstance(record, BatchedHopRecord)
            assert record.verify(anchors)

    def test_open_epoch_holds_oob_records_until_flush(self):
        spec = BatchingSpec(max_records=8, max_delay_s=0.0)
        sim, src, dst, switches, appraiser = build_batched_chain(
            spec, out_of_band=True
        )
        send_ra_packet(src, dst)
        sim.run()
        assert len(dst.received_packets) == 1  # packet is not delayed
        assert appraiser.control_received == []  # evidence is
        switches[0].flush_epochs()
        sim.run()
        assert len(appraiser.control_received) == 1
