"""Copland abstract syntax.

Phrases (paper §4.2, after Helble et al. 2021)::

    C ::= asp place target         -- measurement ("av us bmon")
        | service(args)            -- non-measurement ASP (appraise, store...)
        | @place [C]               -- run C at place
        | C -> C                   -- linear: evidence of left feeds right
        | C (l)<(r) C              -- branch sequential (left then right)
        | C (l)~(r) C              -- branch parallel (concurrent)
        | !                        -- sign accrued evidence
        | #                        -- hash accrued evidence
        | _                        -- copy (identity)
        | {}                       -- null (discard evidence)

``l`` and ``r`` are the evidence-splitting annotations: ``+`` passes
the accrued evidence into that arm, ``-`` passes the empty evidence.
A request ``*R <params> : C`` names the relying party ``R`` that asks
for phrase ``C``, with optional parameters (e.g. a nonce name).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.errors import PolicyError


class Phrase:
    """Base class of Copland phrases."""

    def places(self) -> Tuple[str, ...]:
        """All place names mentioned in the phrase, in first-use order."""
        seen = []

        def visit(phrase: "Phrase") -> None:
            if isinstance(phrase, Measure):
                if phrase.target_place not in seen:
                    seen.append(phrase.target_place)
            elif isinstance(phrase, At):
                if phrase.place not in seen:
                    seen.append(phrase.place)
                visit(phrase.phrase)
            elif isinstance(phrase, Linear):
                visit(phrase.left)
                visit(phrase.right)
            elif isinstance(phrase, (BranchSeq, BranchPar)):
                visit(phrase.left)
                visit(phrase.right)

        visit(self)
        return tuple(seen)


@dataclass(frozen=True)
class Measure(Phrase):
    """``asp place target``: ``asp`` measures ``target`` running at
    ``target_place`` (the paper's ``av us bmon``)."""

    asp: str
    target_place: str
    target: str

    def __repr__(self) -> str:
        return f"{self.asp} {self.target_place} {self.target}"


@dataclass(frozen=True)
class Asp(Phrase):
    """A non-measurement attestation service call: ``appraise``,
    ``certify(n)``, ``store(n)``, ``retrieve(n)``, ``attest(X)``..."""

    name: str
    args: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        if self.args:
            return f"{self.name}({', '.join(self.args)})"
        return self.name


@dataclass(frozen=True)
class At(Phrase):
    """``@place [C]``: request ``C`` at a (possibly remote) place."""

    place: str
    phrase: Phrase

    def __repr__(self) -> str:
        return f"@{self.place} [{self.phrase!r}]"


@dataclass(frozen=True)
class Linear(Phrase):
    """``C -> D``: evidence produced by C flows into D."""

    left: Phrase
    right: Phrase

    def __repr__(self) -> str:
        return f"{self.left!r} -> {self.right!r}"


def _check_split(split: str) -> None:
    if split not in ("+", "-"):
        raise PolicyError(f"evidence split annotation must be '+' or '-', got {split!r}")


@dataclass(frozen=True)
class BranchSeq(Phrase):
    """``C (l)<(r) D``: run C then D, splitting incoming evidence.

    With ``chain=True`` (the paper's ``>`` spelling, used in its
    expression (3)), the right arm receives the *left arm's output*
    instead of a split of the incoming evidence — this is how the
    switch's signed evidence reaches the appraiser while the final
    evidence still records both arms as a sequential pair.
    """

    left: Phrase
    right: Phrase
    left_split: str = "+"
    right_split: str = "+"
    chain: bool = False

    def __post_init__(self) -> None:
        _check_split(self.left_split)
        _check_split(self.right_split)

    def __repr__(self) -> str:
        symbol = ">" if self.chain else "<"
        return (
            f"({self.left!r} {self.left_split}{symbol}{self.right_split} "
            f"{self.right!r})"
        )


@dataclass(frozen=True)
class BranchPar(Phrase):
    """``C (l)~(r) D``: run C and D concurrently, splitting evidence."""

    left: Phrase
    right: Phrase
    left_split: str = "+"
    right_split: str = "+"

    def __post_init__(self) -> None:
        _check_split(self.left_split)
        _check_split(self.right_split)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.left_split}~{self.right_split} {self.right!r})"


@dataclass(frozen=True)
class Sign(Phrase):
    """``!``: sign the evidence accrued so far, at the current place."""

    def __repr__(self) -> str:
        return "!"


@dataclass(frozen=True)
class Hash(Phrase):
    """``#``: hash the evidence accrued so far."""

    def __repr__(self) -> str:
        return "#"


@dataclass(frozen=True)
class Copy(Phrase):
    """``_``: pass evidence through unchanged."""

    def __repr__(self) -> str:
        return "_"


@dataclass(frozen=True)
class Null(Phrase):
    """``{}``: discard accrued evidence."""

    def __repr__(self) -> str:
        return "{}"


@dataclass(frozen=True)
class Request:
    """``* R <params> : C`` — relying party R requests phrase C."""

    relying_party: str
    phrase: Phrase
    params: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        params = f" <{', '.join(self.params)}>" if self.params else ""
        return f"*{self.relying_party}{params} : {self.phrase!r}"
