"""Copland: a language for layered remote attestation protocols.

Implements the Copland phrase language the paper builds on (§4.2),
following its published semantics (Helble et al. 2021 "Flexible
Mechanisms for Remote Attestation"; Ramsdell et al. 2019 "Orchestrating
Layered Attestations"):

- :mod:`repro.copland.ast` — phrases: measurements, ``@place``,
  linear (``→``), branch-sequential (``<``), branch-parallel (``~``)
  with evidence-splitting annotations, ``!`` (sign), ``#`` (hash).
- :mod:`repro.copland.parser` — the paper's concrete syntax.
- :mod:`repro.copland.evidence` — evidence terms (views over the
  unified :mod:`repro.evidence` substrate).
- :mod:`repro.copland.manifest` — place manifests: which ASPs and keys
  live where (executability checking).
- :mod:`repro.copland.vm` — the attestation virtual machine: executes
  a phrase across places, producing concrete, signed evidence.
- :mod:`repro.copland.events` — event semantics: the partial order of
  measurement/signature events a phrase denotes.
- :mod:`repro.copland.adversary` — corrupt/repair adversary analysis
  (the §4.2 attack on parallel composition, Rowe et al. 2021 style).
"""

from repro.copland.ast import (
    Phrase,
    Measure,
    Asp,
    At,
    Linear,
    BranchSeq,
    BranchPar,
    Sign,
    Hash,
    Copy,
    Null,
    Request,
)
from repro.copland.parser import parse_phrase, parse_request
from repro.evidence import (
    Evidence,
    EmptyEvidence,
    NonceEvidence,
    MeasurementEvidence,
    SignedEvidence,
    HashEvidence,
    SequenceEvidence,
    ParallelEvidence,
)
from repro.copland.manifest import Manifest, PlaceSpec
from repro.copland.vm import CoplandVM, AspImplementation, Place
from repro.copland.events import phrase_events, Event, EventKind, event_order
from repro.copland.adversary import (
    AdversaryTier,
    AttackStrategy,
    analyze_measurement_protocol,
)
from repro.copland.types import (
    EvidenceType,
    infer_evidence_type,
    evidence_inhabits,
    count_signatures,
    signing_places,
)

__all__ = [
    "Phrase",
    "Measure",
    "Asp",
    "At",
    "Linear",
    "BranchSeq",
    "BranchPar",
    "Sign",
    "Hash",
    "Copy",
    "Null",
    "Request",
    "parse_phrase",
    "parse_request",
    "Evidence",
    "EmptyEvidence",
    "NonceEvidence",
    "MeasurementEvidence",
    "SignedEvidence",
    "HashEvidence",
    "SequenceEvidence",
    "ParallelEvidence",
    "Manifest",
    "PlaceSpec",
    "CoplandVM",
    "AspImplementation",
    "Place",
    "phrase_events",
    "Event",
    "EventKind",
    "event_order",
    "AdversaryTier",
    "AttackStrategy",
    "analyze_measurement_protocol",
    "EvidenceType",
    "infer_evidence_type",
    "evidence_inhabits",
    "count_signatures",
    "signing_places",
]
