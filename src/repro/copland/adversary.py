"""Corrupt/repair adversary analysis of measurement protocols.

Reproduces the §4.2 analysis the paper adapts from Ramsdell et al. and
Rowe et al.: an active adversary who controls some places can corrupt
and repair components between protocol events. Whether an attestation
protocol resists depends on how its events are *ordered*:

- Expression (1) — parallel composition — is defeated by an adversary
  who merely schedules the unordered branches conveniently: evaluate
  the exts measurement with a corrupt ``bmon``, repair ``bmon``, then
  let the ``av`` measurement run. No action is squeezed between two
  protocol-ordered events, so even a *slow* adversary succeeds.
- Expression (2) — sequenced — forces ``av``'s measurement of ``bmon``
  before ``bmon``'s measurement of ``exts``; the corruption must now
  happen *between two ordered events*, i.e. during the protocol run:
  only a *recent/fast* adversary succeeds.

:func:`analyze_measurement_protocol` classifies a phrase into the
weakest :class:`AdversaryTier` that defeats it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.copland.ast import Phrase
from repro.copland.events import Event, EventKind, linear_extensions, phrase_events
from repro.util.errors import PolicyError


class AdversaryTier(enum.IntEnum):
    """Weakest adversary that defeats the protocol (higher = stronger
    adversary needed = better protocol)."""

    PREPOSITIONED = 1  # corrupt before the run, never act again
    DELAYED = 2  # acts during the run, but only in unconstrained gaps
    RECENT = 3  # must act between two protocol-ordered events (fast)
    IMPOSSIBLE = 4  # no corrupt/repair strategy defeats the protocol


@dataclass(frozen=True)
class AdversaryAction:
    """One corrupt/repair action, placed after schedule position ``after``
    (0 = before the first event)."""

    kind: str  # "corrupt" | "repair"
    component: str
    after: int
    constrained: bool  # squeezed between two protocol-ordered events?


@dataclass(frozen=True)
class AttackStrategy:
    """A witness: the schedule and actions that defeat the protocol."""

    tier: AdversaryTier
    schedule: Tuple[str, ...]  # event descriptions, in chosen order
    actions: Tuple[AdversaryAction, ...]

    def describe(self) -> str:
        lines = [f"tier: {self.tier.name}"]
        timeline: List[str] = []
        actions_by_slot: Dict[int, List[AdversaryAction]] = {}
        for action in self.actions:
            actions_by_slot.setdefault(action.after, []).append(action)
        for slot in range(len(self.schedule) + 1):
            for action in actions_by_slot.get(slot, []):
                marker = "!" if action.constrained else ""
                timeline.append(f"  [{action.kind}{marker} {action.component}]")
            if slot < len(self.schedule):
                timeline.append(f"  {self.schedule[slot]}")
        return "\n".join(lines + timeline)


@dataclass(frozen=True)
class ProtocolModel:
    """The environment a measurement protocol runs in.

    - ``residence`` maps component → place where it lives.
    - ``adversary_places``: places whose components the adversary can
      corrupt and repair (e.g. userspace but not kernelspace).
    - ``malicious``: components the adversary *needs* to stay corrupt
      for the attack to pay off (the malware itself, e.g. ``exts``).
    """

    residence: Mapping[str, str]
    adversary_places: FrozenSet[str]
    malicious: FrozenSet[str]

    def corruptible(self, component: str) -> bool:
        place = self.residence.get(component)
        return place is not None and place in self.adversary_places


# Required state of a component at an event.
_CLEAN, _CORRUPT = "clean", "corrupt"


def _measurement_events(events: Sequence[Event]) -> List[Event]:
    return [e for e in events if e.kind is EventKind.MEASURE]


def _requirements_for_extension(
    schedule: Sequence[Event], model: ProtocolModel
) -> Optional[List[Dict[str, str]]]:
    """Per-position component-state requirements for all-clean reports.

    A measurement of target ``t`` by ASP component ``m`` reports clean
    iff ``m`` is corrupt at that moment (a lying measurer) or ``t`` is
    clean. Components in ``model.malicious`` are pinned corrupt, so
    measurements of them *must* go through a corrupt measurer.

    Returns one requirement dict per schedule position (empty for
    non-measurement events), or ``None`` if some requirement is
    unsatisfiable (e.g. the needed measurer is not corruptible).
    """
    requirements: List[Dict[str, str]] = []
    for event in schedule:
        need: Dict[str, str] = {}
        if event.kind is EventKind.MEASURE:
            target = event.target
            measurer = event.asp
            if target in model.malicious:
                # Target stays corrupt; the measurer must lie.
                if not model.corruptible(measurer):
                    return None
                need[measurer] = _CORRUPT
            else:
                # Simplest consistent choice: the target reads clean.
                # (Corrupting the measurer instead never helps: it only
                # moves the problem one level up to an honest measurer.)
                if model.corruptible(target):
                    need[target] = _CLEAN
                # An honest, uncorruptible target is clean by default.
        requirements.append(need)
    return requirements


def _plan_actions(
    schedule: Sequence[Event],
    requirements: List[Dict[str, str]],
    order: FrozenSet[Tuple[int, int]],
    model: ProtocolModel,
) -> Optional[List[AdversaryAction]]:
    """Derive the corrupt/repair actions a requirement profile needs.

    For each component, walk its required states over the schedule and
    insert a toggle wherever consecutive requirements differ. A toggle
    between positions i < j is *constrained* iff the two anchoring
    events are ordered in the protocol's partial order — the adversary
    cannot stretch that gap by scheduling.
    """
    components: Set[str] = set()
    for need in requirements:
        components.update(need)
    components.update(model.malicious)

    actions: List[AdversaryAction] = []
    for component in sorted(components):
        pinned_corrupt = component in model.malicious
        # Collect (position, state) constraints.
        constraints: List[Tuple[int, str]] = []
        if pinned_corrupt:
            constraints = [(i, _CORRUPT) for i in range(len(schedule))]
        for position, need in enumerate(requirements):
            state = need.get(component)
            if state is not None:
                if pinned_corrupt and state == _CLEAN:
                    return None  # contradiction: malware must stay corrupt
                if not pinned_corrupt:
                    constraints.append((position, state))
        if not constraints:
            continue
        constraints.sort()
        # Initial state: honest components start clean. A first
        # requirement of corrupt costs one pre-run corruption.
        current = _CLEAN
        last_position = -1
        for position, state in constraints:
            if state == current:
                last_position = position
                continue
            constrained = False
            if last_position >= 0:
                before = schedule[last_position].event_id
                after = schedule[position].event_id
                constrained = (before, after) in order
            actions.append(
                AdversaryAction(
                    kind="corrupt" if state == _CORRUPT else "repair",
                    component=component,
                    after=last_position + 1,
                    constrained=constrained,
                )
            )
            current = state
            last_position = position
    return actions


def _tier_of_actions(actions: List[AdversaryAction]) -> AdversaryTier:
    if any(action.constrained for action in actions):
        return AdversaryTier.RECENT
    if any(action.after > 0 for action in actions):
        return AdversaryTier.DELAYED
    return AdversaryTier.PREPOSITIONED


def analyze_measurement_protocol(
    phrase: Phrase,
    model: ProtocolModel,
    at_place: str = "rp",
    extension_limit: int = 10000,
) -> Tuple[AdversaryTier, Optional[AttackStrategy]]:
    """Classify ``phrase`` against the corrupt/repair adversary.

    Returns the weakest tier that defeats the protocol plus a witness
    strategy, or ``(IMPOSSIBLE, None)`` when no strategy exists.
    """
    events, order = phrase_events(phrase, at_place=at_place)
    if not _measurement_events(events):
        raise PolicyError("phrase has no measurement events to analyze")
    best: Optional[AttackStrategy] = None
    for schedule in linear_extensions(events, order, limit=extension_limit):
        requirements = _requirements_for_extension(schedule, model)
        if requirements is None:
            continue
        actions = _plan_actions(schedule, requirements, order, model)
        if actions is None:
            continue
        tier = _tier_of_actions(actions)
        strategy = AttackStrategy(
            tier=tier,
            schedule=tuple(event.describe() for event in schedule),
            actions=tuple(actions),
        )
        if best is None or strategy.tier < best.tier:
            best = strategy
        if best.tier == AdversaryTier.PREPOSITIONED:
            break  # cannot do better (for the adversary)
    if best is None:
        return AdversaryTier.IMPOSSIBLE, None
    return best.tier, best
