"""Concrete syntax for Copland phrases, following the paper's notation.

Examples from the paper parse directly (ASCII renderings of the
typeset operators)::

    *bank : @ks [av us bmon] -~- @us [bmon us exts]          (expr 1)
    *bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !] (expr 2)
    *RP1 <n> : @Switch [attest(Hardware, Program) -> # -> !]
                 +>+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]

Operator ASCII forms (``l``/``r`` are ``+`` or ``-``):

    ``->``   linear composition
    ``l<r``  branch-sequential, e.g. ``-<-``, ``+<+``
    ``l~r``  branch-parallel, e.g. ``-~-``
    ``l>r``  alias for branch-sequential (the paper typesets (3) with >)
    ``!``    sign, ``#`` hash, ``_`` copy, ``{}`` null

Precedence: ``->`` binds tighter than branches; branches associate to
the left. A bare triple of identifiers ``a p t`` is the measurement
"``a`` measures ``t`` at place ``p``".
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.copland.ast import (
    Asp,
    At,
    BranchPar,
    BranchSeq,
    Copy,
    Hash,
    Linear,
    Measure,
    Null,
    Phrase,
    Request,
    Sign,
)
from repro.util.errors import PolicyError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<branch>[+\-][<>~][+\-])
  | (?P<null>\{\})
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<punct>[@\[\]()!#_:,*<>])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PolicyError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append((match.lastgroup, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of input")
        self._index += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token[1] == text:
            self._index += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        token = self._peek()
        if token is None or token[1] != text:
            found = token[1] if token else "end of input"
            raise PolicyError(f"expected {text!r}, found {found!r}")
        self._index += 1

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # --- grammar -----------------------------------------------------------

    def request(self) -> Request:
        self._expect("*")
        kind, name = self._next()
        if kind != "ident":
            raise PolicyError(f"expected relying-party name, found {name!r}")
        params: Tuple[str, ...] = ()
        if self._accept("<"):
            collected = []
            while True:
                pkind, pname = self._next()
                if pkind != "ident":
                    raise PolicyError(f"expected parameter name, found {pname!r}")
                collected.append(pname)
                if self._accept(">"):
                    break
                self._expect(",")
            params = tuple(collected)
        self._expect(":")
        return Request(relying_party=name, phrase=self.phrase(), params=params)

    def phrase(self) -> Phrase:
        left = self.linear()
        while True:
            token = self._peek()
            if token is None or token[0] != "branch":
                return left
            _, op = self._next()
            left_split, symbol, right_split = op[0], op[1], op[2]
            right = self.linear()
            if symbol == "~":
                left = BranchPar(left, right, left_split, right_split)
            elif symbol == ">":
                # Chained sequential: the right arm consumes the left
                # arm's output (paper expression (3)).
                left = BranchSeq(left, right, left_split, right_split, chain=True)
            else:
                left = BranchSeq(left, right, left_split, right_split)

    def linear(self) -> Phrase:
        left = self.atom()
        while self._accept("->"):
            left = Linear(left, self.atom())
        return left

    def atom(self) -> Phrase:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of input in phrase")
        kind, text = token
        if text == "(":
            self._next()
            inner = self.phrase()
            self._expect(")")
            return inner
        if text == "@":
            self._next()
            pkind, place = self._next()
            if pkind != "ident":
                raise PolicyError(f"expected place name after '@', found {place!r}")
            self._expect("[")
            inner = self.phrase()
            self._expect("]")
            return At(place, inner)
        if text == "!":
            self._next()
            return Sign()
        if text == "#":
            self._next()
            return Hash()
        if text == "_":
            self._next()
            return Copy()
        if kind == "null":
            self._next()
            return Null()
        if kind == "ident":
            return self._ident_phrase()
        raise PolicyError(f"unexpected token {text!r} in phrase")

    def _ident_phrase(self) -> Phrase:
        _, first = self._next()
        token = self._peek()
        # Service ASP with argument list: name(arg, ...).
        if token is not None and token[1] == "(":
            self._next()
            args = []
            if not self._accept(")"):
                while True:
                    akind, aname = self._next()
                    if akind != "ident":
                        raise PolicyError(
                            f"expected ASP argument, found {aname!r}"
                        )
                    args.append(aname)
                    if self._accept(")"):
                        break
                    self._expect(",")
            return Asp(first, tuple(args))
        # Measurement triple: asp place target.
        if token is not None and token[0] == "ident":
            _, place = self._next()
            tkind, target = self._next()
            if tkind != "ident":
                raise PolicyError(
                    f"expected measurement target, found {target!r}"
                )
            return Measure(asp=first, target_place=place, target=target)
        # Bare service ASP: appraise, attest, ...
        return Asp(first)


def parse_phrase(text: str) -> Phrase:
    """Parse a Copland phrase."""
    parser = _Parser(_tokenize(text))
    phrase = parser.phrase()
    if not parser.at_end():
        raise PolicyError(f"trailing input after phrase: {parser._peek()[1]!r}")
    return phrase


def parse_request(text: str) -> Request:
    """Parse a ``*RP <params> : phrase`` request."""
    parser = _Parser(_tokenize(text))
    request = parser.request()
    if not parser.at_end():
        raise PolicyError(f"trailing input after request: {parser._peek()[1]!r}")
    return request
