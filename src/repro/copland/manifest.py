"""Place manifests: what each place can execute.

Petz & Alexander's Copland toolchain checks a phrase against the
*manifests* of the places it mentions before dispatching it — a phrase
asking place ``us`` to run ASP ``av`` must fail fast if ``us`` has no
such ASP. :class:`Manifest` reproduces that executability check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.copland.ast import (
    Asp,
    At,
    BranchPar,
    BranchSeq,
    Copy,
    Hash,
    Linear,
    Measure,
    Null,
    Phrase,
    Sign,
)
from repro.util.errors import PolicyError


@dataclass(frozen=True)
class PlaceSpec:
    """Capabilities of one place."""

    name: str
    asps: FrozenSet[str] = frozenset()
    can_sign: bool = True
    can_hash: bool = True
    # Places this one can dispatch @q[...] requests to.
    peers: FrozenSet[str] = frozenset()


class Manifest:
    """A registry of place specs plus the executability check."""

    def __init__(self) -> None:
        self._places: Dict[str, PlaceSpec] = {}

    def add(self, spec: PlaceSpec) -> None:
        if spec.name in self._places:
            raise PolicyError(f"duplicate place {spec.name!r} in manifest")
        self._places[spec.name] = spec

    def place(self, name: str) -> PlaceSpec:
        spec = self._places.get(name)
        if spec is None:
            raise PolicyError(f"manifest has no place {name!r}")
        return spec

    def knows(self, name: str) -> bool:
        return name in self._places

    def check_executable(self, phrase: Phrase, at_place: str) -> List[str]:
        """Return the list of executability violations (empty = OK)."""
        violations: List[str] = []

        def visit(node: Phrase, place: str) -> None:
            spec = self._places.get(place)
            if spec is None:
                violations.append(f"unknown place {place!r}")
                return
            if isinstance(node, Measure):
                if node.asp not in spec.asps:
                    violations.append(
                        f"place {place!r} cannot run ASP {node.asp!r}"
                    )
            elif isinstance(node, Asp):
                if node.name not in spec.asps:
                    violations.append(
                        f"place {place!r} cannot run ASP {node.name!r}"
                    )
            elif isinstance(node, Sign):
                if not spec.can_sign:
                    violations.append(f"place {place!r} cannot sign")
            elif isinstance(node, Hash):
                if not spec.can_hash:
                    violations.append(f"place {place!r} cannot hash")
            elif isinstance(node, At):
                if node.place != place and node.place not in spec.peers:
                    violations.append(
                        f"place {place!r} cannot dispatch to {node.place!r}"
                    )
                visit(node.phrase, node.place)
            elif isinstance(node, Linear):
                visit(node.left, place)
                visit(node.right, place)
            elif isinstance(node, (BranchSeq, BranchPar)):
                visit(node.left, place)
                visit(node.right, place)
            elif isinstance(node, (Copy, Null)):
                pass

        visit(phrase, at_place)
        return violations
