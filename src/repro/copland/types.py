"""Static evidence-type semantics for Copland phrases.

Copland's published semantics assigns every phrase an *evidence type*:
given the shape of the evidence flowing in, the shape flowing out is
determined before anything executes (Helble et al. 2021, §3). This
module implements that judgement. Uses:

- **protocol vetting**: a relying party can inspect what an expression
  will produce (how many signatures, by whom, over what) before asking
  anyone to run it;
- **implementation checking**: the VM's concrete evidence must inhabit
  the inferred type — a property test in the suite executes random
  phrases and checks agreement, guarding both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.copland.ast import (
    Asp,
    At,
    BranchPar,
    BranchSeq,
    Copy,
    Hash,
    Linear,
    Measure,
    Null,
    Phrase,
    Sign,
)
from repro.evidence import (
    EmptyEvidence,
    Evidence,
    HashEvidence,
    MeasurementEvidence,
    NonceEvidence,
    ParallelEvidence,
    SequenceEvidence,
    SignedEvidence,
)
from repro.util.errors import PolicyError


class EvidenceType:
    """Base class of evidence-shape terms."""

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class MtT(EvidenceType):
    def describe(self) -> str:
        return "mt"


@dataclass(frozen=True)
class NonceT(EvidenceType):
    name: str = "n"

    def describe(self) -> str:
        return f"nonce({self.name})"


@dataclass(frozen=True)
class AspT(EvidenceType):
    """Output of a measurement or service ASP at a place."""

    asp: str
    place: str
    prior: EvidenceType

    def describe(self) -> str:
        return f"{self.asp}@{self.place}[{self.prior.describe()}]"


@dataclass(frozen=True)
class SigT(EvidenceType):
    place: str
    body: EvidenceType

    def describe(self) -> str:
        return f"sig_{self.place}({self.body.describe()})"


@dataclass(frozen=True)
class HshT(EvidenceType):
    place: str

    def describe(self) -> str:
        return f"hsh_{self.place}"


@dataclass(frozen=True)
class SeqT(EvidenceType):
    left: EvidenceType
    right: EvidenceType

    def describe(self) -> str:
        return f"({self.left.describe()} ; {self.right.describe()})"


@dataclass(frozen=True)
class ParT(EvidenceType):
    left: EvidenceType
    right: EvidenceType

    def describe(self) -> str:
        return f"({self.left.describe()} || {self.right.describe()})"


def infer_evidence_type(
    phrase: Phrase, at_place: str, incoming: EvidenceType = MtT()
) -> EvidenceType:
    """The evidence type ``phrase`` produces at ``at_place``."""
    if isinstance(phrase, (Measure, Asp)):
        name = phrase.asp if isinstance(phrase, Measure) else phrase.name
        return AspT(asp=name, place=at_place, prior=incoming)
    if isinstance(phrase, At):
        return infer_evidence_type(phrase.phrase, phrase.place, incoming)
    if isinstance(phrase, Linear):
        intermediate = infer_evidence_type(phrase.left, at_place, incoming)
        return infer_evidence_type(phrase.right, at_place, intermediate)
    if isinstance(phrase, BranchSeq):
        left_in = incoming if phrase.left_split == "+" else MtT()
        left = infer_evidence_type(phrase.left, at_place, left_in)
        if phrase.chain:
            right_in: EvidenceType = left if phrase.right_split == "+" else MtT()
        else:
            right_in = incoming if phrase.right_split == "+" else MtT()
        right = infer_evidence_type(phrase.right, at_place, right_in)
        return SeqT(left=left, right=right)
    if isinstance(phrase, BranchPar):
        left_in = incoming if phrase.left_split == "+" else MtT()
        right_in = incoming if phrase.right_split == "+" else MtT()
        return ParT(
            left=infer_evidence_type(phrase.left, at_place, left_in),
            right=infer_evidence_type(phrase.right, at_place, right_in),
        )
    if isinstance(phrase, Sign):
        return SigT(place=at_place, body=incoming)
    if isinstance(phrase, Hash):
        return HshT(place=at_place)
    if isinstance(phrase, Copy):
        return incoming
    if isinstance(phrase, Null):
        return MtT()
    raise PolicyError(f"unknown phrase node {type(phrase).__name__}")


def evidence_inhabits(evidence: Evidence, etype: EvidenceType) -> bool:
    """Does concrete ``evidence`` have shape ``etype``?"""
    if isinstance(etype, MtT):
        return isinstance(evidence, EmptyEvidence)
    if isinstance(etype, NonceT):
        return isinstance(evidence, NonceEvidence) and evidence.name == etype.name
    if isinstance(etype, AspT):
        return (
            isinstance(evidence, MeasurementEvidence)
            and evidence.asp == etype.asp
            and evidence.place == etype.place
            and evidence_inhabits(evidence.prior, etype.prior)
        )
    if isinstance(etype, SigT):
        return (
            isinstance(evidence, SignedEvidence)
            and evidence.place == etype.place
            and evidence_inhabits(evidence.evidence, etype.body)
        )
    if isinstance(etype, HshT):
        return isinstance(evidence, HashEvidence) and evidence.place == etype.place
    if isinstance(etype, SeqT):
        return (
            isinstance(evidence, SequenceEvidence)
            and evidence_inhabits(evidence.left, etype.left)
            and evidence_inhabits(evidence.right, etype.right)
        )
    if isinstance(etype, ParT):
        return (
            isinstance(evidence, ParallelEvidence)
            and evidence_inhabits(evidence.left, etype.left)
            and evidence_inhabits(evidence.right, etype.right)
        )
    raise PolicyError(f"unknown evidence type {type(etype).__name__}")


def count_signatures(etype: EvidenceType) -> int:
    """How many signatures the type commits its executors to produce."""
    if isinstance(etype, SigT):
        return 1 + count_signatures(etype.body)
    if isinstance(etype, AspT):
        return count_signatures(etype.prior)
    if isinstance(etype, (SeqT, ParT)):
        return count_signatures(etype.left) + count_signatures(etype.right)
    return 0


def signing_places(etype: EvidenceType) -> Tuple[str, ...]:
    """The places whose keys will sign, in evidence order."""
    if isinstance(etype, SigT):
        return signing_places(etype.body) + (etype.place,)
    if isinstance(etype, AspT):
        return signing_places(etype.prior)
    if isinstance(etype, (SeqT, ParT)):
        return signing_places(etype.left) + signing_places(etype.right)
    return ()
