"""Copland evidence terms.

Executing a phrase transforms evidence; these classes are the concrete
evidence values the VM builds. Every node has a canonical byte encoding
(:meth:`Evidence.encode`) so signatures and hashes are well-defined,
and a :meth:`summary` for appraisal reports.

The shape mirrors the Copland evidence grammar: mt, nonce, measurement
(asp applied at a place, wrapping prior evidence), signature, hash,
sequential pair and parallel pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.crypto.hashing import digest
from repro.util.errors import PolicyError


class Evidence:
    """Base class of evidence terms."""

    def encode(self) -> bytes:
        raise NotImplementedError

    def summary(self) -> str:
        raise NotImplementedError

    def walk(self) -> Iterator["Evidence"]:
        """Pre-order traversal of the evidence tree."""
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self) -> Tuple["Evidence", ...]:
        return ()

    def find_measurements(self) -> Tuple["MeasurementEvidence", ...]:
        return tuple(
            node for node in self.walk() if isinstance(node, MeasurementEvidence)
        )

    def find_signatures(self) -> Tuple["SignedEvidence", ...]:
        return tuple(
            node for node in self.walk() if isinstance(node, SignedEvidence)
        )


@dataclass(frozen=True)
class EmptyEvidence(Evidence):
    """mt — the empty evidence."""

    def encode(self) -> bytes:
        return b"\x00mt"

    def summary(self) -> str:
        return "mt"


@dataclass(frozen=True)
class NonceEvidence(Evidence):
    """A relying-party nonce bound into the evidence (freshness)."""

    name: str
    value: bytes

    def encode(self) -> bytes:
        return b"\x01n|" + self.name.encode() + b"|" + self.value

    def summary(self) -> str:
        return f"nonce({self.name})"


@dataclass(frozen=True)
class MeasurementEvidence(Evidence):
    """An ASP's output: who measured what, where, and the raw value."""

    asp: str
    place: str  # place where the ASP ran
    target: str  # component measured ("" for service ASPs)
    target_place: str
    value: bytes  # the measurement itself (e.g. a digest)
    prior: Evidence = field(default_factory=EmptyEvidence)

    def encode(self) -> bytes:
        head = "|".join(
            [self.asp, self.place, self.target, self.target_place]
        ).encode()
        return (
            b"\x02meas|"
            + head
            + b"|"
            + len(self.value).to_bytes(4, "big")
            + self.value
            + self.prior.encode()
        )

    def summary(self) -> str:
        target = f" {self.target_place} {self.target}" if self.target else ""
        return f"{self.asp}{target}@{self.place}[{self.prior.summary()}]"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.prior,)


@dataclass(frozen=True)
class SignedEvidence(Evidence):
    """``!`` — evidence signed by the key of ``place``."""

    evidence: Evidence
    place: str
    signature: bytes

    def encode(self) -> bytes:
        return (
            b"\x03sig|"
            + self.place.encode()
            + b"|"
            + self.signature
            + self.evidence.encode()
        )

    def summary(self) -> str:
        return f"sig_{self.place}({self.evidence.summary()})"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.evidence,)

    def signed_payload(self) -> bytes:
        """The bytes the signature covers."""
        return self.evidence.encode()


@dataclass(frozen=True)
class HashEvidence(Evidence):
    """``#`` — evidence replaced by its digest (size reduction)."""

    digest_value: bytes
    place: str

    @classmethod
    def of(cls, evidence: Evidence, place: str) -> "HashEvidence":
        return cls(
            digest_value=digest(evidence.encode(), domain="copland-hash"),
            place=place,
        )

    def encode(self) -> bytes:
        return b"\x04hsh|" + self.place.encode() + b"|" + self.digest_value

    def summary(self) -> str:
        return f"hsh_{self.place}"

    @staticmethod
    def matches(evidence: Evidence, digest_value: bytes) -> bool:
        """Would hashing ``evidence`` yield ``digest_value``?"""
        return digest(evidence.encode(), domain="copland-hash") == digest_value


@dataclass(frozen=True)
class SequenceEvidence(Evidence):
    """``ss`` — evidence of a branch-sequential composition."""

    left: Evidence
    right: Evidence

    def encode(self) -> bytes:
        left = self.left.encode()
        return (
            b"\x05ss|" + len(left).to_bytes(4, "big") + left + self.right.encode()
        )

    def summary(self) -> str:
        return f"({self.left.summary()} ; {self.right.summary()})"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class ParallelEvidence(Evidence):
    """``pp`` — evidence of a branch-parallel composition."""

    left: Evidence
    right: Evidence

    def encode(self) -> bytes:
        left = self.left.encode()
        return (
            b"\x06pp|" + len(left).to_bytes(4, "big") + left + self.right.encode()
        )

    def summary(self) -> str:
        return f"({self.left.summary()} || {self.right.summary()})"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.left, self.right)
