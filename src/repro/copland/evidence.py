"""Copland evidence terms — now views over the unified substrate.

Executing a phrase transforms evidence; the concrete values the VM
builds are the canonical nodes of :mod:`repro.evidence`, which mirror
the Copland evidence grammar exactly (mt, nonce, measurement,
signature, hash, sequential pair, parallel pair). This module is a
compatibility shim: the historical import path keeps working, but
there is only one evidence model and one wire codec in the system.
"""

from __future__ import annotations

from repro.evidence.nodes import (
    EmptyEvidence,
    Evidence,
    HashEvidence,
    MeasurementEvidence,
    NonceEvidence,
    ParallelEvidence,
    SequenceEvidence,
    SignedEvidence,
)

__all__ = [
    "Evidence",
    "EmptyEvidence",
    "NonceEvidence",
    "MeasurementEvidence",
    "SignedEvidence",
    "HashEvidence",
    "SequenceEvidence",
    "ParallelEvidence",
]
