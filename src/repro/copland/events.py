"""Event semantics: the partial order of events a phrase denotes.

Ramsdell et al. ("Orchestrating Layered Attestations") analyse Copland
phrases through their *event systems*: each measurement, signature and
hash is an event; linear and branch-sequential composition order
events; branch-parallel composition leaves them unordered; ``@p``
wraps its body in request/reply events.

The adversary analysis (:mod:`repro.copland.adversary`) consumes this:
what an adversary can get away with depends precisely on which events
the protocol forces into sequence.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.copland.ast import (
    Asp,
    At,
    BranchPar,
    BranchSeq,
    Copy,
    Hash,
    Linear,
    Measure,
    Null,
    Phrase,
    Sign,
)
from repro.util.errors import PolicyError


class EventKind(enum.Enum):
    """The kinds of attestation events a phrase denotes."""

    MEASURE = "measure"
    ASP = "asp"
    SIGN = "sign"
    HASH = "hash"
    REQUEST = "request"
    REPLY = "reply"


@dataclass(frozen=True)
class Event:
    """One attestation event with a unique id."""

    event_id: int
    kind: EventKind
    place: str
    # For MEASURE: the measuring ASP, target and target place.
    asp: str = ""
    target: str = ""
    target_place: str = ""

    def describe(self) -> str:
        if self.kind is EventKind.MEASURE:
            return f"e{self.event_id}:{self.asp} {self.target_place} {self.target}@{self.place}"
        return f"e{self.event_id}:{self.kind.value}@{self.place}"


def phrase_events(
    phrase: Phrase, at_place: str, include_comms: bool = False
) -> Tuple[Tuple[Event, ...], FrozenSet[Tuple[int, int]]]:
    """Compute the events of ``phrase`` and their strict partial order.

    Returns ``(events, order)`` where ``order`` is the set of pairs
    ``(a, b)`` meaning event ``a`` happens before event ``b``
    (transitively closed). ``include_comms`` adds REQUEST/REPLY events
    for ``@p`` dispatch; the default omits them, which keeps the
    adversary analysis focused on measurements.
    """
    counter = itertools.count(1)
    events: List[Event] = []
    order: Set[Tuple[int, int]] = set()

    def fresh(kind: EventKind, place: str, **extra: str) -> Event:
        event = Event(event_id=next(counter), kind=kind, place=place, **extra)
        events.append(event)
        return event

    def visit(node: Phrase, place: str) -> Tuple[Set[int], Set[int]]:
        """Returns (minimal event ids, maximal event ids) of the node."""
        if isinstance(node, Measure):
            event = fresh(
                EventKind.MEASURE,
                place,
                asp=node.asp,
                target=node.target,
                target_place=node.target_place,
            )
            return {event.event_id}, {event.event_id}
        if isinstance(node, Asp):
            event = fresh(EventKind.ASP, place, asp=node.name)
            return {event.event_id}, {event.event_id}
        if isinstance(node, Sign):
            event = fresh(EventKind.SIGN, place)
            return {event.event_id}, {event.event_id}
        if isinstance(node, Hash):
            event = fresh(EventKind.HASH, place)
            return {event.event_id}, {event.event_id}
        if isinstance(node, (Copy, Null)):
            return set(), set()
        if isinstance(node, At):
            if include_comms:
                req = fresh(EventKind.REQUEST, place)
                inner_min, inner_max = visit(node.phrase, node.place)
                rpy = fresh(EventKind.REPLY, node.place)
                for inner in inner_min:
                    order.add((req.event_id, inner))
                for inner in inner_max:
                    order.add((inner, rpy.event_id))
                if not inner_min:
                    order.add((req.event_id, rpy.event_id))
                return {req.event_id}, {rpy.event_id}
            return visit(node.phrase, node.place)
        if isinstance(node, (Linear, BranchSeq)):
            left_min, left_max = visit(node.left, place)
            right_min, right_max = visit(node.right, place)
            for a in left_max:
                for b in right_min:
                    order.add((a, b))
            minimal = left_min or right_min
            maximal = right_max or left_max
            return minimal, maximal
        if isinstance(node, BranchPar):
            left_min, left_max = visit(node.left, place)
            right_min, right_max = visit(node.right, place)
            return left_min | right_min, left_max | right_max
        raise PolicyError(f"unknown phrase node {type(node).__name__}")

    visit(phrase, at_place)
    return tuple(events), frozenset(_transitive_closure(order))


def _transitive_closure(order: Set[Tuple[int, int]]) -> Set[Tuple[int, int]]:
    closure = set(order)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


def event_order(
    events: Tuple[Event, ...], order: FrozenSet[Tuple[int, int]]
) -> Dict[int, Set[int]]:
    """Successor map: event id → set of ids that must come after."""
    successors: Dict[int, Set[int]] = {event.event_id: set() for event in events}
    for a, b in order:
        successors[a].add(b)
    return successors


def linear_extensions(
    events: Tuple[Event, ...],
    order: FrozenSet[Tuple[int, int]],
    limit: int = 10000,
) -> Iterator[Tuple[Event, ...]]:
    """Enumerate all linear extensions of the partial order.

    Bounded by ``limit`` to guard against combinatorial blow-up on
    wide parallel phrases; raises when the bound is hit so callers
    never silently analyse a truncated space.
    """
    by_id = {event.event_id: event for event in events}
    predecessors: Dict[int, Set[int]] = {event.event_id: set() for event in events}
    for a, b in order:
        predecessors[b].add(a)
    produced = 0

    def extend(chosen: List[int], remaining: Set[int]) -> Iterator[Tuple[Event, ...]]:
        nonlocal produced
        if not remaining:
            produced += 1
            if produced > limit:
                raise PolicyError(
                    f"more than {limit} linear extensions; phrase too wide"
                )
            yield tuple(by_id[i] for i in chosen)
            return
        chosen_set = set(chosen)
        # Sorted for determinism.
        for candidate in sorted(remaining):
            if predecessors[candidate] <= chosen_set:
                yield from extend(chosen + [candidate], remaining - {candidate})

    yield from extend([], {event.event_id for event in events})
