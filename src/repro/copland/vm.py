"""The Copland attestation virtual machine.

Executes a phrase across a set of :class:`Place` objects, producing
concrete :class:`~repro.copland.evidence.Evidence` with real
signatures and hashes (via :mod:`repro.crypto`). The VM corresponds to
the AVM of Petz & Alexander's "Infrastructure for Faithful Execution
of Remote Attestation Protocols": the phrase is the program, places
are the machines, ASPs are the installed services.

Places hold *components* — named byte strings standing for the
binaries/configurations that measurements target. The default
measurement ASP digests the target component at its place; a corrupt
measurer component lies. This is what the adversary analysis and the
§4.2 experiments manipulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.copland.ast import (
    Asp,
    At,
    BranchPar,
    BranchSeq,
    Copy,
    Hash,
    Linear,
    Measure,
    Null,
    Phrase,
    Request,
    Sign,
)
from repro.evidence import (
    EmptyEvidence,
    Evidence,
    HashEvidence,
    MeasurementEvidence,
    NonceEvidence,
    ParallelEvidence,
    SequenceEvidence,
    SignedEvidence,
)
from repro.crypto.hashing import digest
from repro.crypto.keys import KeyPair
from repro.util.errors import PolicyError

# ASP implementation signature: measure/serve and return the raw value.
AspImplementation = Callable[["Place", str, str, Tuple[str, ...], Evidence], bytes]

CLEAN_REPORT = b"\x01clean"
CORRUPT_REPORT = b"\x00corrupt"


def default_measure_asp(
    place: "Place",
    target: str,
    target_place: str,
    args: Tuple[str, ...],
    prior: Evidence,
) -> bytes:
    """The standard measurement ASP: digest the target component.

    A corrupt measurer (this ASP's own component at ``place``) lies: it
    reports the digest of the *expected* (golden) content regardless of
    the target's true state — modelling the §4.2 compromised ``bmon``.
    """
    vm = place.vm
    if vm is None:
        raise PolicyError(f"place {place.name!r} is not attached to a VM")
    target_owner = vm.place(target_place)
    content = target_owner.components.get(target)
    if content is None:
        raise PolicyError(
            f"place {target_place!r} has no component {target!r} to measure"
        )
    measurer_name = place.current_asp
    if measurer_name is not None and place.is_corrupt(measurer_name):
        golden = target_owner.golden.get(target, content)
        return digest(golden, domain="component-measurement")
    return digest(content, domain="component-measurement")


@dataclass
class Place:
    """A Copland place: identity, key, ASPs, and measurable components."""

    name: str
    keypair: KeyPair = None  # type: ignore[assignment]
    asps: Dict[str, AspImplementation] = field(default_factory=dict)
    components: Dict[str, bytes] = field(default_factory=dict)
    # Golden (vetted) contents, for appraisers and for lying measurers.
    golden: Dict[str, bytes] = field(default_factory=dict)
    vm: Optional["CoplandVM"] = None
    current_asp: Optional[str] = None

    def __post_init__(self) -> None:
        if self.keypair is None:
            self.keypair = KeyPair.generate(self.name)

    def install_component(self, name: str, content: bytes, vetted: bool = True) -> None:
        """Install a component; vetted content also becomes the golden copy."""
        self.components[name] = content
        if vetted:
            self.golden[name] = content

    def corrupt_component(self, name: str, content: bytes = b"MALWARE") -> None:
        """Adversary action: replace a component without updating golden."""
        if name not in self.components:
            raise PolicyError(f"place {self.name!r} has no component {name!r}")
        self.components[name] = content

    def repair_component(self, name: str) -> None:
        """Adversary action: restore the golden copy (hide the tracks)."""
        golden = self.golden.get(name)
        if golden is None:
            raise PolicyError(f"no golden copy of {name!r} at {self.name!r}")
        self.components[name] = golden

    def is_corrupt(self, name: str) -> bool:
        content = self.components.get(name)
        golden = self.golden.get(name)
        return content is not None and golden is not None and content != golden

    def sign(self, payload: bytes) -> bytes:
        return self.keypair.sign(payload)


@dataclass
class VmEvent:
    """One step of an execution, in the order it actually happened."""

    kind: str  # "measure" | "asp" | "sign" | "hash" | "req" | "rpy"
    place: str
    detail: str
    sequence: int


class CoplandVM:
    """Executes phrases over registered places."""

    def __init__(self) -> None:
        self._places: Dict[str, Place] = {}
        self.events: List[VmEvent] = []
        self._sequence = 0
        # Adversary scheduling hook: parallel arms are unordered, so an
        # active adversary who controls timing may act *between* them
        # (the §4.2 attack). When set, this callable runs after the
        # first-evaluated (right) arm and before the left arm.
        self.between_par_arms: Optional[Callable[[], None]] = None

    # --- setup ----------------------------------------------------------

    def register(self, place: Place) -> Place:
        if place.name in self._places:
            raise PolicyError(f"place {place.name!r} already registered")
        place.vm = self
        if not place.asps:
            pass  # places may rely purely on sign/hash
        self._places[place.name] = place
        return place

    def place(self, name: str) -> Place:
        place = self._places.get(name)
        if place is None:
            raise PolicyError(f"no place registered as {name!r}")
        return place

    @property
    def place_names(self) -> List[str]:
        return sorted(self._places)

    # --- execution ---------------------------------------------------------

    def execute_request(
        self, request: Request, param_values: Optional[Dict[str, bytes]] = None
    ) -> Evidence:
        """Execute a ``*RP <params> : C`` request.

        ``param_values`` supplies concrete bytes for each declared
        parameter; parameters act as nonces bound into the initial
        evidence (Helble et al.'s nonce treatment).
        """
        param_values = param_values or {}
        missing = [p for p in request.params if p not in param_values]
        if missing:
            raise PolicyError(f"missing values for request parameters {missing}")
        evidence: Evidence = EmptyEvidence()
        for param in request.params:
            evidence = NonceEvidence(name=param, value=param_values[param])
        self._param_env = dict(param_values)
        try:
            return self.execute(
                request.phrase, at_place=request.relying_party, evidence=evidence
            )
        finally:
            self._param_env = {}

    def execute(
        self,
        phrase: Phrase,
        at_place: str,
        evidence: Optional[Evidence] = None,
    ) -> Evidence:
        """Execute ``phrase`` starting at ``at_place``."""
        if not hasattr(self, "_param_env"):
            self._param_env = {}
        return self._eval(phrase, at_place, evidence or EmptyEvidence())

    def _event(self, kind: str, place: str, detail: str) -> None:
        self._sequence += 1
        self.events.append(
            VmEvent(kind=kind, place=place, detail=detail, sequence=self._sequence)
        )

    def _eval(self, phrase: Phrase, place_name: str, evidence: Evidence) -> Evidence:
        place = self.place(place_name)
        if isinstance(phrase, Measure):
            impl = place.asps.get(phrase.asp, default_measure_asp)
            place.current_asp = phrase.asp
            try:
                value = impl(
                    place, phrase.target, phrase.target_place, (), evidence
                )
            finally:
                place.current_asp = None
            self._event(
                "measure",
                place_name,
                f"{phrase.asp} {phrase.target_place} {phrase.target}",
            )
            return MeasurementEvidence(
                asp=phrase.asp,
                place=place_name,
                target=phrase.target,
                target_place=phrase.target_place,
                value=value,
                prior=evidence,
            )
        if isinstance(phrase, Asp):
            impl = place.asps.get(phrase.name)
            if impl is None:
                raise PolicyError(
                    f"place {place_name!r} has no ASP {phrase.name!r}"
                )
            resolved_args = tuple(
                self._param_env.get(arg, arg.encode()).hex()
                if isinstance(self._param_env.get(arg, None), bytes)
                else arg
                for arg in phrase.args
            )
            place.current_asp = phrase.name
            try:
                value = impl(place, "", "", resolved_args, evidence)
            finally:
                place.current_asp = None
            self._event("asp", place_name, repr(phrase))
            return MeasurementEvidence(
                asp=phrase.name,
                place=place_name,
                target="",
                target_place="",
                value=value,
                prior=evidence,
            )
        if isinstance(phrase, At):
            self._event("req", place_name, f"@{phrase.place}")
            result = self._eval(phrase.phrase, phrase.place, evidence)
            self._event("rpy", phrase.place, f"->{place_name}")
            return result
        if isinstance(phrase, Linear):
            intermediate = self._eval(phrase.left, place_name, evidence)
            return self._eval(phrase.right, place_name, intermediate)
        if isinstance(phrase, BranchSeq):
            left_in = evidence if phrase.left_split == "+" else EmptyEvidence()
            left = self._eval(phrase.left, place_name, left_in)
            if phrase.chain:
                right_in: Evidence = (
                    left if phrase.right_split == "+" else EmptyEvidence()
                )
            else:
                right_in = evidence if phrase.right_split == "+" else EmptyEvidence()
            right = self._eval(phrase.right, place_name, right_in)
            return SequenceEvidence(left=left, right=right)
        if isinstance(phrase, BranchPar):
            left_in = evidence if phrase.left_split == "+" else EmptyEvidence()
            right_in = evidence if phrase.right_split == "+" else EmptyEvidence()
            # The VM runs branches in an arbitrary (here: right-first)
            # order: parallel arms are unordered, and right-first is
            # exactly the §4.2 adversary's preferred schedule.
            right = self._eval(phrase.right, place_name, right_in)
            if self.between_par_arms is not None:
                self.between_par_arms()
            left = self._eval(phrase.left, place_name, left_in)
            return ParallelEvidence(left=left, right=right)
        if isinstance(phrase, Sign):
            signature = place.sign(evidence.encode())
            self._event("sign", place_name, "!")
            return SignedEvidence(
                evidence=evidence, place=place_name, signature=signature
            )
        if isinstance(phrase, Hash):
            self._event("hash", place_name, "#")
            return HashEvidence.of(evidence, place_name)
        if isinstance(phrase, Copy):
            return evidence
        if isinstance(phrase, Null):
            return EmptyEvidence()
        raise PolicyError(f"unknown phrase node {type(phrase).__name__}")
