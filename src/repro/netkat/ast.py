"""NetKAT abstract syntax.

Predicates form a Boolean algebra; policies a Kleene algebra with
tests. Field values are ints or strings (places like ``"s1"`` are more
readable than numeric encodings, and NetKAT's semantics only ever
compares values for equality).

The smart constructors (:func:`test`, :func:`seq`, :func:`union`, ...)
apply the cheap algebraic simplifications (identities and annihilators)
so that mechanically built policies stay small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TypingUnion

Value = TypingUnion[int, str]


# --- predicates -------------------------------------------------------------


class Predicate:
    """Base class of NetKAT predicates."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return pand(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return por(self, other)

    def __invert__(self) -> "Predicate":
        return pnot(self)


@dataclass(frozen=True)
class PTrue(Predicate):
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class PFalse(Predicate):
    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Test(Predicate):
    __test__ = False  # not a pytest test class

    field: str
    value: Value

    def __repr__(self) -> str:
        return f"{self.field}={self.value!r}"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


@dataclass(frozen=True)
class Not(Predicate):
    pred: Predicate

    def __repr__(self) -> str:
        return f"not {self.pred!r}"


TRUE = PTrue()
FALSE = PFalse()


def test(field: str, value: Value) -> Test:
    """The predicate ``field = value``."""
    return Test(field, value)


def pand(left: Predicate, right: Predicate) -> Predicate:
    if isinstance(left, PFalse) or isinstance(right, PFalse):
        return FALSE
    if isinstance(left, PTrue):
        return right
    if isinstance(right, PTrue):
        return left
    return And(left, right)


def por(left: Predicate, right: Predicate) -> Predicate:
    if isinstance(left, PTrue) or isinstance(right, PTrue):
        return TRUE
    if isinstance(left, PFalse):
        return right
    if isinstance(right, PFalse):
        return left
    return Or(left, right)


def pnot(pred: Predicate) -> Predicate:
    if isinstance(pred, PTrue):
        return FALSE
    if isinstance(pred, PFalse):
        return TRUE
    if isinstance(pred, Not):
        return pred.pred
    return Not(pred)


# --- policies ---------------------------------------------------------------


class Policy:
    """Base class of NetKAT policies."""

    def __add__(self, other: "Policy") -> "Policy":
        return union(self, other)

    def __rshift__(self, other: "Policy") -> "Policy":
        return seq(self, other)


@dataclass(frozen=True)
class Filter(Policy):
    pred: Predicate

    def __repr__(self) -> str:
        if isinstance(self.pred, PTrue):
            return "id"
        if isinstance(self.pred, PFalse):
            return "drop"
        return f"filter {self.pred!r}"


@dataclass(frozen=True)
class Mod(Policy):
    field: str
    value: Value

    def __repr__(self) -> str:
        return f"{self.field}:={self.value!r}"


@dataclass(frozen=True)
class Union(Policy):
    left: Policy
    right: Policy

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


@dataclass(frozen=True)
class Seq(Policy):
    left: Policy
    right: Policy

    def __repr__(self) -> str:
        return f"({self.left!r}; {self.right!r})"


@dataclass(frozen=True)
class Star(Policy):
    policy: Policy

    def __repr__(self) -> str:
        return f"({self.policy!r})*"


@dataclass(frozen=True)
class Dup(Policy):
    def __repr__(self) -> str:
        return "dup"


ID = Filter(TRUE)
DROP = Filter(FALSE)


def mod(field: str, value: Value) -> Mod:
    """The policy ``field := value``."""
    return Mod(field, value)


def seq(*policies: Policy) -> Policy:
    """n-ary sequential composition with unit/annihilator simplification."""
    result: Policy = ID
    for policy in policies:
        if policy == DROP or result == DROP:
            return DROP
        if policy == ID:
            continue
        if result == ID:
            result = policy
        else:
            result = Seq(result, policy)
    return result


def union(*policies: Policy) -> Policy:
    """n-ary union with unit simplification."""
    result: Policy = DROP
    for policy in policies:
        if policy == DROP:
            continue
        if result == DROP:
            result = policy
        else:
            result = Union(result, policy)
    return result


def star(policy: Policy) -> Policy:
    """Kleene star with the cheap simplifications applied."""
    if policy in (ID, DROP):
        return ID  # drop* = id* = id
    if isinstance(policy, Star):
        return policy
    return Star(policy)


def ite(pred: Predicate, then: Policy, otherwise: Policy) -> Policy:
    """``if pred then P else Q`` — the standard NetKAT encoding."""
    return union(seq(Filter(pred), then), seq(Filter(pnot(pred)), otherwise))
