"""Concrete syntax for NetKAT.

Grammar (standard notation, ``;`` binds tighter than ``+``)::

    policy  ::= choice
    choice  ::= sequence ("+" sequence)*
    sequence::= starred (";" starred)*
    starred ::= atom "*"*
    atom    ::= "id" | "drop" | "dup"
              | "filter" predicate
              | IDENT ":=" value
              | "if" predicate "then" policy "else" policy
              | "(" policy ")"

    predicate ::= por
    por     ::= pand ("or" pand)*
    pand    ::= punary ("and" punary)*
    punary  ::= "not" punary | "true" | "false"
              | IDENT "=" value | "(" predicate ")"

    value   ::= INT | IDENT | STRING

Identifiers may contain dots and dashes (``ipv4.dst``, ``s-1``), so
field names from the PISA layer parse unchanged. Bare identifiers in
value position are string values.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.netkat.ast import (
    DROP,
    ID,
    Dup,
    Filter,
    Policy,
    Predicate,
    ite,
    mod,
    pand,
    pnot,
    por,
    seq,
    star,
    test,
    union,
    TRUE,
    FALSE,
)
from repro.util.errors import PolicyError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<assign>:=)
  | (?P<int>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<string>"[^"]*")
  | (?P<punct>[()+;*=])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"id", "drop", "dup", "filter", "if", "then", "else",
             "true", "false", "and", "or", "not"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PolicyError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._index = 0

    # --- cursor helpers ----------------------------------------------------

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of input")
        self._index += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token[1] == text:
            self._index += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        token = self._peek()
        if token is None or token[1] != text:
            found = token[1] if token else "end of input"
            raise PolicyError(f"expected {text!r}, found {found!r}")
        self._index += 1

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # --- policies -----------------------------------------------------------

    def policy(self) -> Policy:
        left = self.sequence()
        while self._accept("+"):
            left = union(left, self.sequence())
        return left

    def sequence(self) -> Policy:
        left = self.starred()
        while self._accept(";"):
            left = seq(left, self.starred())
        return left

    def starred(self) -> Policy:
        atom = self.policy_atom()
        while self._accept("*"):
            atom = star(atom)
        return atom

    def policy_atom(self) -> Policy:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of input in policy")
        kind, text = token
        if text == "(":
            self._next()
            inner = self.policy()
            self._expect(")")
            return inner
        if text == "id":
            self._next()
            return ID
        if text == "drop":
            self._next()
            return DROP
        if text == "dup":
            self._next()
            return Dup()
        if text == "filter":
            self._next()
            return Filter(self.predicate())
        if text == "if":
            self._next()
            pred = self.predicate()
            self._expect("then")
            then = self.policy()
            self._expect("else")
            otherwise = self.policy()
            return ite(pred, then, otherwise)
        if kind == "ident" and text not in _KEYWORDS:
            self._next()
            self._expect(":=")
            return mod(text, self.value())
        raise PolicyError(f"unexpected token {text!r} in policy")

    # --- predicates ------------------------------------------------------------

    def predicate(self) -> Predicate:
        left = self.pred_and()
        while self._accept("or"):
            left = por(left, self.pred_and())
        return left

    def pred_and(self) -> Predicate:
        left = self.pred_unary()
        while self._accept("and"):
            left = pand(left, self.pred_unary())
        return left

    def pred_unary(self) -> Predicate:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of input in predicate")
        kind, text = token
        if text == "not":
            self._next()
            return pnot(self.pred_unary())
        if text == "true":
            self._next()
            return TRUE
        if text == "false":
            self._next()
            return FALSE
        if text == "(":
            self._next()
            inner = self.predicate()
            self._expect(")")
            return inner
        if kind == "ident" and text not in _KEYWORDS:
            self._next()
            self._expect("=")
            return test(text, self.value())
        raise PolicyError(f"unexpected token {text!r} in predicate")

    def value(self):
        kind, text = self._next()
        if kind == "int":
            return int(text)
        if kind == "string":
            return text[1:-1]
        if kind == "ident" and text not in _KEYWORDS:
            return text
        raise PolicyError(f"expected a value, found {text!r}")


def parse_policy(text: str) -> Policy:
    """Parse the concrete NetKAT policy syntax."""
    parser = _Parser(_tokenize(text))
    policy = parser.policy()
    if not parser.at_end():
        raise PolicyError(f"trailing input after policy: {parser._peek()[1]!r}")
    return policy


def parse_predicate(text: str) -> Predicate:
    """Parse the concrete NetKAT predicate syntax."""
    parser = _Parser(_tokenize(text))
    pred = parser.predicate()
    if not parser.at_end():
        raise PolicyError(f"trailing input after predicate: {parser._peek()[1]!r}")
    return pred
