"""Install compiled NetKAT policies onto PISA switches.

Closes the loop between the two substrates the paper combines: a
dup-free NetKAT policy compiles (via the FDD) to prioritized flow
rules, which this module turns into a generated dataplane program plus
P4Runtime table writes. The special field ``port`` maps to the
switch's egress spec; every other field must be a packet field the
PISA context exposes (``ipv4.dst``, ``udp.dst_port``, ...).

Multicast rules (an FDD leaf with several alternative rewrites) do not
fit a single match-action table entry and are rejected; that fragment
belongs to the semantics layer, not to one switch's table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netkat.ast import Policy
from repro.netkat.fdd import FlowRule, compile_policy, fdd_to_flow_rules
from repro.pisa.actions import Action, Primitive, Step
from repro.pisa.program import DataplaneProgram, TableSpec
from repro.pisa.programs import standard_parser
from repro.pisa.runtime import P4Runtime, TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.util.errors import PolicyError

NETKAT_TABLE = "netkat"
PORT_FIELD = "port"

# Bit widths for ternary keys on known packet fields.
_FIELD_WIDTHS: Dict[str, int] = {
    "eth.dst": 48,
    "eth.src": 48,
    "eth.ethertype": 16,
    "ipv4.src": 32,
    "ipv4.dst": 32,
    "ipv4.protocol": 8,
    "ipv4.ttl": 8,
    "ipv4.dscp": 8,
    "udp.src_port": 16,
    "udp.dst_port": 16,
    "tcp.src_port": 16,
    "tcp.dst_port": 16,
}


def _field_width(field: str) -> int:
    return _FIELD_WIDTHS.get(field, 32)


def _rule_action(index: int, rule: FlowRule) -> Action:
    """Generate the compiler action for one flow rule."""
    if not rule.actions:
        return Action(f"nk_drop_{index}", (Step(Primitive.DROP),))
    if len(rule.actions) > 1:
        raise PolicyError(
            "multicast NetKAT rules cannot install into a single "
            "match-action table"
        )
    (mods,) = rule.actions
    steps: List[Step] = []
    for field, value in mods:
        if field == PORT_FIELD:
            if not isinstance(value, int):
                raise PolicyError(f"egress port must be an int, got {value!r}")
            steps.append(Step(Primitive.FORWARD, (value,)))
        else:
            if not isinstance(value, int):
                raise PolicyError(
                    f"packet field {field!r} needs an int value, got {value!r}"
                )
            steps.append(Step(Primitive.SET_FIELD, (field, value)))
    if not steps:
        steps.append(Step(Primitive.NO_OP))
    return Action(f"nk_rule_{index}", tuple(steps))


def compile_to_program(
    policy: Policy,
    name: str = "netkat",
    version: str = "v1",
    key_fields: Optional[Sequence[str]] = None,
) -> Tuple[DataplaneProgram, List[TableEntry]]:
    """Compile ``policy`` into a generated program plus its entries.

    ``key_fields`` defaults to every packet field the policy tests;
    passing it explicitly lets several policies share one table layout.
    """
    rules = fdd_to_flow_rules(compile_policy(policy))
    tested: List[str] = []
    for rule in rules:
        for field, _value in rule.matches:
            if field != PORT_FIELD and field not in tested:
                tested.append(field)
    fields = list(key_fields) if key_fields is not None else sorted(tested)
    for field in tested:
        if field not in fields:
            raise PolicyError(
                f"policy tests field {field!r} missing from key_fields"
            )
    if not fields:
        fields = ["ipv4.dst"]  # a table needs at least one key

    actions = [_rule_action(i, rule) for i, rule in enumerate(rules)]
    actions.append(Action("nk_default_drop", (Step(Primitive.DROP),)))
    program = DataplaneProgram(
        name=name,
        version=version,
        parser=standard_parser(),
        tables=(
            TableSpec(
                name=NETKAT_TABLE,
                key_fields=tuple(fields),
                key_kinds=tuple("ternary" for _ in fields),
                allowed_actions=tuple(a.name for a in actions),
                default_action="nk_default_drop",
                max_entries=max(1024, len(rules) * 2),
            ),
        ),
        actions=tuple(actions),
    )
    entries: List[TableEntry] = []
    for index, rule in enumerate(rules):
        matched = dict(rule.matches)
        if any(f == PORT_FIELD for f in matched):
            raise PolicyError(
                "policies installed on a switch cannot test 'port'; "
                "match on packet fields instead"
            )
        keys = []
        for field in fields:
            if field in matched:
                value = matched[field]
                if not isinstance(value, int):
                    raise PolicyError(
                        f"packet field {field!r} needs an int test value"
                    )
                width = _field_width(field)
                keys.append(MatchKey(
                    MatchKind.TERNARY, value,
                    mask=(1 << width) - 1, bit_width=width,
                ))
            else:
                keys.append(MatchKey(
                    MatchKind.TERNARY, 0, mask=0,
                    bit_width=_field_width(field),
                ))
        entries.append(TableEntry(
            table=NETKAT_TABLE,
            keys=tuple(keys),
            action=f"nk_rule_{index}" if rule.actions else f"nk_drop_{index}",
            priority=rule.priority,
        ))
    return program, entries


def install_policy(
    runtime: P4Runtime,
    controller: str,
    policy: Policy,
    key_fields: Optional[Sequence[str]] = None,
) -> int:
    """Compile ``policy`` and install program + entries on ``runtime``.

    Returns the number of table entries written.
    """
    program, entries = compile_to_program(policy, key_fields=key_fields)
    runtime.set_forwarding_pipeline_config(controller, program)
    for entry in entries:
        runtime.write(controller, entry)
    return len(entries)
