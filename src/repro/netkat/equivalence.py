"""Deciding equivalence of dup-free NetKAT policies.

NetKAT has a complete equational theory; for the dup-free (per-switch)
fragment, equivalence is decidable by compiling both sides to FDDs and
comparing them as functions over their joint test basis
(:func:`repro.netkat.fdd.fdd_equivalent`). This is the procedure the
test suite uses to check the KAT axioms hold of the implementation —
and that the compiler respects them.
"""

from __future__ import annotations

from repro.netkat.ast import Policy
from repro.netkat.fdd import compile_policy, fdd_equivalent


def equivalent(left: Policy, right: Policy) -> bool:
    """Semantic equality of two dup-free policies.

    Raises :class:`~repro.util.errors.PolicyError` when either side
    contains ``dup`` (history-sensitive equivalence needs the automata
    construction, which single-switch reasoning never does).
    """
    return fdd_equivalent(compile_policy(left), compile_policy(right))


def implies(left: Policy, right: Policy) -> bool:
    """Policy inclusion: does ``right`` subsume ``left``?

    ``left ≤ right`` iff ``left + right ≡ right`` (the standard KAT
    ordering).
    """
    from repro.netkat.ast import union

    return equivalent(union(left, right), right)
