"""Forwarding decision diagrams: NetKAT local compilation.

Follows the approach of the NetKAT compiler literature (Smolka et al.,
"A Fast Compiler for NetKAT"): a policy without ``dup`` compiles to a
*forwarding decision diagram* — a binary decision tree whose internal
nodes test ``field = value`` and whose leaves are sets of modification
maps (each map is one way the packet may be rewritten; the empty set
drops). FDDs then flatten to prioritized flow rules with first-match
semantics, which is what gets installed into a switch table.

``Star`` is supported in its *local* form (fixpoint over packet
rewrites); ``Dup`` is inherently non-local and is rejected — histories
belong to the semantics module, not to a single switch's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple, Union as TypingUnion

from repro.netkat.ast import (
    And,
    Dup,
    Filter,
    Mod,
    Not,
    Or,
    PFalse,
    Policy,
    Predicate,
    PTrue,
    Seq,
    Star,
    Test,
    Union,
    Value,
)
from repro.netkat.semantics import NkPacket
from repro.util.errors import PolicyError

# One modification map, as a sorted tuple of (field, value) pairs.
Mods = Tuple[Tuple[str, Value], ...]


def _mods(mapping: Dict[str, Value]) -> Mods:
    return tuple(sorted(mapping.items()))


def _value_key(value: Value) -> Tuple[int, str]:
    """Total order over mixed int/str values."""
    if isinstance(value, int):
        return (0, f"{value:020d}")
    return (1, str(value))


def _test_key(field: str, value: Value) -> Tuple[str, Tuple[int, str]]:
    return (field, _value_key(value))


@dataclass(frozen=True)
class Leaf:
    """A set of alternative rewrites; empty set = drop, {()} = id."""

    actions: FrozenSet[Mods]


@dataclass(frozen=True)
class Branch:
    """Test ``field = value``: take ``hi`` if it holds, else ``lo``."""

    field: str
    value: Value
    hi: "Fdd"
    lo: "Fdd"


Fdd = TypingUnion[Leaf, Branch]

LEAF_DROP = Leaf(frozenset())
LEAF_ID = Leaf(frozenset({()}))


def _mk_branch(field: str, value: Value, hi: Fdd, lo: Fdd) -> Fdd:
    if hi == lo:
        return hi
    return Branch(field, value, hi, lo)


# --- core operations ---------------------------------------------------------


def fdd_union(d1: Fdd, d2: Fdd) -> Fdd:
    if isinstance(d1, Leaf) and isinstance(d2, Leaf):
        return Leaf(d1.actions | d2.actions)
    if isinstance(d1, Leaf):
        d1, d2 = d2, d1
    assert isinstance(d1, Branch)
    if isinstance(d2, Branch):
        k1, k2 = _test_key(d1.field, d1.value), _test_key(d2.field, d2.value)
        if k1 == k2:
            return _mk_branch(
                d1.field, d1.value, fdd_union(d1.hi, d2.hi), fdd_union(d1.lo, d2.lo)
            )
        if k1 > k2:
            d1, d2 = d2, d1
    return _mk_branch(
        d1.field, d1.value, fdd_union(d1.hi, d2), fdd_union(d1.lo, d2)
    )


def _apply_mods(mods: Mods, d: Fdd) -> Fdd:
    """Sequence one concrete rewrite before ``d``.

    Tests on fields that ``mods`` pins are decided immediately; leaf
    rewrites compose (later writes win).
    """
    pinned = dict(mods)
    if isinstance(d, Leaf):
        composed = frozenset(
            _mods({**pinned, **dict(action)}) for action in d.actions
        )
        return Leaf(composed)
    if d.field in pinned:
        follow = d.hi if pinned[d.field] == d.value else d.lo
        return _apply_mods(mods, follow)
    return _mk_branch(
        d.field, d.value, _apply_mods(mods, d.hi), _apply_mods(mods, d.lo)
    )


def fdd_seq(d1: Fdd, d2: Fdd) -> Fdd:
    if isinstance(d1, Leaf):
        if not d1.actions:
            return LEAF_DROP
        result: Fdd = LEAF_DROP
        for action in d1.actions:
            result = fdd_union(result, _apply_mods(action, d2))
        return result
    return _mk_branch(
        d1.field, d1.value, fdd_seq(d1.hi, d2), fdd_seq(d1.lo, d2)
    )


def fdd_negate(d: Fdd) -> Fdd:
    """Negate a *predicate* FDD (leaves must be id or drop)."""
    if isinstance(d, Leaf):
        if d.actions == frozenset():
            return LEAF_ID
        if d.actions == frozenset({()}):
            return LEAF_DROP
        raise PolicyError("cannot negate an FDD with modifications in leaves")
    return _mk_branch(d.field, d.value, fdd_negate(d.hi), fdd_negate(d.lo))


def _test_basis(d: Fdd) -> Dict[str, Set[Value]]:
    """All fields and values mentioned by an FDD's tests and rewrites."""
    basis: Dict[str, Set[Value]] = {}

    def visit(node: Fdd) -> None:
        if isinstance(node, Branch):
            basis.setdefault(node.field, set()).add(node.value)
            visit(node.hi)
            visit(node.lo)
        else:
            for action in node.actions:
                for field, value in action:
                    basis.setdefault(field, set()).add(value)

    visit(d)
    return basis


def fdd_equivalent(d1: Fdd, d2: Fdd) -> bool:
    """Semantic equality of two FDDs.

    Two FDDs denote the same function iff they agree on every packet
    over their joint test basis, extended with one fresh value per
    field (representing "any other value"). The basis is finite, so
    this is a complete decision procedure.
    """
    basis = _test_basis(d1)
    for field, values in _test_basis(d2).items():
        basis.setdefault(field, set()).update(values)
    if not basis:
        return eval_fdd(d1, NkPacket()) == eval_fdd(d2, NkPacket())
    fields = sorted(basis)
    value_choices = []
    for field in fields:
        fresh = f"__other_{field}__"
        value_choices.append(sorted(basis[field], key=_value_key) + [fresh])

    def packets(index: int, acc: Dict[str, Value]):
        if index == len(fields):
            yield NkPacket(acc)
            return
        for value in value_choices[index]:
            yield from packets(index + 1, {**acc, fields[index]: value})

    return all(
        eval_fdd(d1, packet) == eval_fdd(d2, packet)
        for packet in packets(0, {})
    )


def fdd_star(d: Fdd, max_iterations: int = 100) -> Fdd:
    """Local Kleene star: least fixpoint of ``s = id + d ; s``.

    Convergence is checked *semantically* (:func:`fdd_equivalent`):
    the sequence stabilises as a function after finitely many steps,
    but intermediate trees need not be syntactically canonical.
    """
    current: Fdd = LEAF_ID
    for _ in range(max_iterations):
        nxt = fdd_union(LEAF_ID, fdd_seq(d, current))
        if nxt == current or fdd_equivalent(nxt, current):
            return current
        current = nxt
    raise PolicyError(f"FDD star did not converge in {max_iterations} iterations")


# --- compilation ------------------------------------------------------------


def compile_predicate(pred: Predicate) -> Fdd:
    if isinstance(pred, PTrue):
        return LEAF_ID
    if isinstance(pred, PFalse):
        return LEAF_DROP
    if isinstance(pred, Test):
        return Branch(pred.field, pred.value, LEAF_ID, LEAF_DROP)
    if isinstance(pred, And):
        return fdd_seq(compile_predicate(pred.left), compile_predicate(pred.right))
    if isinstance(pred, Or):
        return fdd_union(
            compile_predicate(pred.left), compile_predicate(pred.right)
        )
    if isinstance(pred, Not):
        return fdd_negate(compile_predicate(pred.pred))
    raise PolicyError(f"unknown predicate node {type(pred).__name__}")


def compile_policy(policy: Policy) -> Fdd:
    """Compile a dup-free policy to an FDD."""
    if isinstance(policy, Filter):
        return compile_predicate(policy.pred)
    if isinstance(policy, Mod):
        return Leaf(frozenset({_mods({policy.field: policy.value})}))
    if isinstance(policy, Union):
        return fdd_union(compile_policy(policy.left), compile_policy(policy.right))
    if isinstance(policy, Seq):
        return fdd_seq(compile_policy(policy.left), compile_policy(policy.right))
    if isinstance(policy, Star):
        return fdd_star(compile_policy(policy.policy))
    if isinstance(policy, Dup):
        raise PolicyError(
            "dup is not locally compilable; it belongs to network-wide semantics"
        )
    raise PolicyError(f"unknown policy node {type(policy).__name__}")


def eval_fdd(d: Fdd, packet: NkPacket) -> Set[NkPacket]:
    """Run a packet through an FDD (reference semantics for testing)."""
    while isinstance(d, Branch):
        d = d.hi if packet.get(d.field) == d.value else d.lo
    results: Set[NkPacket] = set()
    for action in d.actions:
        out = packet
        for field, value in action:
            out = out.set(field, value)
        results.add(out)
    return results


# --- flattening to flow rules ---------------------------------------------------


@dataclass(frozen=True)
class FlowRule:
    """One prioritized rule: exact-match tests → alternative rewrites.

    First-match semantics: rules are examined in descending priority;
    the first whose ``matches`` all hold fires. ``actions`` empty means
    drop.
    """

    priority: int
    matches: Tuple[Tuple[str, Value], ...]
    actions: FrozenSet[Mods]


def fdd_to_flow_rules(d: Fdd) -> List[FlowRule]:
    """Flatten an FDD into a first-match rule list.

    DFS with true-branch first: any packet satisfying a path's positive
    tests that *also* satisfies an earlier rule's tests already matched
    that earlier rule, so negative constraints on false-edges never
    need to be emitted (the classic FDD-to-TCAM argument). Paths whose
    constraints are contradictory are skipped.
    """
    rules: List[FlowRule] = []

    def walk(
        node: Fdd,
        positives: Dict[str, Value],
        negatives: Set[Tuple[str, Value]],
    ) -> None:
        if isinstance(node, Leaf):
            rules.append(
                FlowRule(
                    priority=0,  # assigned after enumeration
                    matches=tuple(sorted(positives.items())),
                    actions=node.actions,
                )
            )
            return
        # hi: field = value. Contradicts a pinned different value or a
        # recorded disequality.
        pinned = positives.get(node.field)
        if pinned is None:
            if (node.field, node.value) not in negatives:
                walk(node.hi, {**positives, node.field: node.value}, negatives)
            walk(node.lo, positives, negatives | {(node.field, node.value)})
        elif pinned == node.value:
            walk(node.hi, positives, negatives)
        else:
            walk(node.lo, positives, negatives)

    walk(d, {}, set())
    total = len(rules)
    return [
        FlowRule(priority=total - i, matches=rule.matches, actions=rule.actions)
        for i, rule in enumerate(rules)
    ]


def eval_flow_rules(rules: List[FlowRule], packet: NkPacket) -> Set[NkPacket]:
    """First-match evaluation of a rule list (reference for testing)."""
    for rule in sorted(rules, key=lambda r: -r.priority):
        if all(packet.get(field) == value for field, value in rule.matches):
            results: Set[NkPacket] = set()
            for action in rule.actions:
                out = packet
                for field, value in action:
                    out = out.set(field, value)
                results.add(out)
            return results
    return set()
