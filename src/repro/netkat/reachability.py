"""Topology encoding and reachability queries.

The standard NetKAT network model: packets carry ``switch`` and
``port`` fields; the topology is a policy ``t`` that teleports a packet
sitting at one end of a link to the other end; the network is
``(p ; t)*`` for a hop policy ``p``. Reachability ("can a packet at A
ever satisfy predicate B?") is then star-evaluation — the exact
machinery the paper's ``*⇒`` and ``▶`` operators lean on (§5.1,
Prim1/Prim3).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.net.topology import Topology
from repro.netkat.ast import (
    Filter,
    Policy,
    Predicate,
    mod,
    pand,
    seq,
    star,
    test,
    union,
    DROP,
)
from repro.netkat.semantics import NkPacket, eval_policy, eval_predicate

SWITCH_FIELD = "switch"
PORT_FIELD = "port"


def topology_policy(topology: Topology) -> Policy:
    """Encode every link as a pair of teleport rules."""
    rules: List[Policy] = []
    for link in topology.links:
        for here, here_port, there, there_port in (
            (link.node_a, link.port_a, link.node_b, link.port_b),
            (link.node_b, link.port_b, link.node_a, link.port_a),
        ):
            rules.append(
                seq(
                    Filter(
                        pand(
                            test(SWITCH_FIELD, here), test(PORT_FIELD, here_port)
                        )
                    ),
                    mod(SWITCH_FIELD, there),
                    mod(PORT_FIELD, there_port),
                )
            )
    return union(*rules) if rules else DROP


def network_policy(hop_policy: Policy, topo_policy: Policy) -> Policy:
    """The standard end-to-end model ``(p ; t)* ; p``."""
    return seq(star(seq(hop_policy, topo_policy)), hop_policy)


def reachable(
    hop_policy: Policy,
    topo_policy: Policy,
    start: NkPacket,
    goal: Predicate,
) -> bool:
    """Is a packet satisfying ``goal`` reachable from ``start``?"""
    results = eval_policy(network_policy(hop_policy, topo_policy), (start,))
    return any(eval_predicate(goal, history[0]) for history in results)


def reachable_set(
    hop_policy: Policy, topo_policy: Policy, start: NkPacket
) -> Set[NkPacket]:
    """All packet states reachable from ``start`` through the network."""
    results = eval_policy(network_policy(hop_policy, topo_policy), (start,))
    return {history[0] for history in results}


def forwarding_hop_policy(
    topology: Topology, next_hop_ports: Dict[tuple, int], destination_field: str = "dst"
) -> Policy:
    """Build a hop policy from a next-hop table.

    ``next_hop_ports`` maps ``(switch, destination_value)`` to the
    egress port (e.g. the output of
    :func:`repro.net.routing.all_pairs_next_hop`). Hosts deliver
    (identity) when the packet's destination equals the host itself.
    """
    rules: List[Policy] = []
    for (switch, destination), port in sorted(next_hop_ports.items()):
        rules.append(
            seq(
                Filter(
                    pand(
                        test(SWITCH_FIELD, switch),
                        test(destination_field, destination),
                    )
                ),
                mod(PORT_FIELD, port),
            )
        )
    # Delivery at the destination node itself.
    for name in topology.node_names:
        rules.append(
            Filter(
                pand(test(SWITCH_FIELD, name), test(destination_field, name))
            )
        )
    return union(*rules) if rules else DROP
