"""NetKAT: semantic foundations for networks (Anderson et al. 2014).

The paper borrows three things from NetKAT for its hybrid language:
the Kleene star (path abstraction), Boolean tests (the ``▶`` prefix),
and reachability reasoning. This package implements the full base
language anyway:

- :mod:`repro.netkat.ast` — predicates and policies.
- :mod:`repro.netkat.parser` — concrete syntax.
- :mod:`repro.netkat.semantics` — denotational packet-history semantics.
- :mod:`repro.netkat.fdd` — forwarding decision diagrams and local
  compilation to prioritized flow rules.
- :mod:`repro.netkat.reachability` — topology encoding and reachability
  queries (the ``▶``/``*⇒`` substrate).
"""

from repro.netkat.ast import (
    Predicate,
    PTrue,
    PFalse,
    Test,
    And,
    Or,
    Not,
    Policy,
    Filter,
    Mod,
    Union,
    Seq,
    Star,
    Dup,
    ID,
    DROP,
    test,
    mod,
    seq,
    union,
    star,
    ite,
)
from repro.netkat.parser import parse_policy, parse_predicate
from repro.netkat.semantics import NkPacket, eval_policy, eval_predicate
from repro.netkat.fdd import Fdd, compile_policy, FlowRule, fdd_to_flow_rules
from repro.netkat.reachability import (
    topology_policy,
    network_policy,
    reachable,
    reachable_set,
)
from repro.netkat.printer import predicate_to_text, policy_to_text
from repro.netkat.install import compile_to_program, install_policy

__all__ = [
    "Predicate",
    "PTrue",
    "PFalse",
    "Test",
    "And",
    "Or",
    "Not",
    "Policy",
    "Filter",
    "Mod",
    "Union",
    "Seq",
    "Star",
    "Dup",
    "ID",
    "DROP",
    "test",
    "mod",
    "seq",
    "union",
    "star",
    "ite",
    "parse_policy",
    "parse_predicate",
    "NkPacket",
    "eval_policy",
    "eval_predicate",
    "Fdd",
    "compile_policy",
    "FlowRule",
    "fdd_to_flow_rules",
    "topology_policy",
    "network_policy",
    "reachable",
    "reachable_set",
    "predicate_to_text",
    "policy_to_text",
    "compile_to_program",
    "install_policy",
]
