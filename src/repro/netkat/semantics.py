"""NetKAT denotational semantics over packet histories.

A packet is a finite field→value record; a history is a non-empty
sequence of packets with the *current* packet at the head. A policy
denotes a function from a history to a set of histories (Anderson et
al. 2014, Fig. 2):

    [filter a](h)  = {h} if a holds of head(h), else {}
    [f := v](h)    = {h with head updated}
    [p + q](h)     = [p](h) ∪ [q](h)
    [p ; q](h)     = ⋃ { [q](h') : h' ∈ [p](h) }
    [p*](h)        = least fixpoint of iteration
    [dup](h)       = {head(h) · h}

Star is computed by iteration to a fixpoint. With ``dup`` under a star
the history grows each round, so the fixpoint may not exist; the
evaluator bounds iteration and raises, which in practice only triggers
on policies that are genuinely non-terminating over the given packet.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from repro.netkat.ast import (
    And,
    Dup,
    Filter,
    Mod,
    Not,
    Or,
    PFalse,
    Policy,
    Predicate,
    PTrue,
    Seq,
    Star,
    Test,
    Union,
    Value,
)
from repro.util.errors import PolicyError


class NkPacket:
    """An immutable, hashable field→value record."""

    __slots__ = ("_items",)

    def __init__(self, fields: Optional[Mapping[str, Value]] = None) -> None:
        object.__setattr__(
            self, "_items", tuple(sorted((fields or {}).items()))
        )

    def get(self, field: str) -> Optional[Value]:
        for name, value in self._items:
            if name == field:
                return value
        return None

    def set(self, field: str, value: Value) -> "NkPacket":
        fields = dict(self._items)
        fields[field] = value
        return NkPacket(fields)

    def as_dict(self) -> Dict[str, Value]:
        return dict(self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NkPacket) and self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"NkPacket({inner})"


History = Tuple[NkPacket, ...]  # head first


def eval_predicate(pred: Predicate, packet: NkPacket) -> bool:
    """Decide ``pred`` on a single packet."""
    if isinstance(pred, PTrue):
        return True
    if isinstance(pred, PFalse):
        return False
    if isinstance(pred, Test):
        return packet.get(pred.field) == pred.value
    if isinstance(pred, And):
        return eval_predicate(pred.left, packet) and eval_predicate(
            pred.right, packet
        )
    if isinstance(pred, Or):
        return eval_predicate(pred.left, packet) or eval_predicate(
            pred.right, packet
        )
    if isinstance(pred, Not):
        return not eval_predicate(pred.pred, packet)
    raise PolicyError(f"unknown predicate node {type(pred).__name__}")


def eval_policy(
    policy: Policy, history: History, max_star_iterations: int = 1000
) -> Set[History]:
    """Evaluate ``policy`` on ``history``; returns the set of results."""
    if not history:
        raise PolicyError("histories must be non-empty")
    if isinstance(policy, Filter):
        return {history} if eval_predicate(policy.pred, history[0]) else set()
    if isinstance(policy, Mod):
        return {(history[0].set(policy.field, policy.value),) + history[1:]}
    if isinstance(policy, Union):
        return eval_policy(policy.left, history, max_star_iterations) | eval_policy(
            policy.right, history, max_star_iterations
        )
    if isinstance(policy, Seq):
        results: Set[History] = set()
        for intermediate in eval_policy(policy.left, history, max_star_iterations):
            results |= eval_policy(policy.right, intermediate, max_star_iterations)
        return results
    if isinstance(policy, Star):
        reached: Set[History] = {history}
        frontier: Set[History] = {history}
        for _ in range(max_star_iterations):
            next_frontier: Set[History] = set()
            for h in frontier:
                for out in eval_policy(policy.policy, h, max_star_iterations):
                    if out not in reached:
                        reached.add(out)
                        next_frontier.add(out)
            if not next_frontier:
                return reached
            frontier = next_frontier
        raise PolicyError(
            f"star did not converge within {max_star_iterations} iterations"
        )
    if isinstance(policy, Dup):
        return {(history[0],) + history}
    raise PolicyError(f"unknown policy node {type(policy).__name__}")


def run(policy: Policy, packet: NkPacket) -> Set[NkPacket]:
    """Evaluate on a single packet; return the set of *final* packets."""
    return {h[0] for h in eval_policy(policy, (packet,))}


def traces(policy: Policy, packet: NkPacket) -> Set[Tuple[NkPacket, ...]]:
    """Evaluate and return full histories oldest-first (trace order)."""
    return {tuple(reversed(h)) for h in eval_policy(policy, (packet,))}
