"""Printers emitting the concrete syntax the parsers accept.

``parse_predicate(predicate_to_text(p))`` round-trips structurally for
every predicate, which the wire format (:mod:`repro.core.wire`) relies
on when it ships guard tests inside packets.
"""

from __future__ import annotations

from repro.netkat.ast import (
    And,
    Dup,
    Filter,
    Mod,
    Not,
    Or,
    PFalse,
    Policy,
    Predicate,
    PTrue,
    Seq,
    Star,
    Test,
    Union,
    Value,
)
from repro.util.errors import PolicyError


def _value_to_text(value: Value) -> str:
    if isinstance(value, int):
        return str(value)
    return f'"{value}"'


def predicate_to_text(pred: Predicate) -> str:
    """Emit parseable concrete syntax for a predicate."""
    if isinstance(pred, PTrue):
        return "true"
    if isinstance(pred, PFalse):
        return "false"
    if isinstance(pred, Test):
        return f"{pred.field} = {_value_to_text(pred.value)}"
    if isinstance(pred, And):
        return (
            f"({predicate_to_text(pred.left)} and "
            f"{predicate_to_text(pred.right)})"
        )
    if isinstance(pred, Or):
        return (
            f"({predicate_to_text(pred.left)} or "
            f"{predicate_to_text(pred.right)})"
        )
    if isinstance(pred, Not):
        return f"not ({predicate_to_text(pred.pred)})"
    raise PolicyError(f"unknown predicate node {type(pred).__name__}")


def policy_to_text(policy: Policy) -> str:
    """Emit parseable concrete syntax for a policy."""
    if isinstance(policy, Filter):
        if isinstance(policy.pred, PTrue):
            return "id"
        if isinstance(policy.pred, PFalse):
            return "drop"
        return f"filter {predicate_to_text(policy.pred)}"
    if isinstance(policy, Mod):
        return f"{policy.field} := {_value_to_text(policy.value)}"
    if isinstance(policy, Union):
        return f"({policy_to_text(policy.left)} + {policy_to_text(policy.right)})"
    if isinstance(policy, Seq):
        return f"({policy_to_text(policy.left)} ; {policy_to_text(policy.right)})"
    if isinstance(policy, Star):
        return f"({policy_to_text(policy.policy)})*"
    if isinstance(policy, Dup):
        return "dup"
    raise PolicyError(f"unknown policy node {type(policy).__name__}")
