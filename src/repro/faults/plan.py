"""Typed, seeded fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a declarative schedule of :class:`FaultEvent`s
— link loss, link down/flap windows, packet bit-corruption, switch
compromise, node crash/restart, clock skew, evidence tampering and
stripping — plus the seed that drives every probabilistic decision the
injector makes. The plan is pure data: building one touches no
simulator state, so the same plan can be attached to many runs (the
determinism property tests do exactly that).

Determinism contract: a plan's schedule is fully ordered by
``(time_s, insertion order)``, fault probabilities are drawn from a
``random.Random(plan.seed)`` owned by the injector (never the
simulator's loss RNG, never wall clock), and fault *application* rides
the simulator's event queue — so two runs of the same scenario with
the same plan replay byte-identically, audit journal included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple


class FaultKind:
    """Fault-kind vocabulary (plain strings, like audit kinds)."""

    LINK_LOSS = "link_loss"
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    PACKET_CORRUPT = "packet_corrupt"
    SWITCH_COMPROMISE = "switch_compromise"
    NODE_CRASH = "node_crash"
    NODE_RESTART = "node_restart"
    CLOCK_SKEW = "clock_skew"
    EVIDENCE_TAMPER = "evidence_tamper"
    EVIDENCE_STRIP_OOB = "evidence_strip_oob"
    EVIDENCE_STRIP_INBAND = "evidence_strip_inband"

    ALL = (
        LINK_LOSS,
        LINK_DOWN,
        LINK_UP,
        PACKET_CORRUPT,
        SWITCH_COMPROMISE,
        NODE_CRASH,
        NODE_RESTART,
        CLOCK_SKEW,
        EVIDENCE_TAMPER,
        EVIDENCE_STRIP_OOB,
        EVIDENCE_STRIP_INBAND,
    )


def link_key(a: str, b: str) -> str:
    """Direction-agnostic link name (``"s1|s2"`` whichever end sends)."""
    return "|".join(sorted((a, b)))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault activation (immutable once planned)."""

    time_s: float
    kind: str
    target: str  # a node name, or a link_key() for link-scoped faults
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault scheduled in the past ({self.time_s})")
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def describe(self) -> str:
        extra = ""
        if self.params:
            shown = {
                key: value
                for key, value in self.params.items()
                if not callable(value)
            }
            if shown:
                extra = f" {shown}"
        return f"t={self.time_s:.6f}s {self.kind} @ {self.target}{extra}"


class FaultPlan:
    """A seeded, ordered schedule of faults (fluent builder)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._events: List[FaultEvent] = []

    # --- generic -----------------------------------------------------------

    def add(
        self,
        time_s: float,
        kind: str,
        target: str,
        **params: object,
    ) -> "FaultPlan":
        self._events.append(
            FaultEvent(time_s=time_s, kind=kind, target=target, params=params)
        )
        return self

    # --- link faults -------------------------------------------------------

    def link_loss(
        self, time_s: float, a: str, b: str, rate: float
    ) -> "FaultPlan":
        """Add ``rate`` extra loss on the a—b link (0 clears it)."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate {rate} outside [0, 1)")
        return self.add(time_s, FaultKind.LINK_LOSS, link_key(a, b), rate=rate)

    def link_down(
        self,
        time_s: float,
        a: str,
        b: str,
        duration_s: Optional[float] = None,
    ) -> "FaultPlan":
        """Take the a—b link down (forever, or for ``duration_s``)."""
        self.add(time_s, FaultKind.LINK_DOWN, link_key(a, b))
        if duration_s is not None:
            if duration_s <= 0:
                raise ValueError(f"down window must be positive ({duration_s})")
            self.add(time_s + duration_s, FaultKind.LINK_UP, link_key(a, b))
        return self

    def link_flap(
        self,
        time_s: float,
        a: str,
        b: str,
        down_s: float,
        up_s: float,
        cycles: int = 1,
    ) -> "FaultPlan":
        """``cycles`` alternating down/up windows starting at ``time_s``."""
        if cycles < 1:
            raise ValueError(f"flap needs at least one cycle ({cycles})")
        at = time_s
        for _ in range(cycles):
            self.link_down(at, a, b, duration_s=down_s)
            at += down_s + up_s
        return self

    def corrupt_packets(
        self,
        time_s: float,
        a: str,
        b: str,
        rate: float,
        duration_s: Optional[float] = None,
    ) -> "FaultPlan":
        """Flip one payload/shim byte in ``rate`` of a—b crossings."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate {rate} outside [0, 1]")
        self.add(time_s, FaultKind.PACKET_CORRUPT, link_key(a, b), rate=rate)
        if duration_s is not None:
            self.add(
                time_s + duration_s,
                FaultKind.PACKET_CORRUPT,
                link_key(a, b),
                rate=0.0,
            )
        return self

    # --- node faults -------------------------------------------------------

    def compromise_switch(
        self,
        time_s: float,
        switch: str,
        program_factory: Callable[[], object],
        configure: Optional[Callable[[object, str], None]] = None,
        actor: str = "attacker",
    ) -> "FaultPlan":
        """Swap a tampered program onto ``switch`` at ``time_s``.

        ``program_factory`` builds the rogue program (a callable so
        this layer never imports PISA); ``configure(switch, actor)``
        optionally writes the intruder's table entries afterwards.
        """
        return self.add(
            time_s,
            FaultKind.SWITCH_COMPROMISE,
            switch,
            program_factory=program_factory,
            configure=configure,
            actor=actor,
        )

    def crash_node(self, time_s: float, node: str) -> "FaultPlan":
        """Crash ``node``: all traffic and control to it drops."""
        return self.add(time_s, FaultKind.NODE_CRASH, node)

    def restart_node(self, time_s: float, node: str) -> "FaultPlan":
        """Bring a crashed ``node`` back (state intact, like a warm boot)."""
        return self.add(time_s, FaultKind.NODE_RESTART, node)

    def clock_skew(
        self, time_s: float, node: str, skew_s: float
    ) -> "FaultPlan":
        """Skew ``node``'s evidence-cache clock by ``skew_s`` seconds."""
        return self.add(time_s, FaultKind.CLOCK_SKEW, node, skew_s=skew_s)

    # --- evidence faults ---------------------------------------------------

    def tamper_evidence(self, time_s: float, sender: str) -> "FaultPlan":
        """Corrupt signatures on control evidence sent by ``sender``."""
        return self.add(time_s, FaultKind.EVIDENCE_TAMPER, sender)

    def strip_evidence(self, time_s: float, sender: str) -> "FaultPlan":
        """Silently drop out-of-band evidence sent by ``sender``."""
        return self.add(time_s, FaultKind.EVIDENCE_STRIP_OOB, sender)

    def strip_inband(self, time_s: float, a: str, b: str) -> "FaultPlan":
        """Strip in-band hop records off packets crossing the a—b link."""
        return self.add(
            time_s, FaultKind.EVIDENCE_STRIP_INBAND, link_key(a, b)
        )

    # --- queries -----------------------------------------------------------

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """Events in insertion order (builders may interleave times)."""
        return tuple(self._events)

    def schedule(self) -> Tuple[FaultEvent, ...]:
        """Events in application order: by time, insertion order on ties."""
        return tuple(sorted(self._events, key=lambda e: e.time_s))

    def describe(self) -> str:
        """Human-readable timeline (the chaos examples print this)."""
        if not self._events:
            return f"fault plan (seed {self.seed}): no faults"
        lines = [f"fault plan (seed {self.seed}), {len(self._events)} events:"]
        lines.extend(f"  {event.describe()}" for event in self.schedule())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, events={len(self._events)})"


__all__ = ["FaultEvent", "FaultKind", "FaultPlan", "link_key"]
