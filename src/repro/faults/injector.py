"""The fault injector: applies a :class:`FaultPlan` to a live run.

The injector is the single hook the simulator consults (installed via
``Simulator.install_faults``, never monkey-patched): link-scoped
faults intercept :meth:`~repro.net.simulator.Simulator.transmit`,
node-scoped faults gate packet and control delivery, and evidence
faults filter the control channel. Timed activations ride the
simulator's own event queue, so fault application is ordered by the
same deterministic ``(time, seq)`` discipline as everything else.

Probabilistic faults (extra loss, bit corruption) draw from the
injector's own per-directed-link streams hashed from ``plan.seed`` —
separate from the simulator's loss RNG, so attaching a fault plan
never perturbs the baseline loss sequence of an existing scenario,
and keyed per link so the draw sequence is invariant under sharding
(see :mod:`repro.net.sharding`).

Sharding: the injector is shard-aware through two small simulator
capabilities. Activations are scheduled with
``schedule_replicated(owner_hint, ...)`` so state toggles (down links,
loss windows, crashed nodes) flip in *every* shard that might consult
them, while journaling, :class:`FaultStats` accounting, and node
mutations (compromise, clock skew) happen only in the shard that
``owns()`` the target — one logical fault, one audit event, one count,
no matter the partitioning.

Every activation lands in the audit journal as ``fault.injected`` (or
``fault.cleared`` for up/restart/rate-0 events), and per-packet effects
(a flipped bit, a stripped record stack) are journaled with the
victim packet's trace id, so ``repro.telemetry.report`` can narrate
exactly what broke and when.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, is_dataclass, replace
from typing import Any, Dict, Optional, Set, Tuple

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, link_key
from repro.telemetry.audit import AuditKind
from repro.util.clock import SkewedClock
from repro.util.errors import NetworkError
from repro.util.ids import spawn_seed

#: Election id the simulated intruder arbitrates with — high enough to
#: out-rank any honest controller that has not escalated yet.
COMPROMISE_ELECTION_ID = 1 << 20

_AUDIT_ACTOR = "faults"


@dataclass
class FaultStats:
    """What the injector actually did to the run."""

    injected: int = 0
    cleared: int = 0
    extra_losses: int = 0
    link_down_drops: int = 0
    packets_corrupted: int = 0
    records_stripped: int = 0
    control_stripped: int = 0
    control_tampered: int = 0


class FaultInjector:
    """Applies one :class:`FaultPlan` to one simulator run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        # One lazily-spawned stream per (purpose, directed link): the
        # draws for a given link happen in its sender's causal order
        # regardless of partitioning, so keyed streams replay
        # identically at any shard count.
        self._streams: Dict[Tuple[str, str], random.Random] = {}
        self._sim = None
        self._telemetry = None
        self._down_links: Set[str] = set()
        self._down_nodes: Set[str] = set()
        self._loss: Dict[str, float] = {}
        self._corrupt: Dict[str, float] = {}
        self._strip_inband: Set[str] = set()
        self._strip_oob: Set[str] = set()
        self._tamper: Set[str] = set()

    # --- wiring ------------------------------------------------------------

    def attach(self, sim) -> "FaultInjector":
        """Install onto ``sim`` and schedule every planned activation."""
        if self._sim is not None:
            raise NetworkError("fault injector is already attached")
        self._sim = sim
        self._telemetry = sim.telemetry
        sim.install_faults(self)
        for event in self.plan.schedule():
            delay = max(0.0, event.time_s - sim.clock.now)
            sim.schedule_replicated(
                self._owner_hint(event), delay, lambda e=event: self._apply(e)
            )
        return self

    @staticmethod
    def _owner_hint(event: FaultEvent) -> str:
        """The node whose shard records (counts + journals) this event.

        Link targets are ``"a|b"`` (sorted by :func:`link_key`); the
        lexicographic min endpoint is the canonical recorder, so the
        choice depends only on the target, never on the partitioning.
        """
        target = event.target
        return min(target.split("|")) if "|" in target else target

    def _stream(self, purpose: str, key: str) -> random.Random:
        """The fault RNG for one (purpose, directed link)."""
        stream = self._streams.get((purpose, key))
        if stream is None:
            stream = random.Random(
                spawn_seed(self.plan.seed, "fault", purpose, key)
            )
            self._streams[(purpose, key)] = stream
        return stream

    # --- activation --------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        kind, target, params = event.kind, event.target, event.params
        # State toggles apply in every shard (any shard may consult
        # them on its half of a cut link); accounting, journaling and
        # node mutations happen only where the canonical recorder node
        # is owned — one logical fault, one audit event, one count.
        record = self._sim.owns(self._owner_hint(event))
        cleared = False
        if kind == FaultKind.LINK_DOWN:
            self._down_links.add(target)
        elif kind == FaultKind.LINK_UP:
            self._down_links.discard(target)
            cleared = True
        elif kind == FaultKind.LINK_LOSS:
            rate = float(params.get("rate", 0.0))
            if rate > 0:
                self._loss[target] = rate
            else:
                self._loss.pop(target, None)
                cleared = True
        elif kind == FaultKind.PACKET_CORRUPT:
            rate = float(params.get("rate", 0.0))
            if rate > 0:
                self._corrupt[target] = rate
            else:
                self._corrupt.pop(target, None)
                cleared = True
        elif kind == FaultKind.NODE_CRASH:
            self._down_nodes.add(target)
        elif kind == FaultKind.NODE_RESTART:
            self._down_nodes.discard(target)
            cleared = True
        elif kind == FaultKind.CLOCK_SKEW:
            if record:
                self._apply_clock_skew(
                    target, float(params.get("skew_s", 0.0))
                )
        elif kind == FaultKind.SWITCH_COMPROMISE:
            if record:
                self._apply_compromise(event)
        elif kind == FaultKind.EVIDENCE_TAMPER:
            self._tamper.add(target)
        elif kind == FaultKind.EVIDENCE_STRIP_OOB:
            self._strip_oob.add(target)
        elif kind == FaultKind.EVIDENCE_STRIP_INBAND:
            self._strip_inband.add(target)
        if not record:
            return
        if cleared:
            self.stats.cleared += 1
        else:
            self.stats.injected += 1
        tel = self._telemetry
        if tel is not None and tel.active:
            tel.audit_event(
                AuditKind.FAULT_CLEARED if cleared else AuditKind.FAULT_INJECTED,
                _AUDIT_ACTOR,
                fault=kind,
                target=target,
            )
            # Cumulative change-event counters (the gauges named
            # ``faults.*`` are end-of-run snapshots): the flight
            # recorder samples these, so health rules can correlate a
            # fault's *activation window* with its symptoms — the only
            # frame-visible signal for faults whose dataplane effect is
            # silent here (e.g. clock skew under TRAFFIC_PATH).
            tel.counter(
                "faults.events",
                fault=kind,
                status="cleared" if cleared else "injected",
            ).inc()

    def _apply_compromise(self, event: FaultEvent) -> None:
        """Swap the tampered program in through P4Runtime arbitration.

        Duck-typed on ``runtime`` so this layer never imports PISA;
        the rogue program itself comes from the plan's factory.
        """
        node = self._sim.node(event.target)
        runtime = getattr(node, "runtime", None)
        if runtime is None:
            raise NetworkError(
                f"cannot compromise {event.target!r}: node has no P4Runtime"
            )
        factory = event.params["program_factory"]
        actor = str(event.params.get("actor", "attacker"))
        runtime.arbitrate(actor, COMPROMISE_ELECTION_ID)
        runtime.set_forwarding_pipeline_config(actor, factory())
        configure = event.params.get("configure")
        if configure is not None:
            configure(node, actor)

    def _apply_clock_skew(self, target: str, skew_s: float) -> None:
        node = self._sim.node(target)
        apply_skew = getattr(node, "apply_clock_skew", None)
        if apply_skew is not None:
            apply_skew(skew_s)
            return
        cache = getattr(node, "cache", None)
        bind = getattr(cache, "bind_clock", None)
        if bind is None:
            raise NetworkError(
                f"cannot skew clock of {target!r}: no skewable cache clock"
            )
        bind(SkewedClock(self._sim.clock, skew_s))

    # --- hooks the simulator consults --------------------------------------

    def node_is_down(self, name: str) -> bool:
        return name in self._down_nodes

    def filter_transmit(
        self, from_node: str, to_node: str, packet, detect_corruption: bool = False
    ) -> Tuple[Optional[str], Any]:
        """Apply link faults to one transmission attempt.

        Returns ``(drop_reason, packet)``: a non-None reason means the
        attempt is lost (the simulator counts the drop and may spend
        its resend budget); otherwise the possibly-mutated packet
        proceeds onto the wire.

        ``detect_corruption`` models a link whose receiver checks
        frame CRCs (the qdisc recovery protocol): a bit flip still
        happens on the wire, but instead of the corrupted packet
        propagating, the attempt is *lost* (``fault_corrupt``) for the
        sender to retransmit. Semantic attacks — record stripping,
        which rewrites the packet into a CRC-valid one — are
        deliberately *not* detectable this way.
        """
        key = link_key(from_node, to_node)
        directed = f"{from_node}>{to_node}"
        if key in self._down_links:
            self.stats.link_down_drops += 1
            return "fault_link_down", packet
        rate = self._loss.get(key, 0.0)
        if rate > 0 and self._stream("loss", directed).random() < rate:
            self.stats.extra_losses += 1
            return "fault_link_loss", packet
        if key in self._strip_inband:
            packet = self._strip_records(packet)
        rate = self._corrupt.get(key, 0.0)
        if rate > 0:
            rng = self._stream("corrupt", directed)
            if rng.random() < rate:
                if detect_corruption:
                    self.stats.packets_corrupted += 1
                    tel = self._telemetry
                    if tel.active:
                        tel.audit_event(
                            AuditKind.FAULT_INJECTED,
                            _AUDIT_ACTOR,
                            trace=packet.trace,
                            fault="bit_flip_detected",
                            target="packet",
                        )
                    return "fault_corrupt", packet
                packet = self._corrupt_packet(packet, rng)
        return None, packet

    def filter_control(
        self, sender: str, recipient: str, message: Any, trace=None
    ) -> Tuple[Optional[str], Any]:
        """Apply evidence faults to one control-channel send."""
        if sender in self._strip_oob:
            self.stats.control_stripped += 1
            return "fault_stripped", message
        if sender in self._tamper:
            tampered = self._tamper_message(message)
            if tampered is not message:
                self.stats.control_tampered += 1
                tel = self._telemetry
                if tel.active:
                    tel.audit_event(
                        AuditKind.FAULT_INJECTED,
                        _AUDIT_ACTOR,
                        trace=trace,
                        fault="signature_tamper",
                        target=sender,
                    )
                return None, tampered
        return None, message

    # --- per-packet mutations ----------------------------------------------

    def _corrupt_packet(self, packet, rng: random.Random):
        """Flip one byte: payload if present, else the shim body.

        Same-length mutation keeps every header length field
        consistent, so corruption is a semantic fault (bad signature,
        bad digest, undecodable TLV) rather than a framing crash.
        ``rng`` is the corrupting link's own stream, so the chosen
        byte replays identically under sharding.
        """
        mutated = packet
        if packet.payload:
            index = rng.randrange(len(packet.payload))
            payload = bytearray(packet.payload)
            payload[index] ^= 0xFF
            mutated = replace(packet, payload=bytes(payload))
        elif packet.ra_shim is not None and packet.ra_shim.body:
            shim = packet.ra_shim
            index = rng.randrange(len(shim.body))
            body = bytearray(shim.body)
            body[index] ^= 0xFF
            mutated = packet.with_shim(replace(shim, body=bytes(body)))
        if mutated is not packet:
            self.stats.packets_corrupted += 1
            tel = self._telemetry
            if tel.active:
                tel.audit_event(
                    AuditKind.FAULT_INJECTED,
                    _AUDIT_ACTOR,
                    trace=packet.trace,
                    fault="bit_flip",
                    target="packet",
                )
        return mutated

    def _strip_records(self, packet):
        """Remove accumulated hop records from the shim (the classic
        in-path evidence-stripping attack the coverage check catches:
        the shim's hop count stays, the records vanish)."""
        shim = packet.ra_shim
        if shim is None or not shim.body:
            return packet
        from repro.pera.records import decode_record_stack

        try:
            records = decode_record_stack(shim.body)
        except Exception:
            return packet
        if not records:
            return packet
        stripped_len = sum(len(record.wire) for record in records)
        new_body = shim.body[: len(shim.body) - stripped_len]
        self.stats.records_stripped += len(records)
        tel = self._telemetry
        if tel.active:
            tel.audit_event(
                AuditKind.FAULT_INJECTED,
                _AUDIT_ACTOR,
                trace=packet.trace,
                fault="record_strip",
                target="packet",
                records=len(records),
            )
        return packet.with_shim(replace(shim, body=new_body))

    @staticmethod
    def _tamper_message(message: Any) -> Any:
        """Corrupt a signed control message's signature in flight."""
        signature = getattr(message, "signature", None)
        if (
            not is_dataclass(message)
            or not isinstance(signature, bytes)
            or not signature
        ):
            return message
        corrupted = signature[:-1] + bytes((signature[-1] ^ 0xFF,))
        try:
            return replace(message, signature=corrupted)
        except (TypeError, ValueError):
            return message


__all__ = ["COMPROMISE_ELECTION_ID", "FaultInjector", "FaultStats"]
