"""Deterministic fault injection and the resilience it exercises.

The paper's case for dataplane attestation is strongest exactly when
the network misbehaves — compromised switches, lossy and flapping
links, unreachable appraisers. This package makes that misbehaviour a
first-class, replayable input:

- :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, typed
  schedule of fault events (pure data, no simulator state).
- :mod:`repro.faults.injector` — :class:`FaultInjector`, the single
  injection hook the simulator consults (``Simulator.install_faults``);
  applies link/node/evidence faults and journals every one.
- :mod:`repro.faults.retry` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff, per-attempt timeouts) and :class:`FailMode`
  (the fail-open/fail-closed degraded-appraisal knob, fail-closed by
  default).

Determinism contract: same plan seed + same scenario ⇒ byte-identical
replay, audit journal included. See ``docs/FAULTS.md``.
"""

from repro.faults.injector import (
    COMPROMISE_ELECTION_ID,
    FaultInjector,
    FaultStats,
)
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, link_key
from repro.faults.retry import FailMode, RetryPolicy

__all__ = [
    "COMPROMISE_ELECTION_ID",
    "FailMode",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultStats",
    "RetryPolicy",
    "link_key",
]
