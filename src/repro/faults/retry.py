"""Resilience primitives: retry budgets, backoff, fail-open/closed.

The protocols the faults subsystem attacks need a shared vocabulary
for how hard to try again and what to conclude when trying fails:

- :class:`RetryPolicy` — bounded attempts with exponential backoff and
  a per-attempt response timeout, used by out-of-band evidence senders
  (:class:`~repro.pera.switch.PeraSwitch`), the nonce
  challenge/response loop (:class:`~repro.ra.attester.VerifierHost`),
  the Copland out-of-band runner, and the routing controller's
  reprovisioning path.
- :class:`FailMode` — the degraded-appraisal knob: when the appraiser
  is unreachable after every retry, ``CLOSED`` (the default) rejects
  and ``OPEN`` accepts-with-a-degraded-flag. Fail-closed is the
  default everywhere because an attestation system that waves traffic
  through when it cannot attest is indistinguishable from no
  attestation at all.

All delays are simulated seconds fed to ``Simulator.schedule`` — a
retry never sleeps wall-clock time, preserving deterministic replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class FailMode:
    """What appraisal concludes when it cannot run (plain strings)."""

    CLOSED = "fail_closed"  # unreachable appraiser => rejecting verdict
    OPEN = "fail_open"  # unreachable appraiser => degraded acceptance

    ALL = (CLOSED, OPEN)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff (deterministic)."""

    max_attempts: int = 4
    timeout_s: float = 500e-6  # wait-for-response window per attempt
    base_delay_s: float = 100e-6
    multiplier: float = 2.0
    max_delay_s: float = 50e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"need at least one attempt ({self.max_attempts})")
        if self.timeout_s < 0 or self.base_delay_s < 0:
            raise ValueError("timeouts and delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError(f"backoff multiplier must be >= 1 ({self.multiplier})")

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), capped at the max."""
        if attempt < 1:
            raise ValueError(f"attempts are 1-based ({attempt})")
        return min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )

    def delays(self) -> Tuple[float, ...]:
        """Every backoff delay this policy will ever use, in order."""
        return tuple(
            self.backoff_delay(attempt)
            for attempt in range(1, self.max_attempts)
        )


__all__ = ["FailMode", "RetryPolicy"]
