"""Observability for the simulated dataplane and the RA pipeline.

The paper's argument is that operators need visibility into what a
programmable dataplane is actually running; this subsystem gives the
*reproduction* the same property about itself. One
:class:`~repro.telemetry.instrument.Telemetry` object bundles

- a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with per-switch / per-link /
  per-policy labeled children (cheap enough for per-packet use),
- a :class:`~repro.telemetry.spans.SpanRecorder` of nestable timed
  spans over both the simulated clock and the wall clock,

- a :class:`~repro.telemetry.tracing.TraceContext` per packet plus an
  append-only :class:`~repro.telemetry.audit.AuditJournal` of
  attestation events, joining every span/counter/verdict back to the
  causal chain that produced it (see ``docs/TRACING.md``),

- a :class:`~repro.telemetry.timeseries.FlightRecorder` of windowed,
  delta-encoded time-series frames sampled on a deterministic sim-time
  cadence, with a declarative health/SLO rule engine
  (:mod:`~repro.telemetry.health`) raising typed alerts at window
  close (see ``docs/MONITORING.md``),

and :mod:`~repro.telemetry.export` renders a run as JSON, as a Chrome
``chrome://tracing`` trace, or as a plain-text summary. Instrumented
layers (net, pisa, pera, ra, core) bind to
:func:`~repro.telemetry.instrument.default_telemetry`, which is a
no-op null object unless ``REPRO_TELEMETRY=1`` is set or a telemetry
instance is passed / installed explicitly — disabled observability
costs one branch per site. See ``docs/TELEMETRY.md``.
"""

from repro.telemetry.audit import (
    AUDIT_SCHEMA,
    AuditEvent,
    AuditJournal,
    AuditKind,
    Check,
    NULL_JOURNAL,
    classify_failure,
    explain_verdict,
    narrative,
)
from repro.telemetry.export import (
    TRACE_SCHEMA,
    audit_snapshot,
    chrome_trace,
    dump_audit,
    dump_json,
    dump_run,
    snapshot,
    summary,
    write_chrome_trace,
)
from repro.telemetry.instrument import (
    NULL_TELEMETRY,
    Telemetry,
    collect_globals,
    collect_node,
    collect_simulator,
    collect_verify_cache,
    default_telemetry,
    global_telemetry,
    reset_default,
    use_default,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.health import (
    AbsenceRule,
    HealthReport,
    ImbalanceRule,
    RatioRule,
    ThresholdRule,
    evaluate_health,
    label_filter,
)
from repro.telemetry.spans import Span, SpanRecorder
from repro.telemetry.timeseries import (
    FlightRecorder,
    SamplingSpec,
    TIMESERIES_SCHEMA,
    dump_timeseries,
    install_recorder,
    merge_frame_streams,
    timeseries_export,
    timeseries_snapshot,
)
from repro.telemetry.tracing import (
    TraceContext,
    new_trace_id,
    reset_trace_ids,
    start_trace,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "default_telemetry",
    "global_telemetry",
    "use_default",
    "reset_default",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "SpanRecorder",
    "Span",
    "collect_simulator",
    "collect_node",
    "collect_verify_cache",
    "collect_globals",
    "snapshot",
    "dump_json",
    "chrome_trace",
    "write_chrome_trace",
    "summary",
    "dump_run",
    "TraceContext",
    "start_trace",
    "new_trace_id",
    "reset_trace_ids",
    "AuditJournal",
    "AuditEvent",
    "AuditKind",
    "Check",
    "NULL_JOURNAL",
    "AUDIT_SCHEMA",
    "TRACE_SCHEMA",
    "classify_failure",
    "narrative",
    "explain_verdict",
    "audit_snapshot",
    "dump_audit",
    "FlightRecorder",
    "SamplingSpec",
    "TIMESERIES_SCHEMA",
    "dump_timeseries",
    "install_recorder",
    "merge_frame_streams",
    "timeseries_export",
    "timeseries_snapshot",
    "AbsenceRule",
    "HealthReport",
    "ImbalanceRule",
    "RatioRule",
    "ThresholdRule",
    "evaluate_health",
    "label_filter",
]
