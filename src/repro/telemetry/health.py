"""Declarative health/SLO rules evaluated over flight-recorder frames.

The monitoring story the paper's operational case needs: a compromised
switch, a lossy link or a dead appraiser should be *detected* by the
telemetry layer inside the fault window, not reconstructed from the
journal afterwards. Rules are small frozen declarations — thresholds
on per-window rates, trailing-window ratios, absence-of-signal, and
load-imbalance bounds — evaluated at every window close over the
merged frame stream, emitting typed ``alert.raised`` /
``alert.cleared`` events that carry the offending values.

Evaluation is a pure function of ``(frames, rules, interval_s)``: it
runs **post-merge** in the sharded parent, so the alert timeline is
byte-identical across shard counts for free — the same argument that
makes the audit merge canonical. Alert events are shaped exactly like
audit-journal export dicts (``seq``/``time_s``/``kind``/``actor``/
``detail``) so campaigns fold them into the journal with
:func:`~repro.telemetry.audit.merge_audit_events`.

Rule semantics (all values are **per-window deltas** unless noted):

- :class:`ThresholdRule` — matching-key delta sum ``> threshold`` for
  ``over_windows`` consecutive windows raises; first compliant window
  clears.
- :class:`RatioRule` — numerator/denominator delta sums over a
  trailing ``over_windows`` aggregation; a zero denominator means "no
  traffic" and evaluates as compliant.
- :class:`AbsenceRule` — arms on the first window with matching
  activity, raises after ``for_windows`` consecutive silent windows,
  clears when the signal resumes.
- :class:`ImbalanceRule` — groups **cumulative** matching counts by a
  label-derived group key (ECMP: the sending switch is the link label
  up to the first ``:``) and bounds ``max/mean`` per group once the
  group has seen ``min_total`` events.
- :class:`LevelRule` — bounds the **cumulative** matching value (a
  reconstructed *level*, not a rate): summing a sampled occupancy
  probe's deltas yields the current occupancy, so this is the rule
  for queue depths and other gauges the flight recorder carries as
  probe series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.telemetry.audit import AuditKind, merge_audit_events
from repro.telemetry.metrics import parse_name
from repro.telemetry.timeseries import Frame, apply_delta

#: The ``actor`` stamped on alert events (no node owns the health layer).
HEALTH_ACTOR = "health"

LabelFilter = Tuple[Tuple[str, str], ...]


def label_filter(**labels: object) -> LabelFilter:
    """Build a rule label constraint: ``label_filter(switch="s1")``."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _matches(key: str, metric: str, labels: LabelFilter) -> bool:
    name, items = parse_name(key)
    if name != metric:
        return False
    if not labels:
        return True
    present = dict(items)
    return all(present.get(k) == v for k, v in labels)


def _match_sum(
    view: Mapping[str, float], metric: str, labels: LabelFilter
) -> float:
    return sum(v for k, v in view.items() if _matches(k, metric, labels))


@dataclass(frozen=True)
class ThresholdRule:
    """Per-window delta sum above ``threshold`` for N consecutive windows."""

    name: str
    metric: str
    threshold: float = 0.0
    over_windows: int = 1
    labels: LabelFilter = ()
    kind: str = field(default="threshold", init=False)

    def breached(self, value: float) -> bool:
        return value > self.threshold

    def as_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "metric": self.metric,
            "labels": dict(self.labels),
            "threshold": self.threshold,
            "over_windows": self.over_windows,
        }


@dataclass(frozen=True)
class RatioRule:
    """Trailing-window ratio (e.g. verdict fail rate) above ``threshold``.

    The numerator and denominator are delta sums over the trailing
    ``over_windows`` windows (inclusive); windows with a zero
    denominator are compliant by definition.
    """

    name: str
    numerator: str
    denominator: str
    threshold: float
    over_windows: int = 1
    numerator_labels: LabelFilter = ()
    denominator_labels: LabelFilter = ()
    kind: str = field(default="ratio", init=False)

    def as_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "numerator": self.numerator,
            "denominator": self.denominator,
            "threshold": self.threshold,
            "over_windows": self.over_windows,
        }


@dataclass(frozen=True)
class AbsenceRule:
    """No matching activity for ``for_windows`` windows after arming."""

    name: str
    metric: str
    for_windows: int = 2
    labels: LabelFilter = ()
    kind: str = field(default="absence", init=False)

    def as_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "metric": self.metric,
            "labels": dict(self.labels),
            "for_windows": self.for_windows,
        }


@dataclass(frozen=True)
class ImbalanceRule:
    """Cumulative per-group ``max/mean`` spread above ``bound``.

    Group key: the matched key's label value for ``group_label``,
    truncated at the first ``group_sep`` — with the simulator's link
    labels (``sw:port->peer:pport``) that is the sending switch, so
    the rule bounds ECMP spread across each switch's uplinks.
    """

    name: str
    metric: str
    bound: float
    group_label: str = "link"
    group_sep: str = ":"
    min_ports: int = 2
    min_total: float = 64.0
    kind: str = field(default="imbalance", init=False)

    def groups(self, cumulative: Mapping[str, float]) -> Dict[str, List[float]]:
        grouped: Dict[str, List[float]] = {}
        for key, value in cumulative.items():
            metric_name, items = parse_name(key)
            if metric_name != self.metric:
                continue
            label_value = dict(items).get(self.group_label)
            if label_value is None:
                continue
            group = label_value.split(self.group_sep, 1)[0]
            grouped.setdefault(group, []).append(value)
        return grouped

    def worst(self, cumulative: Mapping[str, float]) -> float:
        worst = 0.0
        for values in self.groups(cumulative).values():
            if len(values) < self.min_ports or sum(values) < self.min_total:
                continue
            mean = sum(values) / len(values)
            if mean > 0:
                worst = max(worst, max(values) / mean)
        return worst

    def as_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "metric": self.metric,
            "bound": self.bound,
            "group_label": self.group_label,
            "min_ports": self.min_ports,
            "min_total": self.min_total,
        }


@dataclass(frozen=True)
class LevelRule:
    """Cumulative matching value above ``threshold`` — a level, not a rate.

    Delta-encoded probe series (queue depth sampled every window)
    reconstruct the current occupancy when their deltas are summed,
    which is exactly the ``cumulative`` view the evaluator maintains.
    ``aggregate="max"`` bounds the worst single matching key (one
    queue's depth); ``"sum"`` bounds the total across matching keys.
    Raises at the first window close with the level above
    ``threshold``; clears at the first window back at or below it.
    """

    name: str
    metric: str
    threshold: float
    aggregate: str = "max"
    labels: LabelFilter = ()
    kind: str = field(default="level", init=False)

    def __post_init__(self) -> None:
        if self.aggregate not in ("max", "sum"):
            raise ValueError(
                f"LevelRule aggregate must be 'max' or 'sum', "
                f"got {self.aggregate!r}"
            )

    def level(self, cumulative: Mapping[str, float]) -> float:
        values = [
            v
            for k, v in cumulative.items()
            if _matches(k, self.metric, self.labels)
        ]
        if not values:
            return 0.0
        return max(values) if self.aggregate == "max" else sum(values)

    def as_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "metric": self.metric,
            "labels": dict(self.labels),
            "threshold": self.threshold,
            "aggregate": self.aggregate,
        }


HealthRule = object  # union of the five dataclasses above (duck-typed)


@dataclass
class HealthReport:
    """Everything the health pass produced for one campaign."""

    alerts: List[Dict[str, object]]
    rules: List[Dict[str, object]]
    windows: int
    #: Rules still raised when the run ended: ``{rule_name: raise_window}``.
    active: Dict[str, int]

    @property
    def raised(self) -> List[Dict[str, object]]:
        return [a for a in self.alerts if a["kind"] == AuditKind.ALERT_RAISED]

    @property
    def cleared(self) -> List[Dict[str, object]]:
        return [a for a in self.alerts if a["kind"] == AuditKind.ALERT_CLEARED]

    def alerts_for(self, rule_name: str) -> List[Dict[str, object]]:
        return [
            a
            for a in self.alerts
            if a["detail"]["rule"] == rule_name  # type: ignore[index]
        ]

    def first_raise_window(self, rule_name: str) -> Optional[int]:
        for alert in self.alerts:
            if (
                alert["kind"] == AuditKind.ALERT_RAISED
                and alert["detail"]["rule"] == rule_name  # type: ignore[index]
            ):
                return int(alert["detail"]["window"])  # type: ignore[index]
        return None


class _RuleState:
    __slots__ = ("raised", "streak", "armed", "silent")

    def __init__(self) -> None:
        self.raised = False
        self.streak = 0
        self.armed = False
        self.silent = 0


def _window_deltas(frames: Sequence[Frame]) -> Dict[int, Mapping[str, float]]:
    deltas: Dict[int, Mapping[str, float]] = {}
    for frame in frames:
        deltas[int(frame["w"])] = frame["v"]  # type: ignore[assignment]
    return deltas


def evaluate_health(
    frames: Sequence[Frame],
    rules: Sequence[HealthRule],
    interval_s: float,
) -> HealthReport:
    """Run every rule over every window close; emit the alert timeline.

    Pure and deterministic: windows run 0..max(w) with absent frames
    treated as all-zero deltas, rules evaluate in declaration order,
    and alert ``seq`` renumbers 1..N in emission order. ``time_s`` is
    the nominal window close time ``(w+1)·interval_s``.
    """
    deltas = _window_deltas(frames)
    last_window = max(deltas) if deltas else -1
    states = {id(rule): _RuleState() for rule in rules}
    cumulative: Dict[str, float] = {}
    history: List[Mapping[str, float]] = []
    alerts: List[Dict[str, object]] = []

    def emit(kind: str, rule, window: int, **detail: object) -> None:
        alerts.append(
            {
                "seq": len(alerts) + 1,
                "time_s": (window + 1) * interval_s,
                "kind": kind,
                "actor": HEALTH_ACTOR,
                "detail": {"rule": rule.name, "window": window, **detail},
            }
        )

    for window in range(last_window + 1):
        delta = deltas.get(window, {})
        cumulative = apply_delta(cumulative, delta)
        history.append(delta)
        for rule in rules:
            state = states[id(rule)]
            if isinstance(rule, ThresholdRule):
                value = _match_sum(delta, rule.metric, rule.labels)
                if rule.breached(value):
                    state.streak += 1
                    if not state.raised and state.streak >= rule.over_windows:
                        state.raised = True
                        emit(
                            AuditKind.ALERT_RAISED,
                            rule,
                            window,
                            value=value,
                            threshold=rule.threshold,
                        )
                else:
                    state.streak = 0
                    if state.raised:
                        state.raised = False
                        emit(AuditKind.ALERT_CLEARED, rule, window, value=value)
            elif isinstance(rule, RatioRule):
                tail = history[-rule.over_windows :]
                num = sum(
                    _match_sum(d, rule.numerator, rule.numerator_labels)
                    for d in tail
                )
                den = sum(
                    _match_sum(d, rule.denominator, rule.denominator_labels)
                    for d in tail
                )
                ratio = num / den if den > 0 else 0.0
                if den > 0 and ratio > rule.threshold:
                    if not state.raised:
                        state.raised = True
                        emit(
                            AuditKind.ALERT_RAISED,
                            rule,
                            window,
                            value=ratio,
                            threshold=rule.threshold,
                        )
                elif state.raised:
                    state.raised = False
                    emit(AuditKind.ALERT_CLEARED, rule, window, value=ratio)
            elif isinstance(rule, AbsenceRule):
                activity = _match_sum(delta, rule.metric, rule.labels)
                if activity > 0:
                    state.armed = True
                    state.silent = 0
                    if state.raised:
                        state.raised = False
                        emit(
                            AuditKind.ALERT_CLEARED, rule, window, value=activity
                        )
                elif state.armed:
                    state.silent += 1
                    if not state.raised and state.silent >= rule.for_windows:
                        state.raised = True
                        emit(
                            AuditKind.ALERT_RAISED,
                            rule,
                            window,
                            value=0.0,
                            silent_windows=state.silent,
                        )
            elif isinstance(rule, LevelRule):
                level = rule.level(cumulative)
                if level > rule.threshold:
                    if not state.raised:
                        state.raised = True
                        emit(
                            AuditKind.ALERT_RAISED,
                            rule,
                            window,
                            value=level,
                            threshold=rule.threshold,
                        )
                elif state.raised:
                    state.raised = False
                    emit(AuditKind.ALERT_CLEARED, rule, window, value=level)
            elif isinstance(rule, ImbalanceRule):
                worst = rule.worst(cumulative)
                if worst > rule.bound:
                    if not state.raised:
                        state.raised = True
                        emit(
                            AuditKind.ALERT_RAISED,
                            rule,
                            window,
                            value=worst,
                            threshold=rule.bound,
                        )
                elif state.raised and worst > 0:
                    state.raised = False
                    emit(AuditKind.ALERT_CLEARED, rule, window, value=worst)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown health rule type: {rule!r}")

    active = {
        rule.name: int(
            next(
                (
                    a["detail"]["window"]  # type: ignore[index]
                    for a in reversed(alerts)
                    if a["detail"]["rule"] == rule.name  # type: ignore[index]
                    and a["kind"] == AuditKind.ALERT_RAISED
                ),
                -1,
            )
        )
        for rule in rules
        if states[id(rule)].raised
    }
    return HealthReport(
        alerts=alerts,
        rules=[rule.as_doc() for rule in rules],
        windows=last_window + 1,
        active=active,
    )


def fold_alerts(journal, alerts: Sequence[Mapping[str, object]]) -> None:
    """Merge alert dicts into an :class:`~repro.telemetry.audit.AuditJournal`.

    Alerts are audit-export-shaped, so :func:`merge_audit_events`
    orders the union by ``(time, trace, actor, seq)`` and renumbers —
    the journal export stays byte-identical across shard counts
    whether or not a health pass ran.
    """
    if not alerts:
        return
    docs = merge_audit_events(
        [[event.as_dict() for event in journal.events], list(alerts)]
    )
    journal.clear()
    journal.load(docs)


__all__ = [
    "AbsenceRule",
    "HEALTH_ACTOR",
    "HealthReport",
    "HealthRule",
    "ImbalanceRule",
    "LevelRule",
    "RatioRule",
    "ThresholdRule",
    "evaluate_health",
    "fold_alerts",
    "label_filter",
]
