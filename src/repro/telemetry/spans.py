"""Nestable timed spans over the simulated clock (and the wall clock).

A span brackets one unit of work — a pipeline stage, a record
signing, an appraisal — with a context manager::

    with telemetry.span("pisa.stage", track="s1", table="ipv4_lpm"):
        ...

Each finished span records *both* clocks:

- **simulated time** (:class:`~repro.util.clock.SimClock`): where the
  work sits on the dataplane timeline. Work inside one discrete event
  is instantaneous in simulated time, so sim durations are often 0 —
  that is the discrete-event model being honest, not a bug.
- **wall time** (``perf_counter``): what the work actually cost this
  process — the breakdown perf regressions are diagnosed from.

Spans nest: the recorder tracks depth so exports can indent and the
Chrome trace viewer can stack them. The whole thing has a no-op fast
path — when a recorder is disabled, :meth:`SpanRecorder.span` returns
a shared null span whose enter/exit do nothing and allocate nothing.
Finished spans land in a bounded ring buffer (evictions are counted),
so span recording cannot eat the heap on a long run either.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

from repro.util.clock import SimClock
from repro.util.ring import RingBuffer

DEFAULT_MAX_SPANS = 65536


class Span:
    """One live (then finished) timed region. Use via ``with``."""

    __slots__ = (
        "_recorder", "name", "track", "args",
        "sim_start", "sim_end", "wall_start", "wall_end", "depth",
    )

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        track: str,
        args: Optional[Dict[str, object]],
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.track = track
        self.args = args
        self.sim_start = 0.0
        self.sim_end = 0.0
        self.wall_start = 0.0
        self.wall_end = 0.0
        self.depth = 0

    @property
    def sim_duration(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> float:
        return self.wall_end - self.wall_start

    def note(self, **args: object) -> None:
        """Attach key/value detail to the span (shown in exports)."""
        if self.args is None:
            self.args = {}
        self.args.update(args)

    def __enter__(self) -> "Span":
        recorder = self._recorder
        self.depth = recorder._depth
        recorder._depth += 1
        self.sim_start = recorder.clock.now
        self.wall_start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_end = perf_counter()
        recorder = self._recorder
        self.sim_end = recorder.clock.now
        recorder._depth -= 1
        recorder._finished.append(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, track={self.track!r}, "
            f"sim={self.sim_start:.6f}..{self.sim_end:.6f}, "
            f"wall={self.wall_duration * 1e6:.1f}us)"
        )


class _NullSpan:
    """The disabled fast path: no allocation, no clock reads."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **args: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects finished spans against one (rebindable) sim clock."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.clock = clock or SimClock()
        self._finished: RingBuffer[Span] = RingBuffer(max_spans)
        self._depth = 0

    def bind_clock(self, clock: SimClock) -> None:
        """Point sim timestamps at a (new) simulator's clock."""
        self.clock = clock

    def span(
        self,
        name: str,
        track: str = "main",
        **args: object,
    ) -> Span:
        return Span(self, name, track, args or None)

    @property
    def records(self) -> List[Span]:
        """Finished spans, oldest first (bounded; see ``dropped``)."""
        return self._finished.to_list()

    @property
    def dropped(self) -> int:
        """Finished spans evicted from the ring buffer."""
        return self._finished.dropped

    def clear(self) -> None:
        self._finished.clear()

    def __len__(self) -> int:
        return len(self._finished)
