"""The glue between the telemetry registry and the rest of the stack.

Layering rule: ``repro.telemetry.metrics``/``spans`` import nothing
outside :mod:`repro.util`, and every *other* layer imports telemetry —
never the reverse at module scope. The collectors below reach into
simulator/switch/appraiser state purely by ``getattr`` duck typing, so
no import cycle can form.

Three ways instrumentation reaches a :class:`Telemetry`:

1. **Explicit**: pass ``telemetry=`` to ``Simulator`` / appraisers.
2. **Ambient**: everything defaults to :func:`default_telemetry`,
   which is the inert :data:`NULL_TELEMETRY` unless the
   ``REPRO_TELEMETRY`` environment variable is set (or a test/tool
   installed one via :func:`use_default`). With the null object, the
   entire subsystem costs one predictable branch per hot-path site.
3. **Collectors**: existing stats structs (``SimStats``, ``RaStats``,
   cache stats, the shared verify cache) are snapshotted into labeled
   gauges at collection points instead of double-counting on the hot
   path — :func:`collect_simulator` runs automatically at the end of
   every ``Simulator.run`` when telemetry is active.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.telemetry.audit import (
    AuditJournal,
    DEFAULT_MAX_EVENTS,
    NULL_JOURNAL,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.telemetry.spans import DEFAULT_MAX_SPANS, NULL_SPAN, SpanRecorder
from repro.util.clock import SimClock

ENV_VAR = "REPRO_TELEMETRY"


class Telemetry:
    """One observability domain: metrics, spans, and the audit journal.

    ``active=False`` builds the permanently-inert variant every
    accessor of which returns a shared null object; the hot paths in
    the simulator and switches check ``telemetry.active`` once and
    skip even label construction when it is off.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        active: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_audit_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.active = active
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(clock, max_spans=max_spans)
        self.audit: AuditJournal = (
            AuditJournal(self.spans.clock, max_events=max_audit_events)
            if active
            else NULL_JOURNAL
        )
        # Export sinks registered via auto_dump(); flush() writes them.
        self._sinks: Dict[str, object] = {}

    # --- clock ----------------------------------------------------------------

    def bind_clock(self, clock: SimClock) -> None:
        """Adopt a simulator's clock for span/audit sim-timestamps."""
        self.spans.bind_clock(clock)
        if self.audit is not NULL_JOURNAL:
            self.audit.bind_clock(clock)

    # --- crash-safe exports ------------------------------------------------------

    def auto_dump(
        self,
        json_path: Optional[object] = None,
        trace_path: Optional[object] = None,
        audit_path: Optional[object] = None,
        timebase: str = "wall",
    ) -> None:
        """Register export paths for :meth:`flush` to (re)write.

        The simulator flushes registered sinks in a ``try/finally`` at
        the end of every ``run()`` — including runs that die mid-event —
        so a crash still leaves a usable trace on disk.
        """
        if json_path is not None:
            self._sinks["json"] = json_path
        if trace_path is not None:
            self._sinks["trace"] = trace_path
        if audit_path is not None:
            self._sinks["audit"] = audit_path
        self._sinks["timebase"] = timebase

    def flush(self) -> List[object]:
        """Write every registered sink now; returns the paths written."""
        if not self._sinks:
            return []
        from repro.telemetry import export  # lazy: export imports us

        written: List[object] = []
        timebase = str(self._sinks.get("timebase", "wall"))
        if "json" in self._sinks:
            written.append(export.dump_json(self, self._sinks["json"]))
        if "trace" in self._sinks:
            written.append(
                export.write_chrome_trace(
                    self, self._sinks["trace"], timebase=timebase
                )
            )
        if "audit" in self._sinks:
            written.append(export.dump_audit(self, self._sinks["audit"]))
        return written

    # --- gated accessors --------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        if not self.active:
            return NULL_COUNTER
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.active:
            return NULL_GAUGE
        return self.metrics.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        if not self.active:
            return NULL_HISTOGRAM
        return self.metrics.histogram(name, buckets=buckets, **labels)

    def span(self, name: str, track: str = "main", **args: object):
        if not self.active:
            return NULL_SPAN
        return self.spans.span(name, track=track, **args)

    def audit_event(
        self,
        kind: str,
        actor: str,
        trace=None,
        digest: Optional[bytes] = None,
        **detail: object,
    ):
        """Record an audit event, tagging it with a trace context.

        ``trace`` is a :class:`~repro.telemetry.tracing.TraceContext`
        (or ``None``); callers on hot paths should still gate on
        :attr:`active` themselves to skip building ``detail`` kwargs.
        """
        if not self.active:
            return None
        trace_id = trace.trace_id if trace is not None else None
        hop = trace.hop if trace is not None else None
        return self.audit.record(
            kind, actor, trace=trace_id, hop=hop, digest=digest, **detail
        )

    def __repr__(self) -> str:
        return (
            f"Telemetry(active={self.active}, metrics={len(self.metrics)}, "
            f"spans={len(self.spans)}, audit={len(self.audit)})"
        )


#: The inert instance everything uses when observability is off.
NULL_TELEMETRY = Telemetry(active=False)

_global: Optional[Telemetry] = None
_default: Optional[Telemetry] = None


def global_telemetry() -> Telemetry:
    """The process-wide active instance (created on first use).

    Benchmarks and long sessions funnel every simulator into this one
    registry so a single export describes the whole run.
    """
    global _global
    if _global is None:
        _global = Telemetry(active=True)
    return _global


def default_telemetry() -> Telemetry:
    """What ambient instrumentation binds to when nothing is passed.

    Resolution order: an instance installed via :func:`use_default`;
    else :func:`global_telemetry` when ``REPRO_TELEMETRY`` is set to a
    truthy value; else :data:`NULL_TELEMETRY`. The environment check
    is cached — call :func:`reset_default` to re-read it.
    """
    global _default
    if _default is None:
        flag = os.environ.get(ENV_VAR, "").strip().lower()
        if flag and flag not in ("0", "false", "off", "no"):
            _default = global_telemetry()
        else:
            _default = NULL_TELEMETRY
    return _default


def use_default(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install the ambient default (tests, tools); returns the previous."""
    global _default
    previous = _default
    _default = telemetry
    return previous


def reset_default() -> None:
    """Forget the cached ambient default (environment is re-read)."""
    global _default
    _default = None


# --- collectors: stats structs -> labeled gauges -------------------------------


def collect_simulator(telemetry: Telemetry, sim) -> None:
    """Snapshot a simulator and every bound node into the registry.

    Runs automatically at the end of ``Simulator.run`` when telemetry
    is active. Values are *gauges* — point-in-time copies of the
    owning stats structs, last writer wins per label set — so a
    process that runs many simulators reports each one's final state
    without double counting.
    """
    if not telemetry.active:
        return
    stats = sim.stats
    g = telemetry.gauge
    g("net.sim.packets_transmitted").set(stats.packets_transmitted)
    g("net.sim.bytes_transmitted").set(stats.bytes_transmitted)
    g("net.sim.packets_dropped").set(stats.packets_dropped)
    g("net.sim.control_messages").set(stats.control_messages)
    g("net.sim.control_bytes").set(stats.control_bytes)
    g("net.sim.control_dropped").set(stats.control_dropped)
    g("net.sim.events_processed").set(stats.events_processed)
    g("net.sim.dropped_trace_entries").set(stats.dropped_trace_entries)
    g("net.sim.local_resends").set(getattr(stats, "local_resends", 0))
    g("net.sim.queue_drops").set(getattr(stats, "queue_drops", 0))
    g("net.sim.ecn_marked").set(getattr(stats, "ecn_marked", 0))
    g("net.sim.pause_frames").set(getattr(stats, "pause_frames", 0))
    g("net.sim.recovery_retransmits").set(
        getattr(stats, "recovery_retransmits", 0)
    )
    g("net.sim.recovery_held").set(getattr(stats, "recovery_held", 0))
    faults = getattr(sim, "faults", None)
    fault_stats = getattr(faults, "stats", None)
    if fault_stats is not None:
        g("faults.injected").set(fault_stats.injected)
        g("faults.cleared").set(fault_stats.cleared)
        g("faults.extra_losses").set(fault_stats.extra_losses)
        g("faults.link_down_drops").set(fault_stats.link_down_drops)
        g("faults.packets_corrupted").set(fault_stats.packets_corrupted)
        g("faults.records_stripped").set(fault_stats.records_stripped)
        g("faults.control_stripped").set(fault_stats.control_stripped)
        g("faults.control_tampered").set(fault_stats.control_tampered)
    owns = getattr(sim, "owns", None)
    for name in getattr(sim, "bound_nodes", []):
        # Sharded runs bind foreign *replicas* for world visibility;
        # only the owner shard reports a node, so per-node gauges
        # appear exactly once in the merged snapshot.
        if owns is not None and not owns(name):
            continue
        collect_node(telemetry, sim.node(name))


def collect_node(telemetry: Telemetry, node) -> None:
    """Snapshot one node behaviour (duck-typed, any layer)."""
    if not telemetry.active:
        return
    g = telemetry.gauge
    switch = node.name
    if hasattr(node, "packets_processed"):  # PisaSwitch and up
        g("pisa.packets_processed", switch=switch).set(node.packets_processed)
        g("pisa.packets_dropped", switch=switch).set(node.packets_dropped)
        g("pisa.packets_to_cpu", switch=switch).set(node.packets_to_cpu)
        g("pisa.total_cost", switch=switch).set(node.total_cost)
    ra_stats = getattr(node, "ra_stats", None)
    if ra_stats is not None:  # PeraSwitch and up
        g("pera.packets_attested", switch=switch).set(ra_stats.packets_attested)
        g("pera.packets_skipped_by_sampling", switch=switch).set(
            ra_stats.packets_skipped_by_sampling
        )
        g("pera.measurements_taken", switch=switch).set(
            ra_stats.measurements_taken
        )
        g("pera.records_created", switch=switch).set(ra_stats.records_created)
        g("pera.records_from_cache", switch=switch).set(
            ra_stats.records_from_cache
        )
        g("pera.signatures_produced", switch=switch).set(
            ra_stats.signatures_produced
        )
        g("pera.out_of_band_sent", switch=switch).set(ra_stats.out_of_band_sent)
        g("pera.oob_send_failures", switch=switch).set(
            getattr(ra_stats, "oob_send_failures", 0)
        )
        g("pera.oob_retries", switch=switch).set(
            getattr(ra_stats, "oob_retries", 0)
        )
        g("pera.oob_recovered", switch=switch).set(
            getattr(ra_stats, "oob_recovered", 0)
        )
        g("pera.oob_gave_up", switch=switch).set(
            getattr(ra_stats, "oob_gave_up", 0)
        )
        g("pera.undecodable_evidence", switch=switch).set(
            getattr(ra_stats, "undecodable_evidence", 0)
        )
        g("pera.evidence_bytes_added", switch=switch).set(
            ra_stats.evidence_bytes_added
        )
        g("pera.epochs_sealed", switch=switch).set(
            getattr(ra_stats, "epochs_sealed", 0)
        )
        g("pera.records_batched", switch=switch).set(
            getattr(ra_stats, "records_batched", 0)
        )
        g("pera.gated_drops", switch=switch).set(ra_stats.gated_drops)
        g("pera.ra_cost", switch=switch).set(node.ra_cost)
        cache = node.cache
        g("pera.cache.hits", switch=switch).set(cache.stats.hits)
        g("pera.cache.misses", switch=switch).set(cache.stats.misses)
        g("pera.cache.invalidations", switch=switch).set(
            cache.stats.invalidations
        )
        g("pera.cache.hit_rate", switch=switch).set(cache.stats.hit_rate)


def collect_verify_cache(telemetry: Telemetry) -> None:
    """Snapshot the shared memoized-verification cache's hit rate."""
    if not telemetry.active:
        return
    from repro.evidence.verify import shared_cache  # lazy: higher layer

    stats = shared_cache.stats
    g = telemetry.gauge
    g("evidence.verify_cache.hits").set(stats.hits)
    g("evidence.verify_cache.misses").set(stats.misses)
    g("evidence.verify_cache.hit_rate").set(stats.hit_rate)
    g("evidence.verify_cache.size").set(len(shared_cache))


def collect_globals(telemetry: Telemetry) -> None:
    """Snapshot all process-wide shared state (exports call this)."""
    collect_verify_cache(telemetry)


__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "global_telemetry",
    "default_telemetry",
    "use_default",
    "reset_default",
    "collect_simulator",
    "collect_node",
    "collect_verify_cache",
    "collect_globals",
]
