"""Exports: JSON snapshot, Chrome trace-event file, text summary.

Three consumers, three formats:

- :func:`snapshot` / :func:`dump_json` — the machine-readable dump CI
  diffs and benchmarks attach next to ``BENCH_results.json``.
- :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format understood by ``chrome://tracing`` / Perfetto. Spans become
  complete (``"ph": "X"``) events; each span *track* (switch, node,
  appraiser) becomes a named thread. ``timebase="wall"`` lays spans
  out by what they cost this process (the profiling view);
  ``timebase="sim"`` lays them out on the simulated-network timeline
  (the dataplane view, where same-event work is instantaneous).
- :func:`summary` — the plain-text table a human reads after a run.

Every export calls the global collectors first, so shared state like
the memoized verify cache's hit rate is always current in the output.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.telemetry.audit import AUDIT_SCHEMA
from repro.telemetry.instrument import Telemetry, collect_globals
from repro.telemetry.metrics import Histogram, render_name

Pathish = Union[str, pathlib.Path]

#: Schema tag stamped into chrome-trace exports (bump on layout changes).
TRACE_SCHEMA = "repro.trace/v1"


# --- JSON snapshot --------------------------------------------------------------


def snapshot(telemetry: Telemetry) -> Dict[str, object]:
    """One run's telemetry as a JSON-serializable document."""
    collect_globals(telemetry)
    spans = [
        {
            "name": span.name,
            "track": span.track,
            "depth": span.depth,
            "sim_start_s": span.sim_start,
            "sim_end_s": span.sim_end,
            "wall_duration_s": span.wall_duration,
            **({"args": span.args} if span.args else {}),
        }
        for span in telemetry.spans.records
    ]
    return {
        "active": telemetry.active,
        "metrics": telemetry.metrics.snapshot(),
        "spans": spans,
        "spans_dropped": telemetry.spans.dropped,
        "audit_events": len(telemetry.audit),
        "audit_events_dropped": telemetry.audit.dropped,
    }


def dump_json(telemetry: Telemetry, path: Pathish) -> pathlib.Path:
    """Write :func:`snapshot` to ``path``; returns the path written."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(snapshot(telemetry), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# --- audit journal export ---------------------------------------------------------


def audit_snapshot(telemetry: Telemetry) -> Dict[str, object]:
    """The audit journal as a schema-versioned JSON document.

    Validated against ``docs/schemas/audit_v1.schema.json`` in tier-1
    tests, so downstream tooling can rely on the layout.
    """
    return {
        "schema": AUDIT_SCHEMA,
        "events": [event.as_dict() for event in telemetry.audit],
        "events_dropped": telemetry.audit.dropped,
    }


def dump_audit(telemetry: Telemetry, path: Pathish) -> pathlib.Path:
    """Write :func:`audit_snapshot` to ``path``; returns the path."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(audit_snapshot(telemetry), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# --- Chrome trace-event format ----------------------------------------------------


def chrome_trace(
    telemetry: Telemetry, timebase: str = "wall"
) -> Dict[str, object]:
    """Spans as a ``chrome://tracing`` / Perfetto trace document."""
    if timebase not in ("wall", "sim"):
        raise ValueError(f"timebase must be 'wall' or 'sim', got {timebase!r}")
    collect_globals(telemetry)
    records = telemetry.spans.records
    events: List[Dict[str, object]] = []
    track_ids: Dict[str, int] = {}
    # Spans carrying a trace tag are stitched with flow events: one
    # flow id per packet trace, so the viewer draws an arrow from the
    # pipeline span at hop 1 to the appraisal span at the last hop.
    flow_seen: Dict[str, int] = {}
    origin = min((s.wall_start for s in records), default=0.0)
    for span in records:
        tid = track_ids.get(span.track)
        if tid is None:
            tid = len(track_ids) + 1
            track_ids[span.track] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": span.track},
            })
        if timebase == "wall":
            ts = (span.wall_start - origin) * 1e6
            dur = span.wall_duration * 1e6
        else:
            ts = span.sim_start * 1e6
            dur = span.sim_duration * 1e6
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": ts,
            "dur": dur,
            "args": dict(span.args) if span.args else {},
        })
        trace_tag = (span.args or {}).get("trace")
        if isinstance(trace_tag, str):
            step = flow_seen.get(trace_tag, 0)
            flow_seen[trace_tag] = step + 1
            events.append({
                "name": "trace",
                "cat": "trace",
                "ph": "s" if step == 0 else "t",
                "id": trace_tag,
                "pid": 1,
                "tid": tid,
                "ts": ts,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "timebase": timebase,
            "spans_dropped": telemetry.spans.dropped,
        },
    }


def write_chrome_trace(
    telemetry: Telemetry, path: Pathish, timebase: str = "wall"
) -> pathlib.Path:
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(chrome_trace(telemetry, timebase=timebase), handle)
        handle.write("\n")
    return path


# --- plain-text summary ------------------------------------------------------------


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def summary(telemetry: Telemetry, max_rows: Optional[int] = None) -> str:
    """A human-readable table of counters, gauges, histograms, spans."""
    collect_globals(telemetry)
    lines: List[str] = []
    doc = telemetry.metrics.snapshot()
    for kind in ("counters", "gauges"):
        section = doc[kind]
        if not section:
            continue
        lines.append(f"== {kind} ==")
        rows = list(section.items())
        shown = rows if max_rows is None else rows[:max_rows]
        width = max(len(name) for name, _ in shown)
        for name, value in shown:
            lines.append(f"  {name.ljust(width)}  {_format_value(value)}")
        if len(rows) > len(shown):
            lines.append(f"  ... {len(rows) - len(shown)} more")
    histograms = [m for m in telemetry.metrics if isinstance(m, Histogram)]
    if histograms:
        lines.append("== histograms ==")
        for metric in histograms:
            name = render_name(metric.name, metric.labels)
            lines.append(
                f"  {name}  count={metric.count}  "
                f"mean={metric.mean * 1e6:.1f}us  sum={metric.sum:.6f}s"
            )
    records = telemetry.spans.records
    if records:
        lines.append("== spans (aggregated by name) ==")
        agg: Dict[str, List[float]] = {}
        for span in records:
            agg.setdefault(span.name, []).append(span.wall_duration)
        width = max(len(name) for name in agg)
        for name in sorted(agg):
            durations = agg[name]
            total = sum(durations)
            lines.append(
                f"  {name.ljust(width)}  n={len(durations):<7d} "
                f"total={total * 1e3:9.3f}ms  "
                f"mean={total / len(durations) * 1e6:9.2f}us"
            )
        if telemetry.spans.dropped:
            lines.append(f"  ({telemetry.spans.dropped} spans dropped)")
    evictions = [
        (label, count)
        for label, count in (
            ("spans", telemetry.spans.dropped),
            ("audit events", telemetry.audit.dropped),
        )
        if count
    ]
    if evictions:
        lines.append("== ring evictions ==")
        width = max(len(label) for label, _ in evictions)
        for label, count in evictions:
            lines.append(
                f"  {label.ljust(width)}  {count} evicted "
                "(oldest-first; raise the ring bound to keep more)"
            )
    return "\n".join(lines) if lines else "(no telemetry recorded)"


def dump_run(
    telemetry: Telemetry,
    json_path: Optional[Pathish] = None,
    trace_path: Optional[Pathish] = None,
    timebase: str = "wall",
) -> List[pathlib.Path]:
    """Write whichever artifacts were asked for; returns paths written."""
    written: List[pathlib.Path] = []
    if json_path is not None:
        written.append(dump_json(telemetry, json_path))
    if trace_path is not None:
        written.append(write_chrome_trace(telemetry, trace_path, timebase))
    return written
