"""Causal trace contexts: one id per packet, hop-incremented lineage.

PR 2's telemetry answers *how much* (counters) and *how long* (spans),
but not *why did request X fail*: a span at switch s3 and a verdict at
the appraiser had no causal link back to the packet that crossed hop 1.
A :class:`TraceContext` is that link — a small frozen token carried in
:class:`~repro.net.packet.Packet` metadata (outside the wire form, like
the ancillary data a real NIC driver attaches to an skb):

- ``trace_id`` — a stable short token naming the causal chain,
- ``hop`` — incremented by the simulator on every transmission,
- ``lineage`` — the nodes that forwarded the packet, in order.

Hosts stamp a fresh context onto packets they originate (only when
telemetry is active — disabled tracing costs one branch per send), the
simulator advances it across links, and ``dataclasses.replace``-style
packet mutation preserves it for free. Every layer that already opens
spans or records audit events tags them with the owning trace, so
exports can join a packet's whole life back together by id.

Trace ids are deterministic (:class:`~repro.util.ids.IdAllocator` plus
a content hash), never ``uuid4``: the same scripted run yields the same
ids, which keeps traces diffable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.ids import IdAllocator, short_id

#: Length of the hex trace-id token.
TRACE_ID_LEN = 12

_allocator = IdAllocator()


def new_trace_id(origin: str = "") -> str:
    """Allocate a deterministic trace id (stable across identical runs).

    Serials are per-origin, so a host's Nth trace id depends only on
    ``(origin, N)`` — not on how sends from *other* hosts interleave
    with its own. That makes trace ids invariant under sharding: the
    sharded runner replays the same per-host send sequences in any
    partitioning and gets byte-identical ids.
    """
    serial = _allocator.next(f"trace:{origin}")
    return short_id(f"trace|{origin}|{serial}".encode(), length=TRACE_ID_LEN)


def reset_trace_ids() -> None:
    """Restart the deterministic id sequences (tests and fresh runs)."""
    global _allocator
    _allocator = IdAllocator()


@dataclass(frozen=True)
class TraceContext:
    """The causal identity a packet carries from origin to verdict."""

    trace_id: str
    hop: int = 0
    origin: str = ""
    lineage: Tuple[str, ...] = ()

    def hopped(self, via: str) -> "TraceContext":
        """The context one transmission later: hop+1, ``via`` appended."""
        return TraceContext(
            trace_id=self.trace_id,
            hop=self.hop + 1,
            origin=self.origin,
            lineage=self.lineage + (via,),
        )

    def span_args(self) -> Dict[str, object]:
        """The span/audit tags identifying this trace (``trace``, ``hop``)."""
        return {"trace": self.trace_id, "hop": self.hop}

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id}, hop={self.hop})"


def start_trace(origin: str) -> TraceContext:
    """A fresh hop-0 context originating at ``origin``."""
    return TraceContext(trace_id=new_trace_id(origin), origin=origin)


__all__ = [
    "TraceContext",
    "start_trace",
    "new_trace_id",
    "reset_trace_ids",
    "TRACE_ID_LEN",
]
