"""A process-local metrics registry: counters, gauges, histograms.

The design target is the simulator's per-packet hot path: an increment
must be one attribute add on a pre-resolved object. Metrics are
resolved once (``registry.counter(name, **labels)`` get-or-creates)
and then held by the instrumented object, so steady-state cost is
``self._tx.inc(n)`` — a slotted ``+=``. Labeled children give the
per-switch / per-link / per-policy breakdowns the paper's cost story
needs (Fig. 4's axes are only legible when the numbers are split by
where they were paid).

Disabled telemetry hands out the ``NULL_*`` singletons instead, whose
mutators are no-ops, so call sites never branch.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for wall-clock latencies in seconds
#: (10µs .. 10s, roughly half-decade steps).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 10.0,
)


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_name(name: str, labels: LabelItems) -> str:
    """``name{k=v,...}`` — the flat key used in snapshots and tables."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_name(flat: str) -> Tuple[str, LabelItems]:
    """Invert :func:`render_name` (labels must not contain ``,`` / ``=``)."""
    if not flat.endswith("}") or "{" not in flat:
        return flat, ()
    name, _, inner = flat[:-1].partition("{")
    items = []
    for pair in inner.split(","):
        key, _, value = pair.partition("=")
        items.append((key, value))
    return name, tuple(items)


class Counter:
    """A monotonically increasing count (events, packets, bytes)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down (queue depth, cache size)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram (cumulative-style upper bounds).

    ``buckets`` are sorted inclusive upper bounds; one overflow bucket
    is added implicitly. ``observe`` is a bisect plus two adds, cheap
    enough for per-appraisal latencies.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        chosen = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
        if list(chosen) != sorted(chosen):
            raise ValueError(f"histogram buckets must be sorted: {chosen}")
        self.name = name
        self.labels = labels
        self.buckets = chosen
        self.counts: List[int] = [0] * (len(chosen) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    """Shared sink for disabled telemetry: mutators are no-ops."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Get-or-create home of every metric in one telemetry domain.

    A metric's identity is ``(name, sorted label items)``; asking for
    the same identity twice returns the same object, so instrumented
    code can resolve eagerly and increment forever. Asking for one
    name with two different metric kinds is a bug and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, _label_items(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, _label_items(labels))

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], buckets=buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _get_or_create(self, cls, name: str, labels: LabelItems):
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        return iter(self._metrics.values())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics by kind, keyed ``name{labels}`` — the JSON view."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for (name, labels), metric in sorted(self._metrics.items()):
            flat = render_name(name, labels)
            out[metric.kind + "s"][flat] = metric.snapshot()
        return out

    def absorb_snapshot(self, snap: Mapping[str, Mapping[str, object]]) -> None:
        """Fold an exported snapshot into this registry's live metrics.

        The sharded runner's merge path: each shard exports its own
        ``snapshot()`` (a picklable dict), and the parent absorbs them
        one by one. Counters and gauges add; histograms merge
        bucket-wise (bucket layouts must match). Gauges are summed
        because every simulator-level gauge in this codebase is a
        per-shard total (packets, bytes, cache sizes) — a ratio-style
        gauge would need its own merge rule and deserves a counter pair
        instead.
        """
        for flat, value in snap.get("counters", {}).items():
            name, labels = parse_name(flat)
            self._get_or_create(Counter, name, labels).value += float(value)
        for flat, value in snap.get("gauges", {}).items():
            name, labels = parse_name(flat)
            self._get_or_create(Gauge, name, labels).value += float(value)
        for flat, doc in snap.get("histograms", {}).items():
            name, labels = parse_name(flat)
            buckets = tuple(doc["buckets"])
            hist = self.histogram(name, buckets=buckets, **dict(labels))
            if hist.buckets != buckets:
                raise ValueError(
                    f"histogram {flat!r} bucket mismatch: "
                    f"{hist.buckets} vs {buckets}"
                )
            for i, count in enumerate(doc["counts"]):
                hist.counts[i] += int(count)
            hist.sum += float(doc["sum"])
            hist.count += int(doc["count"])


def merge_snapshots(
    snapshots: Iterator[Mapping[str, Mapping[str, object]]] | List,
) -> Dict[str, Dict[str, object]]:
    """Merge per-shard metric snapshots into one combined snapshot."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.absorb_snapshot(snap)
    return merged.snapshot()
