"""The post-run audit report CLI: ``python -m repro.telemetry.report``.

Reads the audit JSON a run exported (``dump_audit`` /
``Telemetry.auto_dump``) and renders it for a human:

- the run overview (event totals, traces seen, verdicts issued),
- a per-trace narrative for every trace — or one trace via
  ``--trace`` — the same per-hop story ``PathVerdict.explain()``
  prints,
- optionally (``--chrome-out``, with ``--telemetry``) a Chrome-trace
  document rebuilt from the exported telemetry snapshot, with flow
  events stitching the spans of each trace into one lane per packet.

The CLI works purely on the exported JSON documents, so it can run
long after the simulating process is gone (or on artifacts downloaded
from CI).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Mapping, Optional, Sequence

from repro.telemetry.audit import AuditKind, narrative

#: Schema tag for chrome traces rebuilt from a snapshot (matches export).
_TRACE_SCHEMA = "repro.trace/v1"


def load_audit(path: pathlib.Path) -> Mapping[str, object]:
    """Load and minimally sanity-check an exported audit document."""
    with path.open("r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "events" not in doc:
        raise ValueError(f"{path} is not an audit export (no 'events' key)")
    return doc


def _trace_ids(events: Sequence[Mapping[str, object]]) -> List[str]:
    seen: List[str] = []
    for event in events:
        trace = event.get("trace")
        if isinstance(trace, str) and trace not in seen:
            seen.append(trace)
    return seen


def overview(doc: Mapping[str, object]) -> str:
    """The run-level summary block at the top of every report."""
    events = doc.get("events", [])
    traces = _trace_ids(events)
    verdicts = [e for e in events if e.get("kind") == AuditKind.VERDICT_ISSUED]
    rejected = sum(
        1 for v in verdicts if not (v.get("detail") or {}).get("accepted")
    )
    failures = [e for e in events if e.get("kind") == AuditKind.CHECK_FAILED]
    lines = [
        f"audit report ({doc.get('schema', 'unversioned')})",
        f"  events:   {len(events)}"
        + (f" (+{doc['events_dropped']} dropped)" if doc.get("events_dropped") else ""),
        f"  traces:   {len(traces)}",
        f"  verdicts: {len(verdicts)} ({rejected} rejected)",
        f"  failed checks: {len(failures)}",
    ]
    by_kind: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
    if by_kind:
        lines.append("  by kind:")
        width = max(len(kind) for kind in by_kind)
        for kind in sorted(by_kind):
            lines.append(f"    {kind.ljust(width)}  {by_kind[kind]}")
    return "\n".join(lines)


def render_report(
    doc: Mapping[str, object], trace: Optional[str] = None
) -> str:
    """The full text report: overview plus per-trace narratives."""
    events = doc.get("events", [])
    sections = [overview(doc)]
    traces = [trace] if trace is not None else _trace_ids(events)
    for trace_id in traces:
        sections.append(narrative(events, trace_id=trace_id))
    untraced = [e for e in events if e.get("trace") is None]
    if trace is None and untraced:
        sections.append(
            f"({len(untraced)} events carry no trace — control-plane or "
            "Copland-side activity; query them by digest)"
        )
    return "\n\n".join(sections)


# --- chrome trace reconstruction (from an exported telemetry snapshot) ------------


def chrome_trace_from_snapshot(doc: Mapping[str, object]) -> Dict[str, object]:
    """Rebuild a flow-stitched Chrome trace from a telemetry JSON export.

    The snapshot keeps sim-clock timestamps per span, so the rebuilt
    trace uses the ``sim`` timebase. Spans tagged with a trace id get
    flow events (``"s"``/``"t"``) stitching every hop of a packet into
    one visual lane, exactly like the live exporter.
    """
    spans = doc.get("spans", [])
    events: List[Dict[str, object]] = []
    track_ids: Dict[str, int] = {}
    flow_seen: Dict[str, int] = {}
    for span in spans:
        track = str(span.get("track", "main"))
        tid = track_ids.get(track)
        if tid is None:
            tid = len(track_ids) + 1
            track_ids[track] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            })
        name = str(span.get("name", "?"))
        ts = float(span.get("sim_start_s", 0.0)) * 1e6
        dur = (
            float(span.get("sim_end_s", 0.0))
            - float(span.get("sim_start_s", 0.0))
        ) * 1e6
        args = span.get("args") or {}
        events.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": ts,
            "dur": dur,
            "args": dict(args),
        })
        trace_tag = args.get("trace")
        if isinstance(trace_tag, str):
            step = flow_seen.get(trace_tag, 0)
            flow_seen[trace_tag] = step + 1
            events.append({
                "name": "trace",
                "cat": "trace",
                "ph": "s" if step == 0 else "t",
                "id": trace_tag,
                "pid": 1,
                "tid": tid,
                "ts": ts,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": _TRACE_SCHEMA,
            "timebase": "sim",
            "spans_dropped": doc.get("spans_dropped", 0),
        },
    }


# --- entry point --------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render a post-run attestation audit report.",
    )
    parser.add_argument("audit", type=pathlib.Path, help="audit JSON export")
    parser.add_argument(
        "--trace", help="render only this trace id's narrative"
    )
    parser.add_argument(
        "--telemetry",
        type=pathlib.Path,
        help="telemetry JSON export (required for --chrome-out)",
    )
    parser.add_argument(
        "--chrome-out",
        type=pathlib.Path,
        help="write a flow-stitched Chrome trace rebuilt from --telemetry",
    )
    args = parser.parse_args(argv)

    doc = load_audit(args.audit)
    print(render_report(doc, trace=args.trace))

    if args.chrome_out is not None:
        if args.telemetry is None:
            parser.error("--chrome-out requires --telemetry")
        with args.telemetry.open("r", encoding="utf-8") as handle:
            telemetry_doc = json.load(handle)
        trace_doc = chrome_trace_from_snapshot(telemetry_doc)
        with args.chrome_out.open("w", encoding="utf-8") as handle:
            json.dump(trace_doc, handle)
            handle.write("\n")
        print(f"\nchrome trace written to {args.chrome_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
