"""The post-run report CLI: ``python -m repro.telemetry.report``.

Three modes, all working purely on exported JSON documents (so they
run long after the simulating process is gone, or on artifacts
downloaded from CI):

- ``report AUDIT.json`` (the historical default): the run overview,
  per-trace narratives, and optionally (``--chrome-out`` with
  ``--telemetry``) a flow-stitched Chrome trace rebuilt from the
  telemetry snapshot.
- ``report timeline TIMESERIES.json``: renders the flight recorder's
  windowed frame stream (see docs/MONITORING.md) as per-metric
  sparkline rows over sample windows.
- ``report health TIMESERIES.json``: renders the health rules, a
  per-rule raised/quiet timeline, and the alert event log.

Any missing, unparseable, or wrong-schema input exits with status 2
and a one-line diagnostic on stderr — never a traceback — so CI steps
fail fast and readably.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Mapping, Optional, Sequence

from repro.telemetry.audit import AuditKind, narrative
from repro.telemetry.timeseries import TIMESERIES_SCHEMA, cumulative_at

#: Schema tag for chrome traces rebuilt from a snapshot (matches export).
_TRACE_SCHEMA = "repro.trace/v1"


class ReportError(ValueError):
    """A user-facing input problem (bad path, bad JSON, wrong schema).

    ``main`` turns these into exit status 2 plus a one-line stderr
    message; they are never allowed to escape as tracebacks.
    """


def _load_json(path: pathlib.Path) -> object:
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        raise ReportError(f"{path} is not valid JSON: {exc}")


def load_audit(path: pathlib.Path) -> Mapping[str, object]:
    """Load and minimally sanity-check an exported audit document."""
    doc = _load_json(path)
    if not isinstance(doc, dict) or "events" not in doc:
        raise ReportError(
            f"{path} is not an audit export (no 'events' key)"
        )
    return doc


def load_timeseries(path: pathlib.Path) -> Mapping[str, object]:
    """Load a ``repro.timeseries/v1`` document, rejecting imposters."""
    doc = _load_json(path)
    if not isinstance(doc, dict) or "schema" not in doc:
        raise ReportError(
            f"{path} is not a timeseries export (no 'schema' key)"
        )
    if doc["schema"] != TIMESERIES_SCHEMA:
        raise ReportError(
            f"{path} has schema {doc['schema']!r}; this tool reads "
            f"{TIMESERIES_SCHEMA!r}"
        )
    return doc


def _trace_ids(events: Sequence[Mapping[str, object]]) -> List[str]:
    seen: List[str] = []
    for event in events:
        trace = event.get("trace")
        if isinstance(trace, str) and trace not in seen:
            seen.append(trace)
    return seen


#: Congestion & recovery counters ``overview`` surfaces from a stats
#: export (``ShardedResult.stats_export()``), in display order.
_CONGESTION_STATS = (
    ("queue drops", "queue_drops"),
    ("ECN marks", "ecn_marked"),
    ("pause frames", "pause_frames"),
    ("local resends", "local_resends"),
    ("recovery retransmits", "recovery_retransmits"),
    ("recovery held", "recovery_held"),
)


def load_stats(path: pathlib.Path) -> Mapping[str, object]:
    """Load a simulator-stats JSON export (a flat counter mapping)."""
    doc = _load_json(path)
    if not isinstance(doc, dict):
        raise ReportError(f"{path} is not a stats export (not an object)")
    return doc


def overview(
    doc: Mapping[str, object],
    stats: Optional[Mapping[str, object]] = None,
) -> str:
    """The run-level summary block at the top of every report.

    ``stats`` (a loaded stats export) appends the congestion &
    recovery counters — queue drops, ECN marks, PFC pause frames, and
    link-local resend totals (docs/CONGESTION.md).
    """
    events = doc.get("events", [])
    traces = _trace_ids(events)
    verdicts = [e for e in events if e.get("kind") == AuditKind.VERDICT_ISSUED]
    rejected = sum(
        1 for v in verdicts if not (v.get("detail") or {}).get("accepted")
    )
    failures = [e for e in events if e.get("kind") == AuditKind.CHECK_FAILED]
    lines = [
        f"audit report ({doc.get('schema', 'unversioned')})",
        f"  events:   {len(events)}"
        + (f" (+{doc['events_dropped']} dropped)" if doc.get("events_dropped") else ""),
        f"  traces:   {len(traces)}",
        f"  verdicts: {len(verdicts)} ({rejected} rejected)",
        f"  failed checks: {len(failures)}",
    ]
    if stats is not None:
        lines.append("  congestion & recovery:")
        width = max(len(label) for label, _ in _CONGESTION_STATS)
        for label, key in _CONGESTION_STATS:
            lines.append(
                f"    {label.ljust(width)}  {int(stats.get(key, 0) or 0)}"
            )
    by_kind: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
    if by_kind:
        lines.append("  by kind:")
        width = max(len(kind) for kind in by_kind)
        for kind in sorted(by_kind):
            lines.append(f"    {kind.ljust(width)}  {by_kind[kind]}")
    return "\n".join(lines)


def render_report(
    doc: Mapping[str, object],
    trace: Optional[str] = None,
    stats: Optional[Mapping[str, object]] = None,
) -> str:
    """The full text report: overview plus per-trace narratives."""
    events = doc.get("events", [])
    sections = [overview(doc, stats=stats)]
    traces = [trace] if trace is not None else _trace_ids(events)
    for trace_id in traces:
        sections.append(narrative(events, trace_id=trace_id))
    untraced = [e for e in events if e.get("trace") is None]
    if trace is None and untraced:
        sections.append(
            f"({len(untraced)} events carry no trace — control-plane or "
            "Copland-side activity; query them by digest)"
        )
    return "\n\n".join(sections)


# --- chrome trace reconstruction (from an exported telemetry snapshot) ------------


def chrome_trace_from_snapshot(doc: Mapping[str, object]) -> Dict[str, object]:
    """Rebuild a flow-stitched Chrome trace from a telemetry JSON export.

    The snapshot keeps sim-clock timestamps per span, so the rebuilt
    trace uses the ``sim`` timebase. Spans tagged with a trace id get
    flow events (``"s"``/``"t"``) stitching every hop of a packet into
    one visual lane, exactly like the live exporter.
    """
    spans = doc.get("spans", [])
    events: List[Dict[str, object]] = []
    track_ids: Dict[str, int] = {}
    flow_seen: Dict[str, int] = {}
    for span in spans:
        track = str(span.get("track", "main"))
        tid = track_ids.get(track)
        if tid is None:
            tid = len(track_ids) + 1
            track_ids[track] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            })
        name = str(span.get("name", "?"))
        ts = float(span.get("sim_start_s", 0.0)) * 1e6
        dur = (
            float(span.get("sim_end_s", 0.0))
            - float(span.get("sim_start_s", 0.0))
        ) * 1e6
        args = span.get("args") or {}
        events.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": ts,
            "dur": dur,
            "args": dict(args),
        })
        trace_tag = args.get("trace")
        if isinstance(trace_tag, str):
            step = flow_seen.get(trace_tag, 0)
            flow_seen[trace_tag] = step + 1
            events.append({
                "name": "trace",
                "cat": "trace",
                "ph": "s" if step == 0 else "t",
                "id": trace_tag,
                "pid": 1,
                "tid": tid,
                "ts": ts,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": _TRACE_SCHEMA,
            "timebase": "sim",
            "spans_dropped": doc.get("spans_dropped", 0),
        },
    }


# --- timeline / health rendering (from a TIMESERIES.json export) --------------

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One block glyph per value, scaled to the series maximum."""
    top = max(values, default=0.0)
    if top <= 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int(round(v / top * (len(_SPARKS) - 1))))]
        for v in values
    )


def _series(doc: Mapping[str, object]) -> Dict[str, List[float]]:
    """Per-key delta series over windows ``0..max(w)`` (dense, zeros
    where a key's frame omitted it)."""
    frames = doc.get("frames", [])
    if not frames:
        return {}
    last_window = max(int(f["w"]) for f in frames)
    deltas = {int(f["w"]): f.get("v", {}) for f in frames}
    keys = sorted({k for v in deltas.values() for k in v})
    return {
        key: [
            float(deltas.get(w, {}).get(key, 0.0))
            for w in range(last_window + 1)
        ]
        for key in keys
    }


def render_timeline(
    doc: Mapping[str, object],
    metric: Optional[str] = None,
    top: int = 24,
) -> str:
    """The flight-recorder frame stream as sparkline rows."""
    interval = float(doc.get("interval_s", 0.0))
    frames = doc.get("frames", [])
    series = _series(doc)
    if metric:
        series = {k: v for k, v in series.items() if metric in k}
    lines = [
        f"timeline ({doc.get('schema', 'unversioned')})",
        f"  windows:  {max((int(f['w']) for f in frames), default=-1) + 1}"
        f" x {interval:g}s"
        + (
            f" (+{doc['frames_dropped']} frames evicted)"
            if doc.get("frames_dropped")
            else ""
        ),
        f"  metrics:  {len(series)}"
        + (f" matching {metric!r}" if metric else ""),
    ]
    if not series:
        lines.append("  (no matching series)")
        return "\n".join(lines)
    ranked = sorted(
        series.items(), key=lambda item: (-sum(item[1]), item[0])
    )
    shown = ranked[:top]
    width = max(len(key) for key, _ in shown)
    lines.append("")
    for key, values in shown:
        final = cumulative_at(frames, max(int(f["w"]) for f in frames)).get(
            key, 0.0
        )
        lines.append(
            f"  {key.ljust(width)}  {sparkline(values)}  total {final:g}"
        )
    if len(ranked) > len(shown):
        lines.append(f"  ... {len(ranked) - len(shown)} more (use --top)")
    return "\n".join(lines)


def render_health(doc: Mapping[str, object]) -> str:
    """Health rules, per-rule raised/quiet timelines, and the alert log."""
    frames = doc.get("frames", [])
    alerts = doc.get("alerts", [])
    rules = doc.get("rules", [])
    last_window = max((int(f["w"]) for f in frames), default=-1)
    lines = [
        f"health ({doc.get('schema', 'unversioned')})",
        f"  windows: {last_window + 1} x {float(doc.get('interval_s', 0.0)):g}s",
        f"  rules:   {len(rules)}",
        f"  alerts:  {len(alerts)} "
        f"({sum(1 for a in alerts if a.get('kind') == 'alert.raised')} raised, "
        f"{sum(1 for a in alerts if a.get('kind') == 'alert.cleared')} cleared)",
    ]
    if rules:
        lines.append("")
        width = max(len(str(r.get("name", "?"))) for r in rules)
        for rule in rules:
            name = str(rule.get("name", "?"))
            raised = [
                int(a["detail"]["window"])
                for a in alerts
                if a.get("kind") == "alert.raised"
                and (a.get("detail") or {}).get("rule") == name
            ]
            cleared = [
                int(a["detail"]["window"])
                for a in alerts
                if a.get("kind") == "alert.cleared"
                and (a.get("detail") or {}).get("rule") == name
            ]
            row = []
            up = False
            for w in range(last_window + 1):
                if w in raised:
                    up = True
                if w in cleared:
                    up = False
                row.append("█" if up else "·")
            state = "RAISED" if up else "ok"
            lines.append(
                f"  {name.ljust(width)}  |{''.join(row)}|  "
                f"{rule.get('type', '?')}  {state}"
            )
    if alerts:
        lines.append("")
        for alert in alerts:
            detail = alert.get("detail") or {}
            extras = ", ".join(
                f"{k}={detail[k]}"
                for k in sorted(detail)
                if k not in ("rule", "window")
            )
            lines.append(
                f"  t={alert.get('time_s'):g}s w={detail.get('window')} "
                f"{alert.get('kind')} {detail.get('rule')}"
                + (f" ({extras})" if extras else "")
            )
    return "\n".join(lines)


# --- entry point --------------------------------------------------------------


def _audit_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render a post-run attestation audit report.",
    )
    parser.add_argument("audit", type=pathlib.Path, help="audit JSON export")
    parser.add_argument(
        "--trace", help="render only this trace id's narrative"
    )
    parser.add_argument(
        "--stats",
        type=pathlib.Path,
        help="simulator stats JSON export; adds the congestion & "
        "recovery counter block to the overview",
    )
    parser.add_argument(
        "--telemetry",
        type=pathlib.Path,
        help="telemetry JSON export (required for --chrome-out)",
    )
    parser.add_argument(
        "--chrome-out",
        type=pathlib.Path,
        help="write a flow-stitched Chrome trace rebuilt from --telemetry",
    )
    args = parser.parse_args(argv)

    doc = load_audit(args.audit)
    stats = load_stats(args.stats) if args.stats is not None else None
    print(render_report(doc, trace=args.trace, stats=stats))

    if args.chrome_out is not None:
        if args.telemetry is None:
            parser.error("--chrome-out requires --telemetry")
        telemetry_doc = _load_json(args.telemetry)
        trace_doc = chrome_trace_from_snapshot(telemetry_doc)
        with args.chrome_out.open("w", encoding="utf-8") as handle:
            json.dump(trace_doc, handle)
            handle.write("\n")
        print(f"\nchrome trace written to {args.chrome_out}")
    return 0


def _timeline_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report timeline",
        description="Render flight-recorder frames as sparkline rows.",
    )
    parser.add_argument(
        "timeseries", type=pathlib.Path, help="TIMESERIES.json export"
    )
    parser.add_argument(
        "--metric", help="show only series whose key contains this substring"
    )
    parser.add_argument(
        "--top", type=int, default=24, help="show at most N series"
    )
    args = parser.parse_args(argv)
    print(render_timeline(
        load_timeseries(args.timeseries), metric=args.metric, top=args.top
    ))
    return 0


def _health_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report health",
        description="Render health rules and the alert timeline.",
    )
    parser.add_argument(
        "timeseries", type=pathlib.Path, help="TIMESERIES.json export"
    )
    args = parser.parse_args(argv)
    print(render_health(load_timeseries(args.timeseries)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "timeline":
            return _timeline_main(argv[1:])
        if argv and argv[0] == "health":
            return _health_main(argv[1:])
        return _audit_main(argv)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
