"""A minimal JSON-Schema (draft-7 subset) validator for export formats.

CI validates every exported audit document and Chrome trace against the
schemas checked in under ``docs/schemas/`` — but the CI matrix installs
only pytest, so we cannot rely on the ``jsonschema`` package being
present. This module implements the small subset those schemas use:

``type``, ``const``, ``enum``, ``required``, ``properties``,
``additionalProperties``, ``items``, ``pattern``, ``minimum``,
``maximum``, ``minItems``, ``anyOf``.

:func:`validate` returns a list of error strings (empty = valid) with
JSON-pointer-ish paths, and — when the real ``jsonschema`` package *is*
importable — :func:`validate_strict` cross-checks with it too, so local
runs get the full validator for free.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Dict, List, Mapping, Optional, Sequence, Union

Pathish = Union[str, pathlib.Path]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check_type(instance: object, expected: Union[str, Sequence[str]]) -> bool:
    names = [expected] if isinstance(expected, str) else list(expected)
    for name in names:
        py = _TYPES.get(name)
        if py is None:
            continue
        # bool is an int subclass in Python; JSON Schema keeps them apart.
        if name in ("integer", "number") and isinstance(instance, bool):
            continue
        if isinstance(instance, py):  # type: ignore[arg-type]
            return True
    return False


def _validate(
    instance: object, schema: Mapping[str, object], path: str, errors: List[str]
) -> None:
    if "anyOf" in schema:
        branches: List[List[str]] = []
        for sub in schema["anyOf"]:  # type: ignore[union-attr]
            sub_errors: List[str] = []
            _validate(instance, sub, path, sub_errors)
            if not sub_errors:
                break
            branches.append(sub_errors)
        else:
            errors.append(f"{path}: matches no anyOf branch")
            return

    expected_type = schema.get("type")
    if expected_type is not None and not _check_type(instance, expected_type):
        errors.append(
            f"{path}: expected type {expected_type}, "
            f"got {type(instance).__name__}"
        )
        return

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}")
    if "enum" in schema and instance not in schema["enum"]:  # type: ignore[operator]
        errors.append(f"{path}: {instance!r} not in enum")

    if isinstance(instance, str):
        pattern = schema.get("pattern")
        if pattern is not None and re.search(str(pattern), instance) is None:
            errors.append(f"{path}: {instance!r} does not match {pattern!r}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        minimum = schema.get("minimum")
        if minimum is not None and instance < minimum:  # type: ignore[operator]
            errors.append(f"{path}: {instance} below minimum {minimum}")
        maximum = schema.get("maximum")
        if maximum is not None and instance > maximum:  # type: ignore[operator]
            errors.append(f"{path}: {instance} above maximum {maximum}")

    if isinstance(instance, dict):
        for name in schema.get("required", ()):  # type: ignore[union-attr]
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, sub in properties.items():  # type: ignore[union-attr]
            if name in instance:
                _validate(instance[name], sub, f"{path}/{name}", errors)
        additional = schema.get("additionalProperties", True)
        if additional is False:
            for name in instance:
                if name not in properties:  # type: ignore[operator]
                    errors.append(f"{path}: unexpected property {name!r}")
        elif isinstance(additional, Mapping):
            for name, value in instance.items():
                if name not in properties:  # type: ignore[operator]
                    _validate(value, additional, f"{path}/{name}", errors)

    if isinstance(instance, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(instance) < min_items:  # type: ignore[operator]
            errors.append(f"{path}: fewer than {min_items} items")
        items = schema.get("items")
        if isinstance(items, Mapping):
            for index, value in enumerate(instance):
                _validate(value, items, f"{path}/{index}", errors)


def validate(instance: object, schema: Mapping[str, object]) -> List[str]:
    """Validate; returns error strings (empty list means valid)."""
    errors: List[str] = []
    _validate(instance, schema, "$", errors)
    return errors


def validate_strict(instance: object, schema: Mapping[str, object]) -> List[str]:
    """:func:`validate`, cross-checked with ``jsonschema`` if available.

    The built-in subset validator always runs; when the real package is
    importable its findings are appended, so a schema feature our
    subset silently ignores still fails loudly somewhere.
    """
    errors = validate(instance, schema)
    try:
        import jsonschema  # type: ignore
    except ImportError:
        return errors
    validator_cls = jsonschema.validators.validator_for(schema)
    validator = validator_cls(schema)
    for error in validator.iter_errors(instance):
        pointer = "/".join(str(part) for part in error.absolute_path)
        errors.append(f"$/{pointer}: {error.message}")
    return errors


def load_schema(path: Pathish) -> Dict[str, object]:
    """Load a schema document from disk."""
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def assert_valid(
    instance: object,
    schema: Mapping[str, object],
    label: Optional[str] = None,
) -> None:
    """Raise ``ValueError`` listing every violation (tests use this)."""
    errors = validate_strict(instance, schema)
    if errors:
        what = f" for {label}" if label else ""
        raise ValueError(
            f"schema validation failed{what}:\n  " + "\n  ".join(errors)
        )


__all__ = [
    "validate",
    "validate_strict",
    "load_schema",
    "assert_valid",
]
