"""The flight recorder: windowed time-series frames over the registry.

End-of-run telemetry answers *how much*; an operator reacting to a
compromised switch needs *when*. The :class:`FlightRecorder` samples
the metrics registry (plus derived per-node state) on a fixed
**sim-time** cadence and stores one sparse, delta-encoded frame per
window, so a million-packet fat-tree campaign keeps a bounded, replay-
able timeline of per-link throughput, drop rates, verdict outcomes,
epoch seals and cache churn — the substrate the health/SLO engine
(:mod:`repro.telemetry.health`) evaluates at every window close.

Determinism is the design driver, exactly as for stats and the audit
journal (``docs/SHARDING.md``):

- Ticks are **virtual**: the simulator fires every due tick *before*
  executing an event at ``t`` (a tick at exactly ``t`` fires first, so
  frame ``w`` covers the half-open interval ``[w·Δ, (w+1)·Δ)``).
  Nothing enters the event queue, so ``events_processed`` and every
  seeded draw are untouched by sampling.
- Frame times are **nominal** (``(w+1)·Δ``), never a shard-local
  clock read, and **empty windows produce no frame** — which is what
  lets per-shard streams (whose shards finish at different local
  times) merge byte-identically to the monolith's stream.
- The cumulative view reads only **single-writer** state: counters
  (each labeled child is bumped by exactly one shard), ``*_sim_seconds``
  histograms (sim-clock latencies — wall-clock ones are excluded), and
  owned-node probes. Deltas are therefore exact, and
  :func:`merge_frame_streams` is a per-window field-wise sum.

Memory stays bounded two ways: frames are sparse deltas (quiet links
cost nothing), and the frame store is a counted-eviction
:class:`~repro.util.ring.RingBuffer` like every other log here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.telemetry.metrics import Counter, Histogram, render_name
from repro.util.ring import RingBuffer

#: Schema tag stamped into time-series exports (bump on layout changes).
TIMESERIES_SCHEMA = "repro.timeseries/v1"

DEFAULT_MAX_FRAMES = 8192

#: Histograms whose *base name* ends with this suffix observe sim-clock
#: durations and join the byte-identity contract; wall-clock histograms
#: stay out of frames entirely.
SIM_SECONDS_SUFFIX = "_sim_seconds"

#: A probe yields extra cumulative ``(flat_key, value)`` pairs sampled
#: at each tick (e.g. owned-node evidence-cache counters).
Probe = Callable[[], Iterable[Tuple[str, float]]]

Frame = Dict[str, object]


@dataclass(frozen=True)
class SamplingSpec:
    """How a campaign wants its flight recorder configured.

    Frozen and picklable: the sharded runner ships one spec to every
    worker so all shards tick on the same nominal grid.
    """

    #: Window width in sim seconds; ticks fire at ``(w+1)·interval_s``.
    interval_s: float
    #: Ring capacity of the frame store (evictions are counted).
    max_frames: int = DEFAULT_MAX_FRAMES

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(
                f"sample interval must be positive, got {self.interval_s}"
            )
        if self.max_frames <= 0:
            raise ValueError(
                f"max_frames must be positive, got {self.max_frames}"
            )


# --- the delta codec -----------------------------------------------------------


def delta_encode(
    prev: Mapping[str, float], curr: Mapping[str, float]
) -> Dict[str, float]:
    """Sparse difference ``curr - prev`` (keys absent from ``prev``
    count from zero; unchanged keys are omitted)."""
    delta: Dict[str, float] = {}
    for key, value in curr.items():
        step = value - prev.get(key, 0.0)
        if step != 0.0:
            delta[key] = step
    return delta


def apply_delta(
    base: Mapping[str, float], delta: Mapping[str, float]
) -> Dict[str, float]:
    """Fold one frame's delta back onto a cumulative view."""
    out = dict(base)
    for key, step in delta.items():
        out[key] = out.get(key, 0.0) + step
    return out


def cumulative_at(frames: Sequence[Frame], window: int) -> Dict[str, float]:
    """Replay frames up to and including ``window`` into one view."""
    view: Dict[str, float] = {}
    for frame in frames:
        if int(frame["w"]) > window:
            break
        view = apply_delta(view, frame["v"])  # type: ignore[arg-type]
    return view


# --- the recorder --------------------------------------------------------------


class FlightRecorder:
    """Samples one telemetry domain into windowed delta frames.

    The owner (a :class:`~repro.net.simulator.Simulator` or
    :class:`~repro.net.sharding.ShardSimulator`) calls
    :meth:`advance_to` with event times as its loop drains, and
    :meth:`finish` once at the end of the run; both are cheap no-ops
    when no tick is due.
    """

    def __init__(
        self,
        spec: SamplingSpec,
        telemetry,
        probes: Sequence[Probe] = (),
        runtime_probe: Optional[Callable[[], Tuple[float, float]]] = None,
    ) -> None:
        self.spec = spec
        self.telemetry = telemetry
        self.probes: List[Probe] = list(probes)
        #: Optional ``() -> (backlog_len, busy_seconds)`` — wall-clock
        #: flavored, reported in the non-canonical ``runtime`` section
        #: only, never inside frames.
        self.runtime_probe = runtime_probe
        self._frames: RingBuffer[Frame] = RingBuffer(spec.max_frames)
        self._prev: Dict[str, float] = {}
        self._ticks = 0
        self._finished = False

    # -- the sampling loop ------------------------------------------------------

    @property
    def next_tick_s(self) -> float:
        """Sim time of the next due tick (the owner's pump threshold)."""
        return (self._ticks + 1) * self.spec.interval_s

    def advance_to(self, now_s: float) -> None:
        """Fire every tick with nominal time ≤ ``now_s``.

        Called *before* the event at ``now_s`` executes, so that
        event's effects land in the next window.
        """
        if self._finished:
            return
        interval = self.spec.interval_s
        while (self._ticks + 1) * interval <= now_s:
            self._close_window(self._ticks)
            self._ticks += 1

    def finish(self, now_s: float) -> None:
        """Fire due ticks, then close the residual partial window.

        Idempotent — the sharded path finalizes defensively.
        """
        if self._finished:
            return
        self.advance_to(now_s)
        self._close_window(self._ticks)
        self._finished = True

    def _close_window(self, window: int) -> None:
        curr = self._cumulative()
        delta = delta_encode(self._prev, curr)
        self._prev = curr
        if not delta:
            return  # idle window: no frame, by design (see module doc)
        self._frames.append(
            {
                "w": window,
                "t": (window + 1) * self.spec.interval_s,
                "v": delta,
            }
        )

    def _cumulative(self) -> Dict[str, float]:
        """The deterministic cumulative view sampled at each tick."""
        view: Dict[str, float] = {}
        for metric in self.telemetry.metrics:
            if isinstance(metric, Counter):
                view[render_name(metric.name, metric.labels)] = metric.value
            elif isinstance(metric, Histogram) and metric.name.endswith(
                SIM_SECONDS_SUFFIX
            ):
                view[render_name(metric.name + ".count", metric.labels)] = (
                    float(metric.count)
                )
                view[render_name(metric.name + ".sum", metric.labels)] = (
                    metric.sum
                )
        for probe in self.probes:
            for key, value in probe():
                view[key] = float(value)
        return view

    # -- results ----------------------------------------------------------------

    @property
    def frames(self) -> List[Frame]:
        """Closed frames, oldest first (bounded; see ``frames_dropped``)."""
        return self._frames.to_list()

    @property
    def frames_dropped(self) -> int:
        return self._frames.dropped

    def runtime(self) -> Dict[str, float]:
        """Wall-clock-flavored extras for the ``runtime`` export section."""
        if self.runtime_probe is None:
            return {}
        backlog, busy_s = self.runtime_probe()
        return {"backlog": float(backlog), "busy_s": float(busy_s)}


def node_cache_probe(sim) -> Probe:
    """Cumulative evidence-cache counters for the nodes ``sim`` owns.

    Mirrors the ownership gating of
    :func:`~repro.telemetry.instrument.collect_simulator`, so each
    ``switch=`` label is emitted by exactly one shard and frame merges
    stay exact. (``hit_rate`` is derived, not cumulative — the report
    side recomputes it from hits/misses.)
    """

    def probe() -> Iterable[Tuple[str, float]]:
        owns = getattr(sim, "owns", None)
        for name in getattr(sim, "bound_nodes", []):
            if owns is not None and not owns(name):
                continue
            node = sim.node(name)
            if getattr(node, "ra_stats", None) is None:
                continue
            stats = node.cache.stats
            labels = (("switch", name),)
            yield render_name("pera.cache.hits", labels), stats.hits
            yield render_name("pera.cache.misses", labels), stats.misses
            yield (
                render_name("pera.cache.invalidations", labels),
                stats.invalidations,
            )

    return probe


def qdisc_depth_probe(sim) -> Probe:
    """Current egress-queue depths for the queues ``sim`` owns.

    A depth is a *level*, not a counter: the recorder's delta encoding
    turns the sampled series into signed steps, and summing them back
    (the health evaluator's cumulative view, a
    :class:`~repro.telemetry.health.LevelRule`'s input) reconstructs
    the occupancy at each window close. Queues are created lazily but
    never destroyed, so once a key appears it is sampled at every
    later tick — the monotone key-set the delta encoder relies on.
    """

    def probe() -> Iterable[Tuple[str, float]]:
        depths = getattr(sim, "qdisc_queue_depths", None)
        if depths is None:
            return
        for node, port, depth_bytes in depths():
            labels = (("node", node), ("port", str(port)))
            yield render_name("net.qdisc.depth_bytes", labels), float(
                depth_bytes
            )

    return probe


def install_recorder(sim, spec: SamplingSpec) -> FlightRecorder:
    """Attach a flight recorder to a simulator (monolith or shard).

    Wires the owned-node cache probe, the owned egress-queue depth
    probe, and the simulator's runtime probe, then hands the recorder
    to ``sim.install_recorder`` so the event loop pumps it.
    """
    recorder = FlightRecorder(
        spec,
        sim.telemetry,
        probes=[node_cache_probe(sim), qdisc_depth_probe(sim)],
        runtime_probe=lambda: sim.recorder_runtime(),
    )
    sim.install_recorder(recorder)
    return recorder


# --- canonical merge -----------------------------------------------------------


def merge_frame_streams(
    shard_frames: Sequence[Sequence[Frame]],
) -> List[Frame]:
    """Merge per-shard frame streams into the canonical global stream.

    Frames group by window index and their sparse deltas sum key-wise
    (every key is single-writer or an integer counter, so the sum is
    exact); windows no shard populated stay absent, matching the
    monolith's empty-window omission. Nominal times make the merged
    ``t`` well-defined regardless of shard-local finish times.
    """
    by_window: Dict[int, Dict[str, float]] = {}
    for frames in shard_frames:
        for frame in frames:
            window = int(frame["w"])
            bucket = by_window.setdefault(window, {})
            for key, step in frame["v"].items():  # type: ignore[union-attr]
                bucket[key] = bucket.get(key, 0.0) + step
    merged: List[Frame] = []
    for window in sorted(by_window):
        values = by_window[window]
        # Zero-sum keys vanish, exactly as delta_encode omits zero
        # steps on the monolith (can only arise from exotic probes —
        # counter deltas are nonnegative).
        values = {k: values[k] for k in sorted(values) if values[k] != 0.0}
        if not values:
            continue
        merged.append({"w": window, "t": None, "v": values})
    return merged


def renumber_frame_times(frames: List[Frame], interval_s: float) -> List[Frame]:
    """Stamp nominal close times onto merged frames (in place)."""
    for frame in frames:
        frame["t"] = (int(frame["w"]) + 1) * interval_s
    return frames


# --- exports -------------------------------------------------------------------


def timeseries_snapshot(
    frames: Sequence[Frame],
    interval_s: float,
    frames_dropped: int = 0,
    alerts: Sequence[Mapping[str, object]] = (),
    rules: Sequence[Mapping[str, object]] = (),
    runtime: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The ``repro.timeseries/v1`` export document.

    Everything except ``runtime`` is deterministic (byte-identical
    across shard counts); ``runtime`` carries wall-clock extras
    (per-shard busy seconds, backlogs) and is excluded from
    :func:`timeseries_export`.
    """
    doc: Dict[str, object] = {
        "schema": TIMESERIES_SCHEMA,
        "interval_s": interval_s,
        "frames": [dict(f) for f in frames],
        "frames_dropped": frames_dropped,
        "alerts": [dict(a) for a in alerts],
        "rules": [dict(r) for r in rules],
    }
    if runtime:
        doc["runtime"] = dict(runtime)
    return doc


def timeseries_export(doc: Mapping[str, object]) -> str:
    """Canonical JSON of the deterministic sections (the byte-identity
    artifact the determinism sweep compares)."""
    body = {k: v for k, v in doc.items() if k != "runtime"}
    return json.dumps(body, sort_keys=True)


def dump_timeseries(doc: Mapping[str, object], path) -> None:
    """Write the full document (runtime included) as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "DEFAULT_MAX_FRAMES",
    "FlightRecorder",
    "Probe",
    "SIM_SECONDS_SUFFIX",
    "SamplingSpec",
    "TIMESERIES_SCHEMA",
    "apply_delta",
    "cumulative_at",
    "delta_encode",
    "dump_timeseries",
    "install_recorder",
    "merge_frame_streams",
    "node_cache_probe",
    "qdisc_depth_probe",
    "renumber_frame_times",
    "timeseries_export",
    "timeseries_snapshot",
]
