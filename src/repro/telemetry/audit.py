"""The attestation audit journal: structured, append-only, bounded.

Counters say a signature was verified; the journal says *which*
signature, over *which* evidence node, for *which* packet, and what the
appraiser concluded. Each :class:`AuditEvent` is one step of an RA
protocol run — a measurement taken, an evidence node created, composed,
inspected or stripped, a signature made or verified, a cache hit, a
verdict — linked to

- the owning **trace** (:mod:`repro.telemetry.tracing` id + hop), and
- the content-addressed **evidence digest** of the
  :mod:`repro.evidence` node it concerns,

so the journal is the faithful, auditable execution record Copland-
style infrastructures demand: every claim an appraiser makes about a
packet can be replayed against the journal entry where the evidence
was produced.

The journal is a counted-eviction :class:`~repro.util.ring.RingBuffer`
(like spans and the packet log): heavy traffic truncates the oldest
events and says so, instead of eating the heap. The disabled fast path
is the shared :data:`NULL_JOURNAL`, whose :meth:`~AuditJournal.record`
does nothing and allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.util.clock import SimClock
from repro.util.ring import RingBuffer

DEFAULT_MAX_EVENTS = 65536

#: Schema tag stamped into audit exports (bump on layout changes).
AUDIT_SCHEMA = "repro.audit/v1"


class AuditKind:
    """Event-kind vocabulary (plain strings, namespaced like metrics)."""

    TRACE_STARTED = "trace.started"
    PACKET_FORWARDED = "packet.forwarded"
    PACKET_DELIVERED = "packet.delivered"
    PACKET_DROPPED = "packet.dropped"
    CONTROL_SENT = "control.sent"
    MEASUREMENT_TAKEN = "measurement.taken"
    EVIDENCE_CREATED = "evidence.created"
    EVIDENCE_COMPOSED = "evidence.composed"
    EVIDENCE_INSPECTED = "evidence.inspected"
    EVIDENCE_PUSHED = "evidence.pushed"
    EVIDENCE_SENT_OOB = "evidence.sent_oob"
    EVIDENCE_CACHE_HIT = "evidence.cache_hit"
    EVIDENCE_CACHE_MISS = "evidence.cache_miss"
    SIGNATURE_MADE = "signature.made"
    SIGNATURE_VERIFIED = "signature.verified"
    EPOCH_SEALED = "epoch.sealed"
    CHECK_FAILED = "check.failed"
    VERDICT_ISSUED = "verdict.issued"
    POLICY_TEST_FAILED = "policy.test_failed"
    GATE_DROPPED = "gate.dropped"
    CONTROL_DROPPED = "control.dropped"
    FAULT_INJECTED = "fault.injected"
    FAULT_CLEARED = "fault.cleared"
    RECOVERY_RESENT = "recovery.resent"
    RECOVERY_RETRY = "recovery.retry"
    RECOVERY_RECOVERED = "recovery.recovered"
    RECOVERY_GAVE_UP = "recovery.gave_up"
    RECOVERY_REPROVISIONED = "recovery.reprovisioned"
    ALERT_RAISED = "alert.raised"
    ALERT_CLEARED = "alert.cleared"


class Check:
    """Appraisal check names (the ``check=`` detail of CHECK_FAILED)."""

    SIGNATURE = "signature"
    MEASUREMENT = "measurement"
    CHAIN = "chain"
    COVERAGE = "coverage"
    FUNCTION = "function"
    NONCE = "nonce"
    BINDING = "binding"
    SHIM = "shim"
    AVAILABILITY = "availability"
    OTHER = "other"


def classify_failure(message: str) -> str:
    """Map a free-text appraisal failure onto a :class:`Check` name.

    Used where failures are still built as strings (the Copland-side
    :class:`~repro.ra.appraiser.Appraiser`); the path appraiser reports
    check names structurally instead.
    """
    text = message.lower()
    if "signature" in text or "signer" in text:
        return Check.SIGNATURE
    if "nonce" in text:
        return Check.NONCE
    if "chain" in text or "reorder" in text:
        return Check.CHAIN
    if "packet digest" in text or "spliced onto" in text:
        return Check.BINDING
    if "measurement" in text or "reference value" in text:
        return Check.MEASUREMENT
    if "stripped" in text or "hops" in text or "records but" in text:
        return Check.COVERAGE
    if "function" in text:
        return Check.FUNCTION
    if "shim" in text:
        return Check.SHIM
    if (
        "unreachable" in text
        or "unavailable" in text
        or "timed out" in text
        or "no response" in text
    ):
        return Check.AVAILABILITY
    return Check.OTHER


@dataclass(frozen=True)
class AuditEvent:
    """One structured journal entry (immutable once recorded)."""

    seq: int
    time_s: float
    kind: str
    actor: str
    trace: Optional[str] = None
    hop: Optional[int] = None
    digest: Optional[str] = None  # hex content digest of the evidence node
    detail: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """The export form (what the audit JSON schema describes)."""
        doc: Dict[str, object] = {
            "seq": self.seq,
            "time_s": self.time_s,
            "kind": self.kind,
            "actor": self.actor,
        }
        if self.trace is not None:
            doc["trace"] = self.trace
        if self.hop is not None:
            doc["hop"] = self.hop
        if self.digest is not None:
            doc["digest"] = self.digest
        if self.detail:
            doc["detail"] = dict(self.detail)
        return doc

    def __repr__(self) -> str:
        trace = f" trace={self.trace}@{self.hop}" if self.trace else ""
        return f"AuditEvent({self.seq}, {self.kind}, {self.actor}{trace})"


class AuditJournal:
    """Bounded append-only journal against one (rebindable) sim clock."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.clock = clock or SimClock()
        self._events: RingBuffer[AuditEvent] = RingBuffer(max_events)
        self._seq = 0

    def bind_clock(self, clock: SimClock) -> None:
        """Point event timestamps at a (new) simulator's clock."""
        self.clock = clock

    def record(
        self,
        kind: str,
        actor: str,
        trace: Optional[str] = None,
        hop: Optional[int] = None,
        digest: Optional[bytes] = None,
        **detail: object,
    ) -> AuditEvent:
        """Append one event; returns it (mostly for tests)."""
        self._seq += 1
        event = AuditEvent(
            seq=self._seq,
            time_s=self.clock.now,
            kind=kind,
            actor=actor,
            trace=trace,
            hop=hop,
            digest=digest.hex() if digest is not None else None,
            detail=detail,
        )
        self._events.append(event)
        return event

    # --- queries -----------------------------------------------------------

    @property
    def events(self) -> List[AuditEvent]:
        """All retained events, oldest first (bounded; see ``dropped``)."""
        return self._events.to_list()

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer."""
        return self._events.dropped

    def for_trace(self, trace_id: Optional[str]) -> List[AuditEvent]:
        """Events belonging to one trace, in journal order."""
        if trace_id is None:
            return []
        return [e for e in self._events if e.trace == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids seen, in first-seen order."""
        seen: List[str] = []
        for event in self._events:
            if event.trace is not None and event.trace not in seen:
                seen.append(event.trace)
        return seen

    def load(self, events: Iterable["EventLike"]) -> None:
        """Append pre-built events (merged shard streams, replays)."""
        for event in events:
            if not isinstance(event, AuditEvent):
                event = event_from_dict(event)
            self._events.append(event)
            if event.seq > self._seq:
                self._seq = event.seq

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


class _NullJournal(AuditJournal):
    """The disabled fast path: record() allocates nothing."""

    def record(self, kind, actor, trace=None, hop=None, digest=None, **detail):
        return None  # type: ignore[return-value]


NULL_JOURNAL = _NullJournal(max_events=1)


def event_from_dict(doc: Mapping[str, object]) -> AuditEvent:
    """Rebuild an :class:`AuditEvent` from its :meth:`~AuditEvent.as_dict`
    export form (the sharded runner ships events across processes as
    dicts and rehydrates them into the parent journal)."""
    return AuditEvent(
        seq=int(doc["seq"]),  # type: ignore[arg-type]
        time_s=float(doc["time_s"]),  # type: ignore[arg-type]
        kind=str(doc["kind"]),
        actor=str(doc["actor"]),
        trace=doc.get("trace"),  # type: ignore[arg-type]
        hop=doc.get("hop"),  # type: ignore[arg-type]
        digest=doc.get("digest"),  # type: ignore[arg-type]
        detail=dict(doc.get("detail", {}) or {}),  # type: ignore[arg-type]
    )


def _merge_sort_key(doc: Mapping[str, object], shard_seq: int):
    """Canonical ordering for merged journals:
    ``(time, trace, actor, seq)``.

    Every actor is owned by exactly one shard (ownership gates), so an
    actor's events all carry shard-local seqs from the same journal and
    their relative order is the actor's causal order — invariant under
    re-partitioning. Distinct actors sharing a ``(time, trace)`` group
    are causally concurrent (an effect at another node always pays a
    strictly positive link latency, landing at a later timestamp; a
    cloned packet *can* put one trace at two nodes at the same instant,
    which is exactly the concurrent case), so ordering them by name is
    a sound canonical choice.
    """
    trace = doc.get("trace") or ""
    return (
        float(doc["time_s"]),  # type: ignore[arg-type]
        trace,
        str(doc.get("actor", "")),
        shard_seq,
    )


def merge_audit_events(
    shard_events: Sequence[Sequence[EventLike]],
) -> List[Dict[str, object]]:
    """Merge per-shard audit streams into one canonical journal.

    Returns export-form dicts sorted by ``(sim_time, trace_id,
    tiebreak)`` and renumbered ``seq`` = 1..N, so the merged stream is
    byte-identical no matter how the fabric was partitioned — the
    determinism contract :mod:`repro.net.shardrun` pins in tests.
    """
    keyed = []
    for events in shard_events:
        for event in events:
            doc = event.as_dict() if isinstance(event, AuditEvent) else dict(event)
            keyed.append((_merge_sort_key(doc, int(doc.get("seq", 0))), doc))
    keyed.sort(key=lambda pair: pair[0])
    merged = []
    for new_seq, (_, doc) in enumerate(keyed, start=1):
        doc["seq"] = new_seq
        merged.append(doc)
    return merged

# --- the narrative renderer (shared by explain() and the report CLI) ----------

EventLike = Union[AuditEvent, Mapping[str, object]]


def _as_dict(event: EventLike) -> Mapping[str, object]:
    if isinstance(event, AuditEvent):
        return event.as_dict()
    return event


def _describe(doc: Mapping[str, object]) -> str:
    """One human-readable line for one event (without the hop prefix)."""
    kind = doc.get("kind", "?")
    actor = doc.get("actor", "?")
    detail = doc.get("detail", {}) or {}
    digest = doc.get("digest")
    short = f" [{str(digest)[:12]}]" if digest else ""
    if kind == AuditKind.TRACE_STARTED:
        return f"{actor}: trace started"
    if kind == AuditKind.PACKET_FORWARDED:
        return f"{actor}: forwarded over {detail.get('link', 'link')}"
    if kind == AuditKind.PACKET_DELIVERED:
        return f"{actor}: packet delivered"
    if kind == AuditKind.PACKET_DROPPED:
        return f"{actor}: packet dropped ({detail.get('reason', '?')})"
    if kind == AuditKind.CONTROL_SENT:
        return f"{actor}: control message to {detail.get('recipient', '?')}"
    if kind == AuditKind.MEASUREMENT_TAKEN:
        return f"{actor}: measured {detail.get('inertia', '?')}{short}"
    if kind == AuditKind.EVIDENCE_CREATED:
        return f"{actor}: evidence record created{short}"
    if kind == AuditKind.EVIDENCE_COMPOSED:
        return (
            f"{actor}: evidence composed "
            f"({detail.get('mode', '?')}){short}"
        )
    if kind == AuditKind.EVIDENCE_INSPECTED:
        return f"{actor}: inspected {detail.get('records', 0)} prior record(s)"
    if kind == AuditKind.EVIDENCE_PUSHED:
        return f"{actor}: pushed evidence in-band (+{detail.get('bytes', '?')}B)"
    if kind == AuditKind.EVIDENCE_SENT_OOB:
        return f"{actor}: sent evidence out-of-band to {detail.get('to', '?')}"
    if kind == AuditKind.EVIDENCE_CACHE_HIT:
        return f"{actor}: reused cached evidence record{short}"
    if kind == AuditKind.EVIDENCE_CACHE_MISS:
        return f"{actor}: evidence cache miss"
    if kind == AuditKind.SIGNATURE_MADE:
        return f"{actor}: signed evidence record{short}"
    if kind == AuditKind.EPOCH_SEALED:
        return (
            f"{actor}: epoch {detail.get('epoch', '?')} sealed "
            f"({detail.get('records', 0)} records, "
            f"{detail.get('reason', '?')})"
        )
    if kind == AuditKind.SIGNATURE_VERIFIED:
        ok = detail.get("ok", True)
        place = detail.get("place", "?")
        outcome = "verified" if ok else "FAILED verification"
        return f"{actor}: signature by {place} {outcome}{short}"
    if kind == AuditKind.CHECK_FAILED:
        where = detail.get("place")
        record = detail.get("record")
        at = ""
        if where is not None:
            at = f" at {where}"
            if record is not None:
                at += f" (record {record})"
        return (
            f"{actor}: check '{detail.get('check', '?')}' failed{at}: "
            f"{detail.get('message', '')}"
        )
    if kind == AuditKind.VERDICT_ISSUED:
        status = "ACCEPTED" if detail.get("accepted") else "REJECTED"
        return (
            f"{actor}: verdict {status} "
            f"({detail.get('records', 0)} records, "
            f"{detail.get('failures', 0)} failures)"
        )
    if kind == AuditKind.POLICY_TEST_FAILED:
        return f"{actor}: hop test failed (attestation skipped)"
    if kind == AuditKind.GATE_DROPPED:
        return f"{actor}: dropped by evidence gate"
    if kind == AuditKind.CONTROL_DROPPED:
        return (
            f"{actor}: control message dropped "
            f"({detail.get('reason', '?')})"
        )
    if kind == AuditKind.FAULT_INJECTED:
        return (
            f"{actor}: FAULT {detail.get('fault', '?')} "
            f"injected at {detail.get('target', '?')}"
        )
    if kind == AuditKind.FAULT_CLEARED:
        return (
            f"{actor}: fault {detail.get('fault', '?')} "
            f"cleared at {detail.get('target', '?')}"
        )
    if kind == AuditKind.RECOVERY_RESENT:
        return (
            f"{actor}: link loss recovered by local resend "
            f"({detail.get('attempts', '?')} attempt(s))"
        )
    if kind == AuditKind.RECOVERY_RETRY:
        return (
            f"{actor}: retrying delivery to {detail.get('to', '?')} "
            f"(attempt {detail.get('attempt', '?')})"
        )
    if kind == AuditKind.RECOVERY_RECOVERED:
        return (
            f"{actor}: delivery to {detail.get('to', '?')} recovered "
            f"after {detail.get('attempts', '?')} retry(ies)"
        )
    if kind == AuditKind.RECOVERY_GAVE_UP:
        return (
            f"{actor}: gave up on {detail.get('to', '?')} "
            f"after {detail.get('attempts', '?')} attempt(s)"
        )
    if kind == AuditKind.RECOVERY_REPROVISIONED:
        return (
            f"{actor}: reprovisioned {detail.get('switch', '?')} "
            "with the vetted program"
        )
    if kind == AuditKind.ALERT_RAISED:
        return (
            f"{actor}: ALERT {detail.get('rule', '?')} raised "
            f"at window {detail.get('window', '?')} "
            f"(value={detail.get('value', '?')})"
        )
    if kind == AuditKind.ALERT_CLEARED:
        return (
            f"{actor}: alert {detail.get('rule', '?')} cleared "
            f"at window {detail.get('window', '?')}"
        )
    extra = f" {dict(detail)}" if detail else ""
    return f"{actor}: {kind}{extra}"


def describe_event(event: EventLike) -> str:
    """Render one event as a human-readable line."""
    return _describe(_as_dict(event))


def narrative(
    events: Iterable[EventLike], trace_id: Optional[str] = None
) -> str:
    """Join one trace's events into the per-hop story of a packet.

    ``events`` may be :class:`AuditEvent` objects or exported dicts
    (the report CLI feeds the latter); when ``trace_id`` is given,
    events belonging to other traces are filtered out first.
    """
    docs = [_as_dict(e) for e in events]
    if trace_id is not None:
        docs = [d for d in docs if d.get("trace") == trace_id]
    if not docs:
        missing = f" {trace_id}" if trace_id else ""
        return f"(no audit events recorded for trace{missing})"
    docs.sort(key=lambda d: d.get("seq", 0))
    tid = trace_id or str(docs[0].get("trace", "?"))
    hops = [int(d["hop"]) for d in docs if d.get("hop") is not None]
    lines = [
        f"trace {tid}: {len(docs)} events over "
        f"{max(hops) if hops else 0} hop(s)"
    ]
    last_hop: object = object()  # sentinel: print the first prefix too
    for doc in docs:
        hop = doc.get("hop")
        prefix = f"  hop {hop}" if hop is not None else "  ----- "
        if hop == last_hop:
            prefix = " " * len(prefix)
        last_hop = hop
        lines.append(f"{prefix}  {_describe(doc)}")
    return "\n".join(lines)


def explain_verdict(verdict, events: Iterable[EventLike]) -> str:
    """The ``PathVerdict.explain()`` renderer: narrative + conclusion.

    ``verdict`` duck-types on ``accepted``/``failures``/``trace_id`` so
    this stays importable without the core layer.
    """
    trace_id = getattr(verdict, "trace_id", None)
    degraded = getattr(verdict, "degraded", False)
    story = narrative(events, trace_id=trace_id)
    lines = [story]
    if verdict.accepted:
        lines.append(
            "conclusion: ACCEPTED (DEGRADED — fail-open without appraisal)"
            if degraded
            else "conclusion: ACCEPTED — every check passed at every hop"
        )
    else:
        mode = " (degraded mode, fail-closed)" if degraded else ""
        lines.append(
            f"conclusion: REJECTED{mode} — "
            f"{len(verdict.failures)} check(s) failed"
        )
        lines.extend(f"  - {failure}" for failure in verdict.failures)
    return "\n".join(lines)


__all__ = [
    "AUDIT_SCHEMA",
    "AuditEvent",
    "AuditJournal",
    "AuditKind",
    "Check",
    "DEFAULT_MAX_EVENTS",
    "NULL_JOURNAL",
    "classify_failure",
    "describe_event",
    "event_from_dict",
    "explain_verdict",
    "merge_audit_events",
    "narrative",
]
