"""Trust analysis and mechanical policy hardening.

Two capabilities:

- :func:`analyze_phrase_trust` — classify a measurement phrase by the
  weakest adversary tier that defeats it (delegating to
  :mod:`repro.copland.adversary`), packaged with the witness strategy
  as a :class:`TrustReport`.
- :func:`harden_phrase` — the §4.2 rewrite: parallel measurement
  branches become sequenced branches and every measurement arm gains a
  signature, turning expression (1) into expression (2). The paper's
  claim — that this strictly raises the required adversary tier — is
  checked, not assumed: :func:`hardening_report` analyses both versions
  and reports the tiers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.copland.adversary import (
    AdversaryTier,
    AttackStrategy,
    ProtocolModel,
    analyze_measurement_protocol,
)
from repro.copland.ast import (
    At,
    BranchPar,
    BranchSeq,
    Linear,
    Measure,
    Phrase,
    Sign,
)


@dataclass(frozen=True)
class TrustReport:
    """The analysis outcome for one phrase."""

    phrase: Phrase
    tier: AdversaryTier
    strategy: Optional[AttackStrategy]

    @property
    def resists_slow_adversaries(self) -> bool:
        """True when only a recent/fast adversary (or none) wins."""
        return self.tier >= AdversaryTier.RECENT

    def describe(self) -> str:
        lines = [
            f"phrase: {self.phrase!r}",
            f"weakest defeating adversary: {self.tier.name}",
        ]
        if self.strategy is not None:
            lines.append("witness attack:")
            lines.append(self.strategy.describe())
        else:
            lines.append("no corrupt/repair strategy defeats this phrase")
        return "\n".join(lines)


def analyze_phrase_trust(
    phrase: Phrase, model: ProtocolModel, at_place: str = "rp"
) -> TrustReport:
    """Run the corrupt/repair analysis and package the result."""
    tier, strategy = analyze_measurement_protocol(
        phrase, model, at_place=at_place
    )
    return TrustReport(phrase=phrase, tier=tier, strategy=strategy)


def harden_phrase(phrase: Phrase) -> Phrase:
    """Apply the §4.2 hardening rewrite.

    - Every :class:`BranchPar` of measurements becomes a
      :class:`BranchSeq` (unordered arms are exactly what the repair
      adversary schedules around).
    - Every arm that measures but does not sign gains a ``-> !``
      (unsigned evidence can be forged instead of earned).
    """
    if isinstance(phrase, BranchPar):
        return BranchSeq(
            left=_ensure_signed(harden_phrase(phrase.left)),
            right=_ensure_signed(harden_phrase(phrase.right)),
            left_split=phrase.left_split,
            right_split=phrase.right_split,
        )
    if isinstance(phrase, BranchSeq):
        return BranchSeq(
            left=_ensure_signed(harden_phrase(phrase.left)),
            right=_ensure_signed(harden_phrase(phrase.right)),
            left_split=phrase.left_split,
            right_split=phrase.right_split,
            chain=phrase.chain,
        )
    if isinstance(phrase, Linear):
        return Linear(harden_phrase(phrase.left), harden_phrase(phrase.right))
    if isinstance(phrase, At):
        return At(phrase.place, harden_phrase(phrase.phrase))
    return phrase


def _contains_measurement(phrase: Phrase) -> bool:
    if isinstance(phrase, Measure):
        return True
    if isinstance(phrase, At):
        return _contains_measurement(phrase.phrase)
    if isinstance(phrase, (Linear, BranchSeq, BranchPar)):
        return _contains_measurement(phrase.left) or _contains_measurement(
            phrase.right
        )
    return False


def _ends_with_sign(phrase: Phrase) -> bool:
    if isinstance(phrase, Sign):
        return True
    if isinstance(phrase, Linear):
        return _ends_with_sign(phrase.right)
    if isinstance(phrase, At):
        return _ends_with_sign(phrase.phrase)
    return False


def _ensure_signed(phrase: Phrase) -> Phrase:
    """Append ``-> !`` to measurement arms lacking a signature.

    The signature is added *inside* an ``@p [...]`` wrapper so the
    measuring place signs its own evidence.
    """
    if not _contains_measurement(phrase) or _ends_with_sign(phrase):
        return phrase
    if isinstance(phrase, At):
        return At(phrase.place, _ensure_signed(phrase.phrase))
    return Linear(phrase, Sign())


@dataclass(frozen=True)
class HardeningReport:
    """Before/after analysis of a hardening rewrite."""

    before: TrustReport
    after: TrustReport

    @property
    def improved(self) -> bool:
        return self.after.tier > self.before.tier

    def describe(self) -> str:
        return "\n".join(
            [
                "=== before hardening ===",
                self.before.describe(),
                "=== after hardening ===",
                self.after.describe(),
                f"improvement: {self.before.tier.name} -> {self.after.tier.name}"
                + (" (stronger)" if self.improved else " (unchanged)"),
            ]
        )


def hardening_report(
    phrase: Phrase, model: ProtocolModel, at_place: str = "rp"
) -> HardeningReport:
    """Analyse ``phrase`` and its hardened form side by side."""
    return HardeningReport(
        before=analyze_phrase_trust(phrase, model, at_place),
        after=analyze_phrase_trust(harden_phrase(phrase), model, at_place),
    )
