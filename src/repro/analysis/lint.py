"""Deployment linting: will this policy actually be checkable?

A compiled policy asks hops to produce certain evidence; an appraisal
policy can only check what it has references for. Mismatches fail at
run time with confusing verdicts ("no reference values for this
attester") — or worse, silently verify less than the relying party
believes. :func:`lint_deployment` catches those gaps *before* any
traffic is sent, the same fail-early spirit as the ▶ operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.appraisal import PathAppraisalPolicy
from repro.core.compiler import CompiledPolicy
from repro.netkat.parser import parse_predicate
from repro.pera.config import CompositionMode
from repro.pera.inertia import InertiaClass
from repro.util.errors import PolicyError


@dataclass(frozen=True)
class LintFinding:
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.message}"


def lint_deployment(
    compiled: CompiledPolicy,
    appraisal: PathAppraisalPolicy,
    expected_places: Sequence[str] = (),
) -> List[LintFinding]:
    """Check a compiled policy against an appraisal policy.

    ``expected_places`` are the attesting hops the relying party
    believes the path crosses (so reference coverage can be checked
    per place).
    """
    findings: List[LintFinding] = []

    # 1. The guard test must parse (it was serialized as text).
    if compiled.hop.test_text:
        try:
            parse_predicate(compiled.hop.test_text)
        except PolicyError as exc:
            findings.append(LintFinding(
                "error", f"hop guard does not parse: {exc}"
            ))

    # 2. Every detail class the hops will attest needs a reference
    #    value at every expected place, or it is dead weight.
    requested = [
        inertia for inertia in compiled.hop.detail.inertia_classes
        if inertia is not InertiaClass.PACKETS
    ]
    for place in expected_places:
        signer = appraisal.pseudonym_signers.get(place, place)
        reference = appraisal.reference_measurements.get(signer)
        if reference is None:
            findings.append(LintFinding(
                "error",
                f"no reference values for attesting place {place!r}; "
                "its evidence can only be rejected",
            ))
            continue
        for inertia in requested:
            if inertia not in reference:
                findings.append(LintFinding(
                    "warning",
                    f"policy requests {inertia.name} evidence but the "
                    f"appraiser has no {inertia.name} reference for "
                    f"{place!r}; that measurement will go unchecked",
                ))

    # 3. Required functions the appraiser cannot name go unenforced.
    #    (A warning, not an error: abstract policy properties like
    #    AP1's ``X`` land here by design and appraisal skips them.)
    known_functions = set(appraisal.program_names.values())
    for place, function in compiled.required_functions:
        if function not in known_functions:
            findings.append(LintFinding(
                "warning",
                f"policy names {function!r} on the path but the appraiser "
                "has no golden program measurement for it; that "
                "requirement will not be enforced",
            ))

    # 4. Sampling vs coverage contradictions.
    if appraisal.allow_sampling and compiled.min_attested_hops > 0:
        findings.append(LintFinding(
            "warning",
            "appraiser allows sampling but the policy demands "
            f"{compiled.min_attested_hops} attested hops; under-sampled "
            "paths will be accepted with fewer records",
        ))

    # 5. Composition-strength advisories.
    if compiled.hop.composition is CompositionMode.POINTWISE:
        findings.append(LintFinding(
            "warning",
            "pointwise composition cannot detect record reordering or "
            "evidence splicing; consider chained or traffic-path",
        ))
    if not compiled.hop.sign:
        findings.append(LintFinding(
            "error",
            "policy does not ask hops to sign; unsigned evidence is "
            "forgeable by anyone on the path",
        ))
    if not compiled.nonce:
        findings.append(LintFinding(
            "warning",
            "policy carries no nonce; evidence can be replayed across "
            "requests",
        ))
    return findings


def errors_only(findings: Sequence[LintFinding]) -> List[LintFinding]:
    """Just the findings that must block deployment."""
    return [f for f in findings if f.severity == "error"]
