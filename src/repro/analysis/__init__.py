"""Automated trust analysis of attestation policies.

The paper cites Rowe et al.'s "Automated Trust Analysis of Copland
Specifications for Layered Attestations" as the machinery for deciding
whether a policy resists an active adversary. This package applies the
corrupt/repair analysis of :mod:`repro.copland.adversary` to whole
policies and proposes mechanical hardenings (the (1) → (2) rewrite of
§4.2: sequence the branches, sign each arm).
"""

from repro.analysis.trust import (
    TrustReport,
    analyze_phrase_trust,
    harden_phrase,
    hardening_report,
)
from repro.analysis.lint import LintFinding, errors_only, lint_deployment

__all__ = [
    "TrustReport",
    "analyze_phrase_trust",
    "harden_phrase",
    "hardening_report",
    "LintFinding",
    "errors_only",
    "lint_deployment",
]
