"""Claims and appraisal verdicts.

A *claim* is what the relying party wants assured ("switch S is
running firewall_v5"); *evidence* is what the attester produces — a
tree of canonical :mod:`repro.evidence` nodes, whatever channel it
arrived by; the *verdict* is the appraiser's judgement (paper Fig. 1,
steps ➀–➃). Verdicts carry the content digest of the evidence they
judged, so a result can be matched to its bundle without re-hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.evidence import Evidence


@dataclass(frozen=True)
class Claim:
    """What the relying party wants attested."""

    attester: str  # place/device name
    targets: Tuple[str, ...]  # e.g. ("Hardware", "Program")
    nonce_name: str = "n"

    def describe(self) -> str:
        return f"{self.attester} runs vetted {', '.join(self.targets)}"


@dataclass(frozen=True)
class AppraisalVerdict:
    """The appraiser's structured judgement of one evidence bundle."""

    accepted: bool
    claim: Optional[Claim] = None
    failures: Tuple[str, ...] = ()
    checked_measurements: int = 0
    checked_signatures: int = 0
    # Content digest of the appraised evidence tree (None when the
    # verdict was produced without a concrete bundle in hand).
    evidence_digest: Optional[bytes] = None

    @classmethod
    def reject(cls, *failures: str, claim: Optional[Claim] = None) -> "AppraisalVerdict":
        return cls(accepted=False, claim=claim, failures=tuple(failures))

    @classmethod
    def for_evidence(
        cls, evidence: Evidence, accepted: bool, **kwargs
    ) -> "AppraisalVerdict":
        """Build a verdict bound to ``evidence``'s content digest."""
        return cls(
            accepted=accepted,
            evidence_digest=evidence.content_digest,
            **kwargs,
        )

    def describe(self) -> str:
        status = "ACCEPTED" if self.accepted else "REJECTED"
        lines = [status]
        if self.claim is not None:
            lines.append(f"claim: {self.claim.describe()}")
        lines.append(
            f"checked: {self.checked_measurements} measurements, "
            f"{self.checked_signatures} signatures"
        )
        lines.extend(f"failure: {f}" for f in self.failures)
        return "\n".join(lines)
