"""Nonce generation and freshness tracking.

Expression (3) binds both relying parties' requests to a nonce ``n``
"negotiated separately"; the appraiser must reject evidence carrying a
nonce it did not issue, or one it has already consumed (replay).

Nonces are derived deterministically from a seed and a counter so that
simulation runs are reproducible while still being unpredictable to
the simulated adversary (who does not hold the seed).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Set

from repro.util.errors import VerificationError

NONCE_LEN = 16


class NonceManager:
    """Issues nonces and enforces single-use freshness."""

    def __init__(self, seed: str) -> None:
        self._seed = seed
        self._counter = 0
        self._outstanding: Set[bytes] = set()
        self._consumed: Set[bytes] = set()

    def issue(self) -> bytes:
        """Create a fresh nonce, remembered as outstanding."""
        self._counter += 1
        nonce = hashlib.sha256(
            f"nonce|{self._seed}|{self._counter}".encode()
        ).digest()[:NONCE_LEN]
        self._outstanding.add(nonce)
        return nonce

    def is_outstanding(self, nonce: bytes) -> bool:
        return nonce in self._outstanding

    def consume(self, nonce: bytes) -> None:
        """Mark a nonce used; raises on unknown or replayed nonces."""
        if nonce in self._consumed:
            raise VerificationError("nonce replayed")
        if nonce not in self._outstanding:
            raise VerificationError("nonce was never issued")
        self._outstanding.discard(nonce)
        self._consumed.add(nonce)

    def check(self, nonce: bytes) -> Optional[str]:
        """Non-raising freshness check; returns a failure string or None."""
        if nonce in self._consumed:
            return "nonce replayed"
        if nonce not in self._outstanding:
            return "nonce was never issued"
        return None

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)
