"""The Appraiser (Verifier): turns evidence into verdicts.

An appraiser holds three inputs (RATS terminology):

- *trust anchors*: a :class:`~repro.crypto.keys.KeyRegistry` of the
  signing keys it trusts,
- *reference values*: the golden measurements vetted programs should
  produce (``firewall_v5`` hashes to X),
- *freshness state*: a :class:`~repro.ra.nonce.NonceManager`.

:meth:`Appraiser.appraise` walks a Copland evidence tree and checks
every signature against the anchors, every measurement against the
reference values, and the embedded nonce against freshness state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.crypto.keys import KeyRegistry
from repro.evidence import (
    Evidence,
    MeasurementEvidence,
    NonceEvidence,
    SignedEvidence,
    registry_verify,
)
from repro.ra.claims import AppraisalVerdict, Claim
from repro.ra.nonce import NonceManager
from repro.telemetry.audit import AuditKind, classify_failure
from repro.telemetry.instrument import Telemetry, default_telemetry


@dataclass
class AppraisalPolicy:
    """What this appraiser requires of an evidence bundle.

    - ``reference_values``: (asp, target) → expected measurement bytes.
      Measurements with no entry are ignored unless ``strict``.
    - ``required_signers``: every listed place must have signed some
      node of the bundle.
    - ``require_nonce``: a fresh nonce must be embedded.
    - ``strict``: unknown measurements are failures instead of ignored.
    """

    reference_values: Dict[Tuple[str, str], bytes] = field(default_factory=dict)
    required_signers: Tuple[str, ...] = ()
    require_nonce: bool = False
    strict: bool = False


class Appraiser:
    """A RATS appraiser bound to trust anchors and reference values."""

    def __init__(
        self,
        name: str,
        anchors: KeyRegistry,
        policy: AppraisalPolicy,
        nonces: Optional[NonceManager] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.name = name
        self.anchors = anchors
        self.policy = policy
        self.nonces = nonces
        self.telemetry = (
            telemetry if telemetry is not None else default_telemetry()
        )
        self.appraisals_performed = 0

    def appraise(
        self, evidence: Evidence, claim: Optional[Claim] = None
    ) -> AppraisalVerdict:
        """Produce a verdict for one evidence bundle.

        With telemetry active, each appraisal feeds a verdict counter
        and a wall-clock verification-latency histogram, both labeled
        by appraiser; each failure and the verdict itself land in the
        audit journal linked to the evidence's content digest. Copland
        evidence carries no packet trace, so these events join the
        journal untraced — still queryable by digest.
        """
        if self.telemetry.active:
            started = perf_counter()
            sim_started = self.telemetry.spans.clock.now
            verdict = self._appraise(evidence, claim)
            self.telemetry.histogram(
                "ra.appraise_seconds", appraiser=self.name
            ).observe(perf_counter() - started)
            # The sim-clock sibling: deterministic, so it joins the
            # shard byte-identity contract (the wall-clock histogram
            # above is the documented exclusion). Appraisal is modeled
            # as instantaneous today, so the sum pins that property
            # while the count pins per-appraiser appraisal volume.
            self.telemetry.histogram(
                "ra.appraise_sim_seconds", appraiser=self.name
            ).observe(self.telemetry.spans.clock.now - sim_started)
            self.telemetry.counter(
                "ra.verdicts",
                appraiser=self.name,
                accepted=verdict.accepted,
            ).inc()
            for failure in verdict.failures:
                self.telemetry.audit_event(
                    AuditKind.CHECK_FAILED,
                    self.name,
                    digest=evidence.content_digest,
                    check=classify_failure(failure),
                    message=failure,
                )
            self.telemetry.audit_event(
                AuditKind.VERDICT_ISSUED,
                self.name,
                digest=evidence.content_digest,
                accepted=verdict.accepted,
                records=verdict.checked_signatures,
                failures=len(verdict.failures),
            )
            return verdict
        return self._appraise(evidence, claim)

    def _appraise(
        self, evidence: Evidence, claim: Optional[Claim] = None
    ) -> AppraisalVerdict:
        self.appraisals_performed += 1
        failures: List[str] = []
        checked_measurements = 0
        checked_signatures = 0

        # 1. Signatures: every SignedEvidence node must verify against
        #    the anchor registered for its claimed place. Verification
        #    is memoized on the node's cached content digest, so
        #    re-appraising known evidence skips the Ed25519 math.
        seen_signers = set()
        for node in evidence.walk():
            if isinstance(node, SignedEvidence):
                checked_signatures += 1
                if not registry_verify(
                    self.anchors,
                    node.place,
                    node.signed_payload(),
                    node.signature,
                    message_digest=node.payload_digest(),
                ):
                    failures.append(
                        f"signature by {node.place!r} failed verification"
                    )
                else:
                    seen_signers.add(node.place)
        for signer in self.policy.required_signers:
            if signer not in seen_signers:
                failures.append(f"missing required signature from {signer!r}")

        # 2. Measurements against reference values.
        for node in evidence.walk():
            if isinstance(node, MeasurementEvidence):
                expected = self.policy.reference_values.get(
                    (node.asp, node.target)
                )
                if expected is None:
                    if self.policy.strict and node.target:
                        failures.append(
                            f"no reference value for ({node.asp!r}, "
                            f"{node.target!r})"
                        )
                    continue
                checked_measurements += 1
                if node.value != expected:
                    failures.append(
                        f"measurement of {node.target!r} by {node.asp!r} "
                        "does not match the reference value"
                    )

        # 3. Nonce freshness.
        if self.policy.require_nonce:
            nonce_nodes = [
                node for node in evidence.walk()
                if isinstance(node, NonceEvidence)
            ]
            if not nonce_nodes:
                failures.append("no nonce embedded in evidence")
            elif self.nonces is None:
                failures.append("appraiser has no nonce state to check against")
            else:
                for node in nonce_nodes:
                    problem = self.nonces.check(node.value)
                    if problem is not None:
                        failures.append(problem)
                if not failures:
                    for node in nonce_nodes:
                        self.nonces.consume(node.value)

        return AppraisalVerdict(
            accepted=not failures,
            claim=claim,
            failures=tuple(failures),
            checked_measurements=checked_measurements,
            checked_signatures=checked_signatures,
            evidence_digest=evidence.content_digest,
        )
