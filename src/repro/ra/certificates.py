"""Appraiser-signed certificates and the nonce-indexed store.

Expression (3)'s ``certify(n)``, ``store(n)`` and ``retrieve(n)`` ASPs
land here: after a successful appraisal, the appraiser signs a
certificate binding (nonce, attester, verdict) and stores it so that a
second relying party can retrieve it later using the same nonce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.evidence.verify import registry_verify
from repro.ra.claims import AppraisalVerdict
from repro.util.errors import VerificationError


@dataclass(frozen=True)
class Certificate:
    """A signed attestation result."""

    appraiser: str
    attester: str
    nonce: bytes
    accepted: bool
    signature: bytes

    @staticmethod
    def payload(appraiser: str, attester: str, nonce: bytes, accepted: bool) -> bytes:
        return b"|".join(
            [
                b"ra-cert",
                appraiser.encode(),
                attester.encode(),
                nonce,
                b"\x01" if accepted else b"\x00",
            ]
        )

    @classmethod
    def issue(
        cls,
        appraiser_keys: KeyPair,
        attester: str,
        nonce: bytes,
        verdict: AppraisalVerdict,
    ) -> "Certificate":
        payload = cls.payload(
            appraiser_keys.owner, attester, nonce, verdict.accepted
        )
        return cls(
            appraiser=appraiser_keys.owner,
            attester=attester,
            nonce=nonce,
            accepted=verdict.accepted,
            signature=appraiser_keys.sign(payload),
        )

    def verify(self, anchors: KeyRegistry) -> bool:
        """Check the certificate signature against trusted appraisers.

        Memoized through the substrate verify cache: a certificate
        presented repeatedly (UC5 gating per flow) is verified once.
        """
        return registry_verify(
            anchors,
            self.appraiser,
            self.payload(self.appraiser, self.attester, self.nonce, self.accepted),
            self.signature,
        )


class CertificateStore:
    """Nonce-indexed certificate storage at the appraiser."""

    def __init__(self) -> None:
        self._by_nonce: Dict[bytes, Certificate] = {}

    def store(self, certificate: Certificate) -> None:
        if certificate.nonce in self._by_nonce:
            raise VerificationError(
                "a certificate is already stored under this nonce"
            )
        self._by_nonce[certificate.nonce] = certificate

    def retrieve(self, nonce: bytes) -> Certificate:
        certificate = self._by_nonce.get(nonce)
        if certificate is None:
            raise VerificationError("no certificate stored under this nonce")
        return certificate

    def has(self, nonce: bytes) -> bool:
        return nonce in self._by_nonce

    def __len__(self) -> int:
        return len(self._by_nonce)
