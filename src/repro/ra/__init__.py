"""RATS-style remote attestation principals (paper Fig. 1, §4).

- :mod:`repro.ra.claims` — claims and attestation results.
- :mod:`repro.ra.nonce` — nonce generation and freshness tracking.
- :mod:`repro.ra.appraiser` — the Appraiser/Verifier: checks evidence
  structure, signatures, reference values and nonce freshness.
- :mod:`repro.ra.certificates` — appraiser-signed certificates and the
  nonce-indexed store (the ``store(n)``/``retrieve(n)`` ASPs of
  expression (3)).
- :mod:`repro.ra.protocol` — the out-of-band and in-band protocol
  variants of Fig. 2, executed as genuine Copland requests on the VM.
"""

from repro.ra.claims import Claim, AppraisalVerdict
from repro.ra.nonce import NonceManager
from repro.ra.appraiser import Appraiser, AppraisalPolicy
from repro.ra.certificates import Certificate, CertificateStore
from repro.ra.protocol import (
    AttestationScenario,
    ProtocolRun,
    run_out_of_band,
    run_in_band,
)
from repro.ra.attester import (
    AttestingHost,
    VerifierHost,
    AttestationRequest,
    AttestationResponse,
    golden_value,
)

__all__ = [
    "Claim",
    "AppraisalVerdict",
    "NonceManager",
    "Appraiser",
    "AppraisalPolicy",
    "Certificate",
    "CertificateStore",
    "AttestationScenario",
    "ProtocolRun",
    "run_out_of_band",
    "run_in_band",
    "AttestingHost",
    "VerifierHost",
    "AttestationRequest",
    "AttestationResponse",
    "golden_value",
]
