"""Host-based attestation over the network.

UC5 composes host evidence with network evidence. This module makes
the host side a real network service rather than an in-process call:
an :class:`AttestingHost` owns measurable components and a signing key
and answers :class:`AttestationRequest` control messages with signed
:class:`AttestationResponse` evidence; a :class:`VerifierHost` issues
nonce-fresh requests and appraises responses against golden values.

The message flow is the Fig. 1 loop run over the simulator's control
channel, so latency, message counts and replay behaviour are all
observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.net.host import Host
from repro.ra.nonce import NonceManager
from repro.util.errors import VerificationError

_MEASURE_DOMAIN = "host-component-measurement"
_RESPONSE_DOMAIN = b"host-attestation-response|"


@dataclass(frozen=True)
class AttestationRequest:
    """Verifier → attester: measure these components, bind this nonce."""

    nonce: bytes
    targets: Tuple[str, ...]
    reply_to: str


@dataclass(frozen=True)
class AttestationResponse:
    """Attester → verifier: signed measurements bound to the nonce."""

    attester: str
    nonce: bytes
    measurements: Tuple[Tuple[str, bytes], ...]  # (component, digest)
    signature: bytes

    @staticmethod
    def payload(
        attester: str, nonce: bytes, measurements: Tuple[Tuple[str, bytes], ...]
    ) -> bytes:
        parts = [_RESPONSE_DOMAIN, attester.encode(), b"|", nonce]
        for name, value in measurements:
            parts += [b"|", name.encode(), b"=", value]
        return b"".join(parts)

    def verify(self, anchors: KeyRegistry) -> bool:
        return anchors.verify(
            self.attester,
            self.payload(self.attester, self.nonce, self.measurements),
            self.signature,
        )


class AttestingHost(Host):
    """A host that measures its own components on request.

    Components model installed software (a TLS stack, a browser
    monitor); :meth:`corrupt` swaps one out the way malware would.
    The host's root of trust measures whatever is *actually* installed
    — the trustworthy-component assumption of the paper's §3.
    """

    def __init__(self, name: str, mac: int, ip: int) -> None:
        super().__init__(name, mac, ip)
        self.keys = KeyPair.generate(name)
        self.components: Dict[str, bytes] = {}
        self.requests_served = 0

    def install(self, component: str, content: bytes) -> None:
        self.components[component] = content

    def corrupt(self, component: str, content: bytes = b"MALWARE") -> None:
        if component not in self.components:
            raise VerificationError(
                f"host {self.name!r} has no component {component!r}"
            )
        self.components[component] = content

    def handle_control(self, sender: str, message: Any) -> None:
        if isinstance(message, AttestationRequest):
            self._serve(message)
            return
        super().handle_control(sender, message)

    def _serve(self, request: AttestationRequest) -> None:
        measurements: List[Tuple[str, bytes]] = []
        for target in request.targets:
            content = self.components.get(target)
            value = (
                digest(content, domain=_MEASURE_DOMAIN)
                if content is not None
                else b""
            )
            measurements.append((target, value))
        response = AttestationResponse(
            attester=self.name,
            nonce=request.nonce,
            measurements=tuple(measurements),
            signature=self.keys.sign(
                AttestationResponse.payload(
                    self.name, request.nonce, tuple(measurements)
                )
            ),
        )
        self.requests_served += 1
        self.sim.send_control(
            self.name, request.reply_to, response,
            size_hint=len(response.signature) + sum(
                len(v) for _, v in measurements
            ),
        )


def golden_value(content: bytes) -> bytes:
    """The measurement a component with ``content`` should report."""
    return digest(content, domain=_MEASURE_DOMAIN)


@dataclass
class HostVerdict:
    accepted: bool
    failures: Tuple[str, ...] = ()


class VerifierHost(Host):
    """Issues attestation requests and appraises the responses."""

    def __init__(
        self,
        name: str,
        mac: int,
        ip: int,
        anchors: KeyRegistry,
        golden: Dict[str, Dict[str, bytes]],  # attester -> component -> value
    ) -> None:
        super().__init__(name, mac, ip)
        self.anchors = anchors
        self.golden = golden
        self.nonces = NonceManager(seed=f"verifier-{name}")
        self.verdicts: Dict[bytes, HostVerdict] = {}
        self._pending: Dict[bytes, str] = {}

    def request_attestation(self, attester: str, targets: Tuple[str, ...]) -> bytes:
        """Fire a request; returns the nonce to look the verdict up by."""
        nonce = self.nonces.issue()
        self._pending[nonce] = attester
        self.sim.send_control(
            self.name,
            attester,
            AttestationRequest(nonce=nonce, targets=targets, reply_to=self.name),
            size_hint=len(nonce) + sum(len(t) for t in targets),
        )
        return nonce

    def handle_control(self, sender: str, message: Any) -> None:
        if isinstance(message, AttestationResponse):
            self.verdicts[message.nonce] = self._appraise(message)
            return
        super().handle_control(sender, message)

    def _appraise(self, response: AttestationResponse) -> HostVerdict:
        failures: List[str] = []
        expected_attester = self._pending.pop(response.nonce, None)
        if expected_attester is None:
            return HostVerdict(False, ("unsolicited or replayed nonce",))
        problem = self.nonces.check(response.nonce)
        if problem is not None:
            failures.append(problem)
        else:
            self.nonces.consume(response.nonce)
        if response.attester != expected_attester:
            failures.append(
                f"response from {response.attester!r}, expected "
                f"{expected_attester!r}"
            )
        if not response.verify(self.anchors):
            failures.append("response signature invalid")
        reference = self.golden.get(response.attester, {})
        for component, value in response.measurements:
            expected = reference.get(component)
            if expected is None:
                failures.append(f"no golden value for {component!r}")
            elif value != expected:
                failures.append(
                    f"component {component!r} does not match its golden value"
                )
        return HostVerdict(accepted=not failures, failures=tuple(failures))
