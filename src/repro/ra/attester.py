"""Host-based attestation over the network.

UC5 composes host evidence with network evidence. This module makes
the host side a real network service rather than an in-process call:
an :class:`AttestingHost` owns measurable components and a signing key
and answers :class:`AttestationRequest` control messages with signed
:class:`AttestationResponse` evidence; a :class:`VerifierHost` issues
nonce-fresh requests and appraises responses against golden values.

The message flow is the Fig. 1 loop run over the simulator's control
channel, so latency, message counts and replay behaviour are all
observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.evidence.verify import registry_verify
from repro.faults.retry import FailMode, RetryPolicy
from repro.net.host import Host
from repro.ra.nonce import NonceManager
from repro.telemetry.audit import AuditKind, Check
from repro.util.errors import VerificationError

_MEASURE_DOMAIN = "host-component-measurement"
_RESPONSE_DOMAIN = b"host-attestation-response|"


@dataclass(frozen=True)
class AttestationRequest:
    """Verifier → attester: measure these components, bind this nonce."""

    nonce: bytes
    targets: Tuple[str, ...]
    reply_to: str


@dataclass(frozen=True)
class AttestationResponse:
    """Attester → verifier: signed measurements bound to the nonce."""

    attester: str
    nonce: bytes
    measurements: Tuple[Tuple[str, bytes], ...]  # (component, digest)
    signature: bytes

    @staticmethod
    def payload(
        attester: str, nonce: bytes, measurements: Tuple[Tuple[str, bytes], ...]
    ) -> bytes:
        parts = [_RESPONSE_DOMAIN, attester.encode(), b"|", nonce]
        for name, value in measurements:
            parts += [b"|", name.encode(), b"=", value]
        return b"".join(parts)

    def verify(self, anchors: KeyRegistry) -> bool:
        # Memoized in the substrate cache: re-appraising the same
        # response (protocol retries, audit replay) costs a dict hit.
        return registry_verify(
            anchors,
            self.attester,
            self.payload(self.attester, self.nonce, self.measurements),
            self.signature,
        )


class AttestingHost(Host):
    """A host that measures its own components on request.

    Components model installed software (a TLS stack, a browser
    monitor); :meth:`corrupt` swaps one out the way malware would.
    The host's root of trust measures whatever is *actually* installed
    — the trustworthy-component assumption of the paper's §3.
    """

    def __init__(
        self,
        name: str,
        mac: int,
        ip: int,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(name, mac, ip)
        self.keys = KeyPair.generate(name)
        self.components: Dict[str, bytes] = {}
        self.requests_served = 0
        self.retry_policy = retry_policy
        self.reply_send_failures = 0

    def install(self, component: str, content: bytes) -> None:
        self.components[component] = content

    def corrupt(self, component: str, content: bytes = b"MALWARE") -> None:
        if component not in self.components:
            raise VerificationError(
                f"host {self.name!r} has no component {component!r}"
            )
        self.components[component] = content

    def handle_control(self, sender: str, message: Any) -> None:
        if isinstance(message, AttestationRequest):
            self._serve(message)
            return
        super().handle_control(sender, message)

    def _serve(self, request: AttestationRequest) -> None:
        measurements: List[Tuple[str, bytes]] = []
        for target in request.targets:
            content = self.components.get(target)
            value = (
                digest(content, domain=_MEASURE_DOMAIN)
                if content is not None
                else b""
            )
            measurements.append((target, value))
        response = AttestationResponse(
            attester=self.name,
            nonce=request.nonce,
            measurements=tuple(measurements),
            signature=self.keys.sign(
                AttestationResponse.payload(
                    self.name, request.nonce, tuple(measurements)
                )
            ),
        )
        self.requests_served += 1
        self._send_reply(request.reply_to, response, attempt=0)

    def _send_reply(
        self, reply_to: str, response: "AttestationResponse", attempt: int
    ) -> None:
        """Send (or re-send) a reply; failures are counted, and with a
        retry policy the reply is re-offered after backoff."""
        delivered = self.sim.send_control(
            self.name, reply_to, response,
            size_hint=len(response.signature) + sum(
                len(v) for _, v in response.measurements
            ),
        )
        if delivered:
            return
        self.reply_send_failures += 1
        policy = self.retry_policy
        if policy is None or attempt + 1 >= policy.max_attempts:
            return
        self.sim.schedule(
            policy.backoff_delay(attempt + 1),
            lambda: self._send_reply(reply_to, response, attempt + 1),
        )


def golden_value(content: bytes) -> bytes:
    """The measurement a component with ``content`` should report."""
    return digest(content, domain=_MEASURE_DOMAIN)


@dataclass
class HostVerdict:
    accepted: bool
    failures: Tuple[str, ...] = ()
    #: True when the verdict was reached without evidence (the
    #: attester never answered and the fail mode decided instead).
    degraded: bool = False


class VerifierHost(Host):
    """Issues attestation requests and appraises the responses.

    Resilience: with a :class:`RetryPolicy`, an unanswered challenge
    is re-issued (same nonce — the challenge is unchanged) after each
    per-attempt timeout plus backoff; when every attempt times out the
    verifier issues a *degraded* verdict per its ``fail_mode`` —
    rejecting under the default :data:`FailMode.CLOSED` — and journals
    a ``check.failed`` availability event, so silence is never mistaken
    for success.
    """

    def __init__(
        self,
        name: str,
        mac: int,
        ip: int,
        anchors: KeyRegistry,
        golden: Dict[str, Dict[str, bytes]],  # attester -> component -> value
        retry_policy: Optional[RetryPolicy] = None,
        fail_mode: str = FailMode.CLOSED,
    ) -> None:
        super().__init__(name, mac, ip)
        self.anchors = anchors
        self.golden = golden
        self.nonces = NonceManager(seed=f"verifier-{name}")
        self.verdicts: Dict[bytes, HostVerdict] = {}
        self._pending: Dict[bytes, str] = {}
        self._requests: Dict[bytes, AttestationRequest] = {}
        self.retry_policy = retry_policy
        self.fail_mode = fail_mode
        self.request_send_failures = 0
        self.timeouts = 0

    def request_attestation(self, attester: str, targets: Tuple[str, ...]) -> bytes:
        """Fire a request; returns the nonce to look the verdict up by."""
        nonce = self.nonces.issue()
        self._pending[nonce] = attester
        request = AttestationRequest(
            nonce=nonce, targets=targets, reply_to=self.name
        )
        self._requests[nonce] = request
        self._attempt(nonce, attempt=1)
        return nonce

    def _attempt(self, nonce: bytes, attempt: int) -> None:
        request = self._requests.get(nonce)
        attester = self._pending.get(nonce)
        if request is None or attester is None:
            return  # already answered (or concluded)
        delivered = self.sim.send_control(
            self.name,
            attester,
            request,
            size_hint=len(nonce) + sum(len(t) for t in request.targets),
        )
        if not delivered:
            self.request_send_failures += 1
        policy = self.retry_policy
        if policy is None:
            return  # legacy fire-and-forget (failures still counted)

        def check_timeout() -> None:
            if nonce not in self._pending or nonce in self.verdicts:
                return  # answered in time
            self.timeouts += 1
            if attempt >= policy.max_attempts:
                self._conclude_unreachable(nonce, attester, attempt)
                return
            tel = self.sim.telemetry
            if tel.active:
                tel.audit_event(
                    AuditKind.RECOVERY_RETRY,
                    self.name,
                    to=attester,
                    attempt=attempt,
                )
            self._attempt(nonce, attempt + 1)

        self.sim.schedule(
            policy.timeout_s + policy.backoff_delay(attempt), check_timeout
        )

    def _conclude_unreachable(
        self, nonce: bytes, attester: str, attempts: int
    ) -> None:
        """Every challenge timed out: decide by fail mode, journal why."""
        self._pending.pop(nonce, None)
        self._requests.pop(nonce, None)
        message = (
            f"attester {attester!r} unreachable: no response after "
            f"{attempts} attempt(s)"
        )
        fail_open = self.fail_mode == FailMode.OPEN
        verdict = HostVerdict(
            accepted=fail_open,
            failures=() if fail_open else (message,),
            degraded=True,
        )
        self.verdicts[nonce] = verdict
        tel = self.sim.telemetry
        if tel.active:
            tel.audit_event(
                AuditKind.RECOVERY_GAVE_UP,
                self.name,
                to=attester,
                attempts=attempts,
            )
            tel.audit_event(
                AuditKind.CHECK_FAILED,
                self.name,
                check=Check.AVAILABILITY,
                message=message,
            )
            tel.audit_event(
                AuditKind.VERDICT_ISSUED,
                self.name,
                accepted=verdict.accepted,
                records=0,
                failures=len(verdict.failures),
                degraded=True,
            )

    def handle_control(self, sender: str, message: Any) -> None:
        if isinstance(message, AttestationResponse):
            self.verdicts[message.nonce] = self._appraise(message)
            return
        super().handle_control(sender, message)

    def _appraise(self, response: AttestationResponse) -> HostVerdict:
        failures: List[str] = []
        expected_attester = self._pending.pop(response.nonce, None)
        if expected_attester is None:
            return HostVerdict(False, ("unsolicited or replayed nonce",))
        problem = self.nonces.check(response.nonce)
        if problem is not None:
            failures.append(problem)
        else:
            self.nonces.consume(response.nonce)
        if response.attester != expected_attester:
            failures.append(
                f"response from {response.attester!r}, expected "
                f"{expected_attester!r}"
            )
        if not response.verify(self.anchors):
            failures.append("response signature invalid")
        reference = self.golden.get(response.attester, {})
        for component, value in response.measurements:
            expected = reference.get(component)
            if expected is None:
                failures.append(f"no golden value for {component!r}")
            elif value != expected:
                failures.append(
                    f"component {component!r} does not match its golden value"
                )
        return HostVerdict(accepted=not failures, failures=tuple(failures))
