"""The Fig. 2 protocol variants, executed as genuine Copland requests.

:func:`run_out_of_band` executes the paper's expression (3)::

    *RP1, n : @Switch [attest(Hardware ~ Program) -> # -> !]
                +>+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]
    *RP2, n : @Appraiser [retrieve(n)]

:func:`run_in_band` executes expression (4)::

    *RP1 : @Switch [attest(Hardware ~ Program) -> # -> !]
             -> @RP2 [@Appraiser [appraise -> certify -> !]]

Both build a :class:`~repro.copland.vm.CoplandVM` whose Switch place
measures real attestation targets and whose Appraiser place is backed
by a real :class:`~repro.ra.appraiser.Appraiser`, so the runs produce
genuine signatures and genuine verdicts. The returned
:class:`ProtocolRun` carries the message/byte accounting the Fig. 2
benchmark (E2) reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.evidence import (
    Evidence,
    HashEvidence,
    MeasurementEvidence,
    NonceEvidence,
    registry_verify,
)
from repro.copland.parser import parse_request
from repro.copland.vm import CoplandVM, Place
from repro.crypto.hashing import digest
from repro.crypto.keys import KeyRegistry
from repro.ra.appraiser import AppraisalPolicy, Appraiser
from repro.ra.certificates import Certificate, CertificateStore
from repro.ra.claims import AppraisalVerdict
from repro.faults.retry import FailMode, RetryPolicy
from repro.ra.nonce import NonceManager
from repro.telemetry.audit import AuditKind, Check
from repro.util.errors import VerificationError

OUT_OF_BAND_RP1 = (
    "*RP1 <n> : @Switch [attest(Hardware, Program) -> # -> !] "
    "+>+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]"
)
OUT_OF_BAND_RP2 = "*RP2 <n> : @Appraiser [retrieve(n)]"

IN_BAND = (
    "*RP1 <n> : @Switch [attest(Hardware, Program) -> # -> !] "
    "-> @RP2 [@Appraiser [appraise -> certify(n) -> !]]"
)


@dataclass
class AttestationScenario:
    """The fixed cast of Fig. 2: a switch, an appraiser, RP1 and RP2.

    ``switch_targets`` maps attestation target names (``Hardware``,
    ``Program``) to their current content bytes; ``golden_targets`` to
    the vetted content the appraiser expects. Diverge them to model a
    compromised switch.
    """

    switch_targets: Dict[str, bytes]
    golden_targets: Dict[str, bytes]

    def build(self) -> "ProtocolContext":
        vm = CoplandVM()
        vm.register(Place("RP1"))
        vm.register(Place("RP2"))
        switch = vm.register(Place("Switch"))
        appraiser_place = vm.register(Place("Appraiser"))
        for name, content in self.switch_targets.items():
            switch.install_component(name, content, vetted=False)

        anchors = KeyRegistry()
        anchors.register_pair(switch.keypair)
        anchors.register_pair(appraiser_place.keypair)

        nonces = NonceManager(seed="fig2")
        appraiser = Appraiser(
            name="Appraiser",
            anchors=anchors,
            policy=AppraisalPolicy(required_signers=("Switch",)),
            nonces=nonces,
        )
        store = CertificateStore()
        context = ProtocolContext(
            vm=vm,
            switch=switch,
            appraiser_place=appraiser_place,
            appraiser=appraiser,
            store=store,
            nonces=nonces,
            anchors=anchors,
            expected_attest_value=self._expected_attest_value(),
        )
        context.install_asps()
        return context

    def _expected_attest_value(self) -> bytes:
        blob = b"\x00".join(
            name.encode() + b"=" + self.golden_targets[name]
            for name in sorted(self.golden_targets)
        )
        return digest(blob, domain="attest-targets")


@dataclass
class ProtocolContext:
    """A built scenario: VM, places, appraiser, certificate store."""

    vm: CoplandVM
    switch: Place
    appraiser_place: Place
    appraiser: Appraiser
    store: CertificateStore
    nonces: NonceManager
    anchors: KeyRegistry
    expected_attest_value: bytes = b""
    current_nonce: bytes = b""
    last_verdict: Optional[AppraisalVerdict] = None

    def expected_evidence(self) -> Evidence:
        """Reconstruct the evidence an honest run would have hashed.

        The ``#`` operator reduces evidence to a digest, so the
        appraiser — like a TPM-quote verifier — recomputes the evidence
        tree it *expects* (golden attest value, the negotiated nonce)
        and compares digests. A switch running an unvetted program
        produces a different attest value, hence a different hash.
        """
        return MeasurementEvidence(
            asp="attest",
            place="Switch",
            target="",
            target_place="",
            value=self.expected_attest_value,
            prior=NonceEvidence(name="n", value=self.current_nonce),
        )

    def install_asps(self) -> None:
        """Wire the expression-(3)/(4) service ASPs to real objects."""

        def attest(place: Place, target: str, target_place: str, args, prior):
            blob = b"\x00".join(
                name.encode() + b"=" + place.components[name]
                for name in sorted(args)
                if name in place.components
            )
            missing = [name for name in args if name not in place.components]
            if missing:
                raise VerificationError(
                    f"attester has no targets named {missing}"
                )
            return digest(blob, domain="attest-targets")

        def appraise(place: Place, target: str, target_place: str, args, prior):
            failures = []
            # 1. The switch must have signed the (hashed) evidence.
            signatures = prior.find_signatures()
            switch_signed = any(
                node.place == "Switch"
                and registry_verify(
                    self.anchors,
                    node.place,
                    node.signed_payload(),
                    node.signature,
                    message_digest=node.payload_digest(),
                )
                for node in signatures
            )
            if not switch_signed:
                failures.append("missing or invalid Switch signature")
            # 2. The hash must match the reconstructed golden evidence.
            hashes = [
                node for node in prior.walk() if isinstance(node, HashEvidence)
            ]
            if not hashes:
                failures.append("no hashed evidence present")
            elif not HashEvidence.matches(
                self.expected_evidence(), hashes[0].digest_value
            ):
                failures.append(
                    "evidence hash does not match the vetted configuration"
                )
            # 3. Nonce freshness (the nonce is negotiated out of band).
            problem = self.nonces.check(self.current_nonce)
            if problem is not None:
                failures.append(problem)
            else:
                self.nonces.consume(self.current_nonce)
            verdict = AppraisalVerdict(
                accepted=not failures,
                failures=tuple(failures),
                checked_measurements=1,
                checked_signatures=len(signatures),
            )
            self.appraiser.appraisals_performed += 1
            self.last_verdict = verdict
            tel = self.appraiser.telemetry
            if tel.active:
                tel.audit_event(
                    AuditKind.VERDICT_ISSUED,
                    self.appraiser.name,
                    digest=prior.content_digest,
                    accepted=verdict.accepted,
                    records=len(signatures),
                    failures=len(failures),
                )
            return b"\x01accept" if verdict.accepted else b"\x00reject"

        def certify(place: Place, target: str, target_place: str, args, prior):
            nonce = self.current_nonce
            verdict = self.last_verdict
            if verdict is None:
                raise VerificationError("certify before appraise")
            certificate = Certificate.issue(
                self.appraiser_place.keypair, "Switch", nonce, verdict
            )
            self._last_certificate = certificate
            return certificate.signature

        def store_asp(place: Place, target: str, target_place: str, args, prior):
            certificate = getattr(self, "_last_certificate", None)
            if certificate is None:
                raise VerificationError("store before certify")
            self.store.store(certificate)
            return b"stored"

        def retrieve(place: Place, target: str, target_place: str, args, prior):
            nonce = self._nonce_from(prior, args) or self.current_nonce
            certificate = self.store.retrieve(nonce)
            if not certificate.verify(self.anchors):
                raise VerificationError("stored certificate failed verification")
            return (
                b"\x01accept" if certificate.accepted else b"\x00reject"
            ) + certificate.signature

        self.switch.asps["attest"] = attest
        self.appraiser_place.asps["appraise"] = appraise
        self.appraiser_place.asps["certify"] = certify
        self.appraiser_place.asps["store"] = store_asp
        self.appraiser_place.asps["retrieve"] = retrieve

    def _nonce_from(self, prior: Evidence, args: Tuple[str, ...]) -> Optional[bytes]:
        for node in prior.walk():
            if isinstance(node, NonceEvidence):
                return node.value
        # Fall back to the request parameter relayed through ASP args.
        for arg in args:
            try:
                value = bytes.fromhex(arg)
            except ValueError:
                continue
            if value:
                return value
        return None


@dataclass
class ProtocolRun:
    """Outcome and accounting of one protocol execution."""

    variant: str
    accepted: bool
    rp1_informed: bool
    rp2_informed: bool
    messages: int
    evidence_bytes: int
    verdict: Optional[AppraisalVerdict]
    certificate: Optional[Certificate]
    #: Protocol attempts actually made (1 when the first leg succeeds).
    attempts: int = 1
    #: RP1 evidence legs lost to simulated message loss.
    delivery_failures: int = 0
    #: True when the run concluded without evidence (all attempts lost)
    #: and the fail mode decided the outcome instead of an appraisal.
    degraded: bool = False


def _count_messages(
    vm: CoplandVM, since: int, piggybacked: Tuple[str, ...] = ()
) -> int:
    """Count request/reply messages, excluding piggybacked dispatches.

    In the in-band variant the evidence "rides" on traffic the relying
    party is sending anyway (paper §5.2), so dispatches to places in
    ``piggybacked`` cost no extra messages — only the appraiser round
    trips do.
    """
    count = 0
    for event in vm.events[since:]:
        if event.kind == "req" and event.detail.lstrip("@") not in piggybacked:
            count += 1
        elif event.kind == "rpy" and event.place not in piggybacked:
            count += 1
    return count


def run_out_of_band(scenario: AttestationScenario) -> ProtocolRun:
    """Execute expression (3): out-of-band evidence via the appraiser."""
    context = scenario.build()
    nonce = context.nonces.issue()
    context.current_nonce = nonce
    mark = len(context.vm.events)
    rp1_request = parse_request(OUT_OF_BAND_RP1)
    evidence = context.vm.execute_request(rp1_request, {"n": nonce})
    rp2_request = parse_request(OUT_OF_BAND_RP2)
    rp2_evidence = context.vm.execute_request(rp2_request, {"n": nonce})
    certificate = context.store.retrieve(nonce)
    rp2_result = rp2_evidence.find_measurements()[0].value
    return ProtocolRun(
        variant="out-of-band",
        accepted=certificate.accepted,
        rp1_informed=context.last_verdict is not None,
        rp2_informed=rp2_result.startswith(b"\x01") or rp2_result.startswith(b"\x00"),
        messages=_count_messages(context.vm, mark),
        evidence_bytes=len(evidence.encode()) + len(rp2_evidence.encode()),
        verdict=context.last_verdict,
        certificate=certificate,
    )


def run_in_band(scenario: AttestationScenario) -> ProtocolRun:
    """Execute expression (4): evidence rides with RP1's traffic through
    the switch to RP2, who asks the appraiser directly; no nonce-linked
    store/retrieve round is needed."""
    context = scenario.build()
    nonce = context.nonces.issue()
    context.current_nonce = nonce
    mark = len(context.vm.events)
    request = parse_request(IN_BAND)
    evidence = context.vm.execute_request(request, {"n": nonce})
    certificate = getattr(context, "_last_certificate", None)
    return ProtocolRun(
        variant="in-band",
        accepted=context.last_verdict.accepted if context.last_verdict else False,
        rp1_informed=True,  # the final evidence returns to RP1
        rp2_informed=True,  # RP2 relayed the appraisal itself
        # Switch and RP2 legs ride on the dataplane traffic itself.
        messages=_count_messages(context.vm, mark, piggybacked=("Switch", "RP2")),
        evidence_bytes=len(evidence.encode()),
        verdict=context.last_verdict,
        certificate=certificate,
    )


def run_out_of_band_resilient(
    scenario: AttestationScenario,
    loss_rate: float = 0.0,
    seed: int = 0,
    retry: Optional[RetryPolicy] = None,
    fail_mode: str = FailMode.CLOSED,
) -> ProtocolRun:
    """Expression (3) over a lossy channel, with retry and a fail mode.

    Models the RP1 evidence leg (switch → appraiser) crossing a link
    that drops each attempt with probability ``loss_rate`` (seeded, so
    runs replay deterministically). A lost leg is retried — fresh nonce
    each time, as a real verifier would reissue the challenge — up to
    ``retry.max_attempts`` total attempts. If every attempt is lost the
    run concludes *degraded*: rejected under :data:`FailMode.CLOSED`
    (the default), accepted under :data:`FailMode.OPEN`, and in both
    cases the appraiser's audit journal records the availability
    failure so the degraded conclusion is explainable.
    """
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError(f"loss_rate must be within [0, 1], got {loss_rate}")
    context = scenario.build()
    rng = random.Random(seed)
    policy = retry if retry is not None else RetryPolicy(max_attempts=1)
    attempts = 0
    delivery_failures = 0
    while attempts < policy.max_attempts:
        attempts += 1
        if loss_rate > 0.0 and rng.random() < loss_rate:
            delivery_failures += 1
            tel = context.appraiser.telemetry
            if tel.active and attempts < policy.max_attempts:
                tel.audit_event(
                    AuditKind.RECOVERY_RETRY,
                    "RP1",
                    to="Appraiser",
                    attempt=attempts,
                    delay_s=policy.backoff_delay(attempts),
                )
            continue
        nonce = context.nonces.issue()
        context.current_nonce = nonce
        mark = len(context.vm.events)
        rp1_request = parse_request(OUT_OF_BAND_RP1)
        evidence = context.vm.execute_request(rp1_request, {"n": nonce})
        rp2_request = parse_request(OUT_OF_BAND_RP2)
        rp2_evidence = context.vm.execute_request(rp2_request, {"n": nonce})
        certificate = context.store.retrieve(nonce)
        rp2_result = rp2_evidence.find_measurements()[0].value
        run = ProtocolRun(
            variant="out-of-band",
            accepted=certificate.accepted,
            rp1_informed=context.last_verdict is not None,
            rp2_informed=rp2_result.startswith(b"\x01")
            or rp2_result.startswith(b"\x00"),
            messages=_count_messages(context.vm, mark),
            evidence_bytes=len(evidence.encode()) + len(rp2_evidence.encode()),
            verdict=context.last_verdict,
            certificate=certificate,
            attempts=attempts,
            delivery_failures=delivery_failures,
        )
        if delivery_failures and context.appraiser.telemetry.active:
            context.appraiser.telemetry.audit_event(
                AuditKind.RECOVERY_RECOVERED,
                "RP1",
                to="Appraiser",
                attempts=attempts,
            )
        return run

    # Every attempt was lost: decide by fail mode, journal why.
    message = (
        f"appraiser unreachable: evidence leg lost on all "
        f"{attempts} attempt(s)"
    )
    tel = context.appraiser.telemetry
    if tel.active:
        tel.audit_event(
            AuditKind.RECOVERY_GAVE_UP,
            "RP1",
            to="Appraiser",
            attempts=attempts,
        )
        tel.audit_event(
            AuditKind.CHECK_FAILED,
            "Appraiser",
            check=Check.AVAILABILITY,
            message=message,
        )
    fail_open = fail_mode == FailMode.OPEN
    verdict = AppraisalVerdict(
        accepted=fail_open,
        failures=() if fail_open else (message,),
        checked_measurements=0,
        checked_signatures=0,
    )
    if tel.active:
        tel.audit_event(
            AuditKind.VERDICT_ISSUED,
            "Appraiser",
            accepted=verdict.accepted,
            records=0,
            failures=len(verdict.failures),
            degraded=True,
        )
    return ProtocolRun(
        variant="out-of-band",
        accepted=verdict.accepted,
        rp1_informed=False,
        rp2_informed=False,
        messages=0,
        evidence_bytes=0,
        verdict=verdict,
        certificate=None,
        attempts=attempts,
        delivery_failures=delivery_failures,
        degraded=True,
    )
