"""Key pairs and the appraiser's trust-anchor registry.

Every attesting principal (switch root of trust, host kernel, antivirus
process, ...) owns a :class:`KeyPair`. Appraisers hold a
:class:`KeyRegistry` mapping principal names to verification keys —
this is the RATS "endorsement" input: *which* keys the appraiser trusts
is exactly the trust relationship the paper's Fig. 1 establishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.crypto.ed25519 import SigningKey, VerifyKey
from repro.util.errors import CryptoError


@dataclass(frozen=True)
class KeyPair:
    """A named Ed25519 key pair belonging to one principal."""

    owner: str
    signing_key: SigningKey

    @classmethod
    def generate(cls, owner: str) -> "KeyPair":
        """Deterministically derive a key pair from the owner name.

        Determinism keeps simulation runs reproducible; the derivation
        stands in for per-device keys burned in at manufacture.
        """
        return cls(owner=owner, signing_key=SigningKey.from_deterministic_seed(owner))

    @property
    def verify_key(self) -> VerifyKey:
        """The matching verification key (one cached instance).

        Returning the same :class:`VerifyKey` object on every access
        matters for speed: the key's decompressed curve point is cached
        per instance, so every verifier holding this key decodes the
        point once — not once per signature check.
        """
        cached = self.__dict__.get("_verify_key")
        if cached is None:
            cached = self.signing_key.verify_key()
            object.__setattr__(self, "_verify_key", cached)
        return cached

    def sign(self, message: bytes) -> bytes:
        return self.signing_key.sign(message)


class KeyRegistry:
    """Maps principal names to trusted verification keys.

    An appraiser refuses evidence signed by keys outside this registry:
    an unknown signer is exactly the "unvetted dataplane program /
    unknown device" condition of use case UC1.
    """

    def __init__(self) -> None:
        self._keys: Dict[str, VerifyKey] = {}

    def register(self, owner: str, key: VerifyKey) -> None:
        existing = self._keys.get(owner)
        if existing is not None and existing != key:
            raise CryptoError(
                f"principal {owner!r} already registered with a different key"
            )
        self._keys[owner] = key

    def register_pair(self, pair: KeyPair) -> None:
        self.register(pair.owner, pair.verify_key)

    def lookup(self, owner: str) -> Optional[VerifyKey]:
        return self._keys.get(owner)

    def require(self, owner: str) -> VerifyKey:
        key = self._keys.get(owner)
        if key is None:
            raise CryptoError(f"no trusted key registered for principal {owner!r}")
        return key

    def knows(self, owner: str) -> bool:
        return owner in self._keys

    def revoke(self, owner: str) -> bool:
        """Remove a principal's key; returns whether one was present."""
        return self._keys.pop(owner, None) is not None

    def verify(self, owner: str, message: bytes, signature: bytes) -> bool:
        """Verify ``signature`` over ``message`` against ``owner``'s key.

        Returns ``False`` (rather than raising) when the owner is
        unknown: to an appraiser, "unknown signer" and "bad signature"
        both mean the evidence is not trustworthy.
        """
        key = self._keys.get(owner)
        if key is None:
            return False
        try:
            return key.verify(message, signature)
        except CryptoError:
            return False

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Tuple[str, VerifyKey]]:
        return iter(sorted(self._keys.items()))
