"""Merkle trees over evidence logs.

Use case UC4 (auditing) stores an appraisable audit trail; UC5 needs
*trusted redaction* — giving a compliance officer proof that specific
evidence items are in the log without revealing the rest. A Merkle tree
over the evidence log provides both: the signed root commits to the
whole log, and a :class:`MerkleProof` discloses one leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import digest
from repro.util.errors import VerificationError

_LEAF_DOMAIN = "merkle-leaf"
_NODE_DOMAIN = "merkle-node"


def _leaf_hash(data: bytes) -> bytes:
    return digest(data, domain=_LEAF_DOMAIN)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return digest(left + right, domain=_NODE_DOMAIN)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf index plus sibling hashes to the root."""

    leaf_index: int
    leaf_count: int
    # Each element is (sibling_hash, sibling_is_left).
    path: Tuple[Tuple[bytes, bool], ...]

    def verify(self, leaf_data: bytes, root: bytes) -> bool:
        """Check that ``leaf_data`` is committed under ``root``.

        The walk is driven by the *claimed* position, not by the path's
        side flags: given ``leaf_count``, every leaf index determines a
        unique sibling/promotion pattern (left sibling when the position
        is odd, right sibling when even with a neighbour, no entry when
        promoted), so a proof whose shape disagrees with ``leaf_index``
        is rejected outright. Without this, the index field would be
        malleable — the hashes alone never consult it.
        """
        if not 0 <= self.leaf_index < self.leaf_count:
            return False
        node = _leaf_hash(leaf_data)
        position, level_size = self.leaf_index, self.leaf_count
        step = 0
        while level_size > 1:
            if position % 2 == 1:
                if step >= len(self.path) or not self.path[step][1]:
                    return False  # an odd position needs a LEFT sibling
                node = _node_hash(self.path[step][0], node)
                step += 1
            elif position + 1 < level_size:
                if step >= len(self.path) or self.path[step][1]:
                    return False  # an even, paired position: RIGHT sibling
                node = _node_hash(node, self.path[step][0])
                step += 1
            # else: promoted unchanged — no path entry at this level.
            position //= 2
            level_size = (level_size + 1) // 2
        return step == len(self.path) and node == root


class MerkleTree:
    """A Merkle tree built over a sequence of byte-string leaves.

    Odd nodes at each level are promoted unchanged (Bitcoin-style
    duplication would allow leaf-set malleability; promotion does not).
    """

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise VerificationError("cannot build a Merkle tree with no leaves")
        self._leaves = [bytes(leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = [[_leaf_hash(leaf) for leaf in self._leaves]]
        while len(self._levels[-1]) > 1:
            prev = self._levels[-1]
            nxt: List[bytes] = []
            for i in range(0, len(prev) - 1, 2):
                nxt.append(_node_hash(prev[i], prev[i + 1]))
            if len(prev) % 2 == 1:
                nxt.append(prev[-1])
            self._levels.append(nxt)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def leaf(self, index: int) -> bytes:
        return self._leaves[index]

    def prove(self, index: int) -> MerkleProof:
        """Produce an inclusion proof for leaf ``index``."""
        if not 0 <= index < len(self._leaves):
            raise VerificationError(
                f"leaf index {index} out of range [0, {len(self._leaves)})"
            )
        path: List[Tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index < len(level):
                path.append((level[sibling_index], sibling_index < position))
            # Odd promoted node has no sibling at this level: no path entry.
            position //= 2
        return MerkleProof(
            leaf_index=index, leaf_count=len(self._leaves), path=tuple(path)
        )
