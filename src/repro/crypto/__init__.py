"""Cryptographic root of trust for evidence production.

The paper's threat model (§3) assumes "evidence-producing hardware
components (e.g., those that initialize a chip or generate a digital
signature) are trustworthy". This package is the software stand-in for
that trusted component:

- :mod:`repro.crypto.hashing` — SHA-256 measurement digests, hash
  chains (the Copland ``#`` operator and chained path evidence).
- :mod:`repro.crypto.ed25519` — a from-scratch Ed25519 signature
  implementation (RFC 8032), used for the Copland ``!`` operator.
- :mod:`repro.crypto.keys` — key pairs, a registry mapping principal
  names to verification keys (the appraiser's trust anchor store).
- :mod:`repro.crypto.merkle` — Merkle trees over evidence logs, for
  audit-trail use cases (UC4) and selective disclosure (UC5).
- :mod:`repro.crypto.pseudonym` — per-user pseudonyms for switches and
  programs (paper footnotes 1 and 2).
"""

from repro.crypto.hashing import (
    digest,
    digest_hex,
    HashChain,
    measure_mapping,
)
from repro.crypto.ed25519 import SigningKey, VerifyKey, sign, verify
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.merkle import MerkleTree, MerkleProof
from repro.crypto.pseudonym import PseudonymAuthority

__all__ = [
    "digest",
    "digest_hex",
    "HashChain",
    "measure_mapping",
    "SigningKey",
    "VerifyKey",
    "sign",
    "verify",
    "KeyPair",
    "KeyRegistry",
    "MerkleTree",
    "MerkleProof",
    "PseudonymAuthority",
]
