"""A from-scratch Ed25519 implementation (RFC 8032).

This is the signature primitive behind Copland's ``!`` operator and the
Sign/Verify block of the PERA switch (paper Fig. 3). It follows the
RFC 8032 reference construction over the twisted Edwards curve
edwards25519, using extended homogeneous coordinates for group
arithmetic.

The implementation is deliberately self-contained (no third-party
dependency is available offline) and is *not* constant-time; the
simulated root of trust does not face timing adversaries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.util.errors import CryptoError

# Curve constants (RFC 8032 §5.1).
_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P

SIGNATURE_LEN = 64
KEY_LEN = 32

# A point in extended homogeneous coordinates (X, Y, Z, T), x = X/Z,
# y = Y/Z, x*y = T/Z.
_Point = Tuple[int, int, int, int]

_IDENTITY: _Point = (0, 1, 1, 0)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _P - 2, _P)


# sqrt(-1) mod p and the exponent of the combined square-root trick,
# hoisted: decompression is the per-signature cost of every R point.
_SQRT_M1 = pow(2, (_P - 1) // 4, _P)
_SQRT_EXP = (_P - 5) // 8


def _recover_x(y: int, sign_bit: int) -> int:
    """Recover the x-coordinate from y and the encoded sign bit.

    Uses the RFC 8032 §5.1.3 combined inversion-and-square-root:
    ``x = (u/v)^((p+3)/8)`` computed as ``u·v³·(u·v⁷)^((p-5)/8)`` —
    one modular exponentiation where the naive route pays two (a field
    inversion plus a separate root).
    """
    if y >= _P:
        raise CryptoError("point y-coordinate out of field range")
    u = (y * y - 1) % _P
    v = (_D * y * y + 1) % _P
    v3 = v * v % _P * v % _P
    v7 = v3 * v3 % _P * v % _P
    x = u * v3 % _P * pow(u * v7 % _P, _SQRT_EXP, _P) % _P
    vxx = v * x % _P * x % _P
    if vxx == u:
        pass  # square root found directly
    elif vxx == _P - u:
        x = x * _SQRT_M1 % _P
    else:
        raise CryptoError("invalid point encoding: no square root")
    if x == 0:
        if sign_bit:
            raise CryptoError("invalid point encoding: x=0 with sign bit set")
        return 0
    if (x & 1) != sign_bit:
        x = _P - x
    return x


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_double(p: _Point) -> _Point:
    """Dedicated doubling (dbl-2008-hwcd with a = -1).

    Cheaper than ``_point_add(p, p)`` — doubling needs four squarings
    instead of the general formula's eight multiplications, and it is
    the inner-loop operation of every scalar multiplication.
    """
    x1, y1, z1, _ = p
    a = x1 * x1 % _P
    b = y1 * y1 % _P
    c = 2 * z1 * z1 % _P
    xy = x1 + y1
    e = (xy * xy - a - b) % _P
    g = (b - a) % _P
    f = (g - c) % _P
    h = (-a - b) % _P
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_negate(p: _Point) -> _Point:
    x, y, z, t = p
    return (_P - x if x else 0, y, z, _P - t if t else 0)


def _point_mul(scalar: int, point: _Point) -> _Point:
    result = _IDENTITY
    addend = point
    while scalar > 0:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_double(addend)
        scalar >>= 1
    return result


# --- fixed-base scalar multiplication (signing hot path) ---------------
#
# Signing multiplies the *base point* by two scalars per signature; a
# precomputed window table turns each of those from ~256 doublings +
# ~128 additions into at most 31 additions with no doublings at all.
# The window was widened from 4 to 8 bits for the batch-verification
# work: every batched check pays exactly one fixed-base multiplication
# (the ``(Σ z_i·s_i)·B`` term), and single verification now routes its
# ``s·B`` half through this table too, so the wider window pays off on
# both the signing and the appraisal hot paths. The table is built
# lazily on first use (~8k point additions, tens of milliseconds) so
# merely importing the module stays cheap.

_WINDOW_BITS = 8
_WINDOWS = 32  # ceil(256 / _WINDOW_BITS): covers clamped 255-bit scalars
_BASE_TABLE: "list" = []


def _build_base_table() -> None:
    point = _BASE  # defined below; the table is only built lazily
    for _ in range(_WINDOWS):
        row = [_IDENTITY, point]
        acc = point
        for _ in range(2, 1 << _WINDOW_BITS):
            acc = _point_add(acc, point)
            row.append(acc)
        _BASE_TABLE.append(tuple(row))
        for _ in range(_WINDOW_BITS):
            point = _point_double(point)


def _base_mul(scalar: int) -> _Point:
    """``scalar * B`` via the precomputed window table."""
    if not _BASE_TABLE:
        _build_base_table()
    result = _IDENTITY
    mask = (1 << _WINDOW_BITS) - 1
    for window in range(_WINDOWS):
        nibble = scalar & mask
        if nibble:
            result = _point_add(result, _BASE_TABLE[window][nibble])
        scalar >>= _WINDOW_BITS
    return result


def _double_scalar_mul(k1: int, p1: _Point, k2: int, p2: _Point) -> _Point:
    """``k1*p1 + k2*p2`` via Shamir's trick (interleaved bits).

    One shared doubling chain for both scalars — verification needs
    ``s*B - k*A`` and this halves its doubling work versus two
    independent multiplications.
    """
    both = _point_add(p1, p2)
    result = _IDENTITY
    for bit in range(max(k1.bit_length(), k2.bit_length()) - 1, -1, -1):
        result = _point_double(result)
        b1 = (k1 >> bit) & 1
        b2 = (k2 >> bit) & 1
        if b1 and b2:
            result = _point_add(result, both)
        elif b1:
            result = _point_add(result, p1)
        elif b2:
            result = _point_add(result, p2)
    return result


# --- wNAF recoding and interleaved multi-scalar multiplication ---------
#
# Verification is variable-base: ``k`` multiplies a public key and (in
# the batched check) randomizers multiply signature R-points, neither
# of which can be precomputed ahead of time. Width-w signed-digit
# (wNAF) recoding cuts the additions of a 252-bit scalar from ~126
# (binary) to ~252/(w+1), at the cost of a small per-point table of odd
# multiples; interleaving many recoded scalars over one shared doubling
# chain is what makes the single multi-scalar batch check cheaper than
# per-signature Shamir chains.

_NAF_WIDTH = 5  # odd digits in (-2^(w-1), 2^(w-1)); 8-entry tables


def _wnaf_digits(scalar: int, width: int = _NAF_WIDTH) -> List[int]:
    """Width-``width`` non-adjacent form, least-significant digit first.

    Every non-zero digit is odd and followed by at least ``width - 1``
    zeros, so at most one table addition happens per ``width + 1``
    doublings on average.
    """
    digits: List[int] = []
    full = 1 << width
    half = full >> 1
    mask = full - 1
    while scalar > 0:
        if scalar & 1:
            digit = scalar & mask
            if digit >= half:
                digit -= full
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def _odd_multiples(point: _Point, width: int = _NAF_WIDTH) -> Tuple[_Point, ...]:
    """``(1P, 3P, 5P, ..., (2^(width-1) - 1)P)`` — the wNAF table."""
    count = 1 << (width - 2)
    table = [point]
    twice = _point_double(point)
    for _ in range(count - 1):
        table.append(_point_add(table[-1], twice))
    return tuple(table)


def _wnaf_mul(
    scalar: int,
    positives: Sequence[_Point],
    negatives: Sequence[_Point],
) -> _Point:
    """``scalar * P`` given P's odd-multiple tables (both signs)."""
    digits = _wnaf_digits(scalar)
    result = _IDENTITY
    for index in range(len(digits) - 1, -1, -1):
        result = _point_double(result)
        digit = digits[index]
        if digit > 0:
            result = _point_add(result, positives[digit >> 1])
        elif digit < 0:
            result = _point_add(result, negatives[(-digit) >> 1])
    return result


def _multi_scalar_mul(terms: Sequence[Tuple[int, _Point]]) -> _Point:
    """``Σ scalar_i · point_i`` via interleaved wNAF recoding.

    All scalars share one doubling chain (the length of the largest
    scalar), so n points cost ~256 doublings total instead of ~256n —
    the heart of the batched verification equation.
    """
    # Transposed schedule: bucket every non-zero wNAF digit by bit
    # position up front, so the doubling loop touches only positions
    # with work instead of scanning all n digit arrays per doubling
    # (n·256 no-op checks dominate pure-Python MSM otherwise).
    buckets: Dict[int, List[_Point]] = {}
    top = 0
    for scalar, point in terms:
        if scalar == 0:
            continue
        digits = _wnaf_digits(scalar)
        positives = _odd_multiples(point)
        top = max(top, len(digits))
        for index, digit in enumerate(digits):
            if digit > 0:
                buckets.setdefault(index, []).append(positives[digit >> 1])
            elif digit < 0:
                buckets.setdefault(index, []).append(
                    _point_negate(positives[(-digit) >> 1])
                )
    result = _IDENTITY
    for index in range(top - 1, -1, -1):
        result = _point_double(result)
        for point in buckets.get(index, ()):
            result = _point_add(result, point)
    return result


def _point_equal(p: _Point, q: _Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def _point_compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x = x * zinv % _P
    y = y * zinv % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise CryptoError(f"point encoding must be 32 bytes, got {len(data)}")
    encoded = int.from_bytes(data, "little")
    sign_bit = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    x = _recover_x(y, sign_bit)
    return (x, y, 1, x * y % _P)


# Base point B (RFC 8032 §5.1).
_BASE_Y = 4 * _inv(5) % _P
_BASE_X = _recover_x(_BASE_Y, 0)
_BASE: _Point = (_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % _P)


def _secret_expand(secret: bytes) -> Tuple[int, bytes]:
    if len(secret) != KEY_LEN:
        raise CryptoError(f"secret key must be {KEY_LEN} bytes, got {len(secret)}")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def public_key_bytes(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    a, _ = _secret_expand(secret)
    return _point_compress(_base_mul(a))


def _sign_expanded(a: int, prefix: bytes, public: bytes, message: bytes) -> bytes:
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_point = _point_compress(_base_mul(r))
    k = int.from_bytes(_sha512(r_point + public + message), "little") % _L
    s = (r + k * a) % _L
    return r_point + s.to_bytes(32, "little")


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature over ``message``."""
    a, prefix = _secret_expand(secret)
    public = _point_compress(_base_mul(a))
    return _sign_expanded(a, prefix, public, message)


def _split_signature(signature: bytes) -> Optional[Tuple[_Point, int]]:
    """Decode ``(R, s)`` from a 64-byte signature, or ``None``.

    The structural rejections — an R that is not a curve point, a
    non-canonical ``s >= L`` — are hoisted here so the single and
    batched verification paths reject exactly the same inputs.
    """
    try:
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return None
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return None
    return r_point, s


def _challenge(public: bytes, message: bytes, signature: bytes) -> int:
    """The RFC 8032 challenge scalar ``k = H(R || A || M) mod L``."""
    return int.from_bytes(_sha512(signature[:32] + public + message), "little") % _L


# A verification key's wNAF tables: odd multiples of -A and of A (the
# negated table serves the negative recoded digits).
_WnafTables = Tuple[Tuple[_Point, ...], Tuple[_Point, ...]]


def _wnaf_tables_for(a_point: _Point) -> _WnafTables:
    positives = _odd_multiples(_point_negate(a_point))
    negatives = tuple(_point_negate(p) for p in positives)
    return positives, negatives


def _mul_by_cofactor(p: _Point) -> _Point:
    """``[8]P`` — three doublings clear any small-order component."""
    return _point_double(_point_double(_point_double(p)))


def _verify_decompressed(
    a_point: _Point,
    public: bytes,
    message: bytes,
    signature: bytes,
    tables: Optional[_WnafTables] = None,
) -> bool:
    split = _split_signature(signature)
    if split is None:
        return False
    r_point, s = split
    k = _challenge(public, message, signature)
    if tables is None:
        tables = _wnaf_tables_for(a_point)
    # Cofactored check (RFC 8032 §5.1.7's "[8][S]B = [8]R + [8][k]A'"
    # variant): compute s*B + k*(-A) - R and multiply by the cofactor
    # before comparing to the identity. Cofactorless single
    # verification cannot agree with any batched check (Chalkias et
    # al., "Taming the Many EdDSAs"): a signer can plant a small-order
    # torsion point in R that only the batch randomizers cancel.
    # Clearing the 8-torsion on *both* paths makes the accept sets
    # provably identical. The fixed-base half comes from the
    # precomputed window table; the variable-base half runs one wNAF
    # chain over the key's cached odd-multiple tables.
    candidate = _point_add(_base_mul(s), _wnaf_mul(k, *tables))
    diff = _point_add(candidate, _point_negate(r_point))
    return _point_equal(_mul_by_cofactor(diff), _IDENTITY)


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature. Returns ``False`` on any mismatch.

    Verification is *cofactored* (the RFC 8032 §5.1.7 ``[8][S]B = [8]R
    + [8][k]A'`` variant), matching :func:`verify_batch` exactly — see
    the batch-verification comment block for why cofactorless single
    verification can never agree with a batched check.

    Raises :class:`CryptoError` only for structurally malformed inputs
    (wrong lengths, non-canonical points), so callers can distinguish
    "forged" from "not even a signature".
    """
    if len(public) != KEY_LEN:
        raise CryptoError(f"public key must be {KEY_LEN} bytes, got {len(public)}")
    if len(signature) != SIGNATURE_LEN:
        raise CryptoError(
            f"signature must be {SIGNATURE_LEN} bytes, got {len(signature)}"
        )
    try:
        a_point = _point_decompress(public)
    except CryptoError:
        return False
    return _verify_decompressed(a_point, public, message, signature)


@dataclass(frozen=True)
class VerifyKey:
    """An Ed25519 verification (public) key.

    The decompressed curve point is computed once per key object and
    cached, so a registry holding long-lived keys pays the square-root
    recovery on first use only — not once per verification.
    """

    key_bytes: bytes

    def __post_init__(self) -> None:
        if len(self.key_bytes) != KEY_LEN:
            raise CryptoError(
                f"public key must be {KEY_LEN} bytes, got {len(self.key_bytes)}"
            )

    def point(self) -> _Point:
        """The decompressed public point, computed once and cached.

        Raises :class:`CryptoError` for encodings that are 32 bytes but
        not a curve point.
        """
        cached = self.__dict__.get("_point")
        if cached is None:
            cached = _point_decompress(self.key_bytes)
            object.__setattr__(self, "_point", cached)
        return cached

    def neg_point(self) -> _Point:
        """``-A``, cached next to the decompressed point.

        Every verification needs the negated public point (the check is
        ``s·B + k·(-A) == R``); caching it here means a long-lived
        registry key negates once, not once per signature.
        """
        cached = self.__dict__.get("_neg_point")
        if cached is None:
            cached = _point_negate(self.point())
            object.__setattr__(self, "_neg_point", cached)
        return cached

    def _wnaf_tables(self) -> _WnafTables:
        """The key's odd-multiple tables for wNAF chains, built once."""
        cached = self.__dict__.get("_tables")
        if cached is None:
            positives = _odd_multiples(self.neg_point())
            negatives = tuple(_point_negate(p) for p in positives)
            cached = (positives, negatives)
            object.__setattr__(self, "_tables", cached)
        return cached

    def verify(self, message: bytes, signature: bytes) -> bool:
        if len(signature) != SIGNATURE_LEN:
            raise CryptoError(
                f"signature must be {SIGNATURE_LEN} bytes, got {len(signature)}"
            )
        try:
            a_point = self.point()
            tables = self._wnaf_tables()
        except CryptoError:
            return False
        return _verify_decompressed(
            a_point, self.key_bytes, message, signature, tables=tables
        )

    def fingerprint(self) -> str:
        """Short stable identifier for logs and certificates."""
        return hashlib.sha256(self.key_bytes).hexdigest()[:16]


@dataclass(frozen=True)
class SigningKey:
    """An Ed25519 signing (secret) key, derived from a 32-byte seed.

    The expanded secret scalar, prefix and compressed public key are
    derived once per key object and cached: signing then costs two
    fixed-base window multiplications instead of three generic ones.
    """

    seed: bytes

    def __post_init__(self) -> None:
        if len(self.seed) != KEY_LEN:
            raise CryptoError(f"seed must be {KEY_LEN} bytes, got {len(self.seed)}")

    @classmethod
    def from_deterministic_seed(cls, label: str) -> "SigningKey":
        """Derive a key from a label — simulations must be reproducible."""
        return cls(hashlib.sha256(b"repro-ed25519-seed:" + label.encode()).digest())

    def _expanded(self) -> Tuple[int, bytes, bytes]:
        cached = self.__dict__.get("_expand")
        if cached is None:
            a, prefix = _secret_expand(self.seed)
            public = _point_compress(_base_mul(a))
            cached = (a, prefix, public)
            object.__setattr__(self, "_expand", cached)
        return cached

    def sign(self, message: bytes) -> bytes:
        a, prefix, public = self._expanded()
        return _sign_expanded(a, prefix, public, message)

    def verify_key(self) -> VerifyKey:
        _, _, public = self._expanded()
        return VerifyKey(public)


# --- batch verification -------------------------------------------------
#
# The random-linear-combination check: signatures i with challenge k_i
# all satisfy [8]s_i·B = [8]R_i + [8]k_i·A_i, so for any non-zero
# randomizers z_i the single equation
#
#     [8]( (Σ z_i·s_i)·B − Σ z_i·R_i − Σ (z_i·k_i)·A_i ) = 0
#
# holds for an all-valid batch, while a batch containing any forgery
# fails except with probability ~2^-128 over the choice of z_i. One
# fixed-base multiplication plus one interleaved multi-scalar chain
# replaces n independent verifications. Signatures by the *same* key
# merge their z_i·k_i scalars, so a batch signed by few distinct
# switches pays for few variable-base points.
#
# Both the batched equation and the single check are *cofactored*
# (multiplied by 8 before the identity comparison). This is load-
# bearing, not stylistic: Chalkias et al. ("Taming the Many EdDSAs")
# show cofactorless batch verification cannot match cofactorless
# single verification — a signer can publish (R + T, s) with T a
# small-order torsion point and grind messages until the randomizers
# cancel T (with deterministic z_i that is ~8 tries for z ≡ 0 mod 8),
# making the batch accept a signature the single path rejects. The
# passing batch never bisects, so the divergence would poison the
# verify cache and break batched/sequential verdict parity. Clearing
# the 8-torsion on both paths removes the attack class entirely; the
# randomizers are additionally forced odd so no single member's
# torsion defect can be annihilated by its own z_i even if the
# cofactor multiplication were ever removed.
#
# Randomizers are derived from a domain-separated hash of the batch
# contents — never from ``random`` — so the same evidence always takes
# the same verification path and sharded campaigns stay byte-identical.

_BATCH_DOMAIN = b"repro.crypto/batch-verify/v1"

# A batch member: (public key or key bytes, message, signature).
BatchItem = Tuple[Union[bytes, VerifyKey], bytes, bytes]

# Internal prepared member: (caller index, key, message, signature,
# R point, s scalar, challenge k).
_Prepared = Tuple[int, VerifyKey, bytes, bytes, _Point, int, int]


def _batch_randomizers(members: Sequence[_Prepared]) -> List[int]:
    """Deterministic per-member randomizers ``z_i``.

    A SHA-512 transcript absorbs every member's key, signature and
    challenge scalar (the challenge already binds the message), then
    each index squeezes an independent non-zero 128-bit scalar.
    128 bits keeps the forgery-acceptance probability negligible while
    halving the R-point wNAF chains relative to full-width scalars.
    Every ``z_i`` is forced odd: combined with the cofactored batch
    equation this guarantees ``z_i·T ≠ 0`` for any non-trivial
    small-order ``T``, so a lone member's torsion component can never
    be cancelled by its own randomizer.
    """
    transcript = hashlib.sha512()
    transcript.update(_BATCH_DOMAIN)
    transcript.update(len(members).to_bytes(4, "little"))
    for _, key, _, signature, _, _, k in members:
        transcript.update(key.key_bytes)
        transcript.update(signature)
        transcript.update(k.to_bytes(32, "little"))
    seed = transcript.digest()
    randomizers: List[int] = []
    for index in range(len(members)):
        block = _sha512(
            seed + index.to_bytes(4, "little") + (0).to_bytes(4, "little")
        )
        # Odd — hence non-zero — by construction (see the docstring).
        randomizers.append(int.from_bytes(block[:16], "little") | 1)
    return randomizers


def _check_batch(
    members: Sequence[_Prepared], stats: Optional[Dict[str, int]]
) -> bool:
    """Run the single multi-scalar check over ``members``."""
    if stats is not None:
        stats["batch_checks"] = stats.get("batch_checks", 0) + 1
    randomizers = _batch_randomizers(members)
    merged_s = 0
    key_scalars: Dict[bytes, int] = {}
    key_points: Dict[bytes, _Point] = {}
    terms: List[Tuple[int, _Point]] = []
    for z, (_, key, _, _, r_point, s, k) in zip(randomizers, members):
        merged_s = (merged_s + z * s) % _L
        terms.append((z, _point_negate(r_point)))
        key_scalars[key.key_bytes] = (key_scalars.get(key.key_bytes, 0) + z * k) % _L
        key_points.setdefault(key.key_bytes, key.neg_point())
    for key_bytes, scalar in key_scalars.items():
        terms.append((scalar, key_points[key_bytes]))
    candidate = _point_add(_base_mul(merged_s), _multi_scalar_mul(terms))
    # Cofactored, like the single path — see the comment block above.
    return _point_equal(_mul_by_cofactor(candidate), _IDENTITY)


def _resolve_batch(
    members: Sequence[_Prepared],
    results: List[bool],
    stats: Optional[Dict[str, int]],
) -> None:
    """Bisect ``members`` until every verdict is settled.

    A passing group accepts all members at once; a failing group splits
    in half so the culprit is isolated in O(log n) extra checks. Groups
    of one fall back to the exact single-signature path, guaranteeing
    that every ``False`` verdict is confirmed by — and identical to —
    ``VerifyKey.verify``.
    """
    if not members:
        return
    if len(members) == 1:
        index, key, message, signature, _, _, _ = members[0]
        if stats is not None:
            stats["single_checks"] = stats.get("single_checks", 0) + 1
        results[index] = key.verify(message, signature)
        return
    if _check_batch(members, stats):
        for member in members:
            results[member[0]] = True
        return
    mid = len(members) // 2
    _resolve_batch(members[:mid], results, stats)
    _resolve_batch(members[mid:], results, stats)


def verify_batch(
    items: Sequence[BatchItem],
    stats: Optional[Dict[str, int]] = None,
) -> List[bool]:
    """Verify many Ed25519 signatures with one multi-scalar check.

    Returns one boolean per item, in order. Unlike the single-signature
    :func:`verify` — which raises :class:`CryptoError` for structurally
    malformed inputs — a batch cannot raise on behalf of one member, so
    malformed keys or signatures fold to ``False`` (the same fold the
    memoized verify cache applies). All other inputs reject identically
    to the single path: the structural screen is the shared
    :func:`_split_signature` / point decompression, and failing batches
    bisect down to exact ``VerifyKey.verify`` calls.

    ``stats``, when provided, accumulates ``batch_checks`` (multi-scalar
    equations evaluated) and ``single_checks`` (size-one fallbacks).
    """
    results: List[bool] = [False] * len(items)
    prepared: List[_Prepared] = []
    for index, (key, message, signature) in enumerate(items):
        if not isinstance(key, VerifyKey):
            try:
                key = VerifyKey(bytes(key))
            except CryptoError:
                continue
        if len(signature) != SIGNATURE_LEN:
            continue
        try:
            key.point()
        except CryptoError:
            continue
        split = _split_signature(signature)
        if split is None:
            continue
        r_point, s = split
        k = _challenge(key.key_bytes, message, signature)
        prepared.append((index, key, bytes(message), bytes(signature), r_point, s, k))
    _resolve_batch(prepared, results, stats)
    return results
