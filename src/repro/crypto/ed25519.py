"""A from-scratch Ed25519 implementation (RFC 8032).

This is the signature primitive behind Copland's ``!`` operator and the
Sign/Verify block of the PERA switch (paper Fig. 3). It follows the
RFC 8032 reference construction over the twisted Edwards curve
edwards25519, using extended homogeneous coordinates for group
arithmetic.

The implementation is deliberately self-contained (no third-party
dependency is available offline) and is *not* constant-time; the
simulated root of trust does not face timing adversaries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.util.errors import CryptoError

# Curve constants (RFC 8032 §5.1).
_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P

SIGNATURE_LEN = 64
KEY_LEN = 32

# A point in extended homogeneous coordinates (X, Y, Z, T), x = X/Z,
# y = Y/Z, x*y = T/Z.
_Point = Tuple[int, int, int, int]

_IDENTITY: _Point = (0, 1, 1, 0)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _P - 2, _P)


def _recover_x(y: int, sign_bit: int) -> int:
    """Recover the x-coordinate from y and the encoded sign bit."""
    if y >= _P:
        raise CryptoError("point y-coordinate out of field range")
    x2 = (y * y - 1) * _inv(_D * y * y + 1) % _P
    if x2 == 0:
        if sign_bit:
            raise CryptoError("invalid point encoding: x=0 with sign bit set")
        return 0
    # Square root for p = 5 (mod 8).
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = x * pow(2, (_P - 1) // 4, _P) % _P
    if (x * x - x2) % _P != 0:
        raise CryptoError("invalid point encoding: no square root")
    if (x & 1) != sign_bit:
        x = _P - x
    return x


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_mul(scalar: int, point: _Point) -> _Point:
    result = _IDENTITY
    addend = point
    while scalar > 0:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        scalar >>= 1
    return result


def _point_equal(p: _Point, q: _Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def _point_compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x = x * zinv % _P
    y = y * zinv % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise CryptoError(f"point encoding must be 32 bytes, got {len(data)}")
    encoded = int.from_bytes(data, "little")
    sign_bit = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    x = _recover_x(y, sign_bit)
    return (x, y, 1, x * y % _P)


# Base point B (RFC 8032 §5.1).
_BASE_Y = 4 * _inv(5) % _P
_BASE_X = _recover_x(_BASE_Y, 0)
_BASE: _Point = (_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % _P)


def _secret_expand(secret: bytes) -> Tuple[int, bytes]:
    if len(secret) != KEY_LEN:
        raise CryptoError(f"secret key must be {KEY_LEN} bytes, got {len(secret)}")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def public_key_bytes(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    a, _ = _secret_expand(secret)
    return _point_compress(_point_mul(a, _BASE))


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature over ``message``."""
    a, prefix = _secret_expand(secret)
    public = _point_compress(_point_mul(a, _BASE))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_point = _point_compress(_point_mul(r, _BASE))
    k = int.from_bytes(_sha512(r_point + public + message), "little") % _L
    s = (r + k * a) % _L
    return r_point + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature. Returns ``False`` on any mismatch.

    Raises :class:`CryptoError` only for structurally malformed inputs
    (wrong lengths, non-canonical points), so callers can distinguish
    "forged" from "not even a signature".
    """
    if len(public) != KEY_LEN:
        raise CryptoError(f"public key must be {KEY_LEN} bytes, got {len(public)}")
    if len(signature) != SIGNATURE_LEN:
        raise CryptoError(
            f"signature must be {SIGNATURE_LEN} bytes, got {len(signature)}"
        )
    try:
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message), "little") % _L
    left = _point_mul(s, _BASE)
    right = _point_add(r_point, _point_mul(k, a_point))
    return _point_equal(left, right)


@dataclass(frozen=True)
class VerifyKey:
    """An Ed25519 verification (public) key."""

    key_bytes: bytes

    def __post_init__(self) -> None:
        if len(self.key_bytes) != KEY_LEN:
            raise CryptoError(
                f"public key must be {KEY_LEN} bytes, got {len(self.key_bytes)}"
            )

    def verify(self, message: bytes, signature: bytes) -> bool:
        return verify(self.key_bytes, message, signature)

    def fingerprint(self) -> str:
        """Short stable identifier for logs and certificates."""
        return hashlib.sha256(self.key_bytes).hexdigest()[:16]


@dataclass(frozen=True)
class SigningKey:
    """An Ed25519 signing (secret) key, derived from a 32-byte seed."""

    seed: bytes

    def __post_init__(self) -> None:
        if len(self.seed) != KEY_LEN:
            raise CryptoError(f"seed must be {KEY_LEN} bytes, got {len(self.seed)}")

    @classmethod
    def from_deterministic_seed(cls, label: str) -> "SigningKey":
        """Derive a key from a label — simulations must be reproducible."""
        return cls(hashlib.sha256(b"repro-ed25519-seed:" + label.encode()).digest())

    def sign(self, message: bytes) -> bytes:
        return sign(self.seed, message)

    def verify_key(self) -> VerifyKey:
        return VerifyKey(public_key_bytes(self.seed))
