"""A from-scratch Ed25519 implementation (RFC 8032).

This is the signature primitive behind Copland's ``!`` operator and the
Sign/Verify block of the PERA switch (paper Fig. 3). It follows the
RFC 8032 reference construction over the twisted Edwards curve
edwards25519, using extended homogeneous coordinates for group
arithmetic.

The implementation is deliberately self-contained (no third-party
dependency is available offline) and is *not* constant-time; the
simulated root of trust does not face timing adversaries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.util.errors import CryptoError

# Curve constants (RFC 8032 §5.1).
_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P

SIGNATURE_LEN = 64
KEY_LEN = 32

# A point in extended homogeneous coordinates (X, Y, Z, T), x = X/Z,
# y = Y/Z, x*y = T/Z.
_Point = Tuple[int, int, int, int]

_IDENTITY: _Point = (0, 1, 1, 0)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _P - 2, _P)


def _recover_x(y: int, sign_bit: int) -> int:
    """Recover the x-coordinate from y and the encoded sign bit."""
    if y >= _P:
        raise CryptoError("point y-coordinate out of field range")
    x2 = (y * y - 1) * _inv(_D * y * y + 1) % _P
    if x2 == 0:
        if sign_bit:
            raise CryptoError("invalid point encoding: x=0 with sign bit set")
        return 0
    # Square root for p = 5 (mod 8).
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = x * pow(2, (_P - 1) // 4, _P) % _P
    if (x * x - x2) % _P != 0:
        raise CryptoError("invalid point encoding: no square root")
    if (x & 1) != sign_bit:
        x = _P - x
    return x


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_double(p: _Point) -> _Point:
    """Dedicated doubling (dbl-2008-hwcd with a = -1).

    Cheaper than ``_point_add(p, p)`` — doubling needs four squarings
    instead of the general formula's eight multiplications, and it is
    the inner-loop operation of every scalar multiplication.
    """
    x1, y1, z1, _ = p
    a = x1 * x1 % _P
    b = y1 * y1 % _P
    c = 2 * z1 * z1 % _P
    xy = x1 + y1
    e = (xy * xy - a - b) % _P
    g = (b - a) % _P
    f = (g - c) % _P
    h = (-a - b) % _P
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_negate(p: _Point) -> _Point:
    x, y, z, t = p
    return (_P - x if x else 0, y, z, _P - t if t else 0)


def _point_mul(scalar: int, point: _Point) -> _Point:
    result = _IDENTITY
    addend = point
    while scalar > 0:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_double(addend)
        scalar >>= 1
    return result


# --- fixed-base scalar multiplication (signing hot path) ---------------
#
# Signing multiplies the *base point* by two scalars per signature; a
# precomputed window table turns each of those from ~256 doublings +
# ~128 additions into at most 63 additions with no doublings at all.
# The table is built lazily on first use (1024 point additions, a few
# milliseconds) so merely importing the module stays cheap.

_WINDOW_BITS = 4
_WINDOWS = 64  # ceil(256 / _WINDOW_BITS): covers clamped 255-bit scalars
_BASE_TABLE: "list" = []


def _build_base_table() -> None:
    point = _BASE  # defined below; the table is only built lazily
    for _ in range(_WINDOWS):
        row = [_IDENTITY, point]
        acc = point
        for _ in range(2, 1 << _WINDOW_BITS):
            acc = _point_add(acc, point)
            row.append(acc)
        _BASE_TABLE.append(tuple(row))
        for _ in range(_WINDOW_BITS):
            point = _point_double(point)


def _base_mul(scalar: int) -> _Point:
    """``scalar * B`` via the precomputed window table."""
    if not _BASE_TABLE:
        _build_base_table()
    result = _IDENTITY
    mask = (1 << _WINDOW_BITS) - 1
    for window in range(_WINDOWS):
        nibble = scalar & mask
        if nibble:
            result = _point_add(result, _BASE_TABLE[window][nibble])
        scalar >>= _WINDOW_BITS
    return result


def _double_scalar_mul(k1: int, p1: _Point, k2: int, p2: _Point) -> _Point:
    """``k1*p1 + k2*p2`` via Shamir's trick (interleaved bits).

    One shared doubling chain for both scalars — verification needs
    ``s*B - k*A`` and this halves its doubling work versus two
    independent multiplications.
    """
    both = _point_add(p1, p2)
    result = _IDENTITY
    for bit in range(max(k1.bit_length(), k2.bit_length()) - 1, -1, -1):
        result = _point_double(result)
        b1 = (k1 >> bit) & 1
        b2 = (k2 >> bit) & 1
        if b1 and b2:
            result = _point_add(result, both)
        elif b1:
            result = _point_add(result, p1)
        elif b2:
            result = _point_add(result, p2)
    return result


def _point_equal(p: _Point, q: _Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def _point_compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x = x * zinv % _P
    y = y * zinv % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise CryptoError(f"point encoding must be 32 bytes, got {len(data)}")
    encoded = int.from_bytes(data, "little")
    sign_bit = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    x = _recover_x(y, sign_bit)
    return (x, y, 1, x * y % _P)


# Base point B (RFC 8032 §5.1).
_BASE_Y = 4 * _inv(5) % _P
_BASE_X = _recover_x(_BASE_Y, 0)
_BASE: _Point = (_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % _P)


def _secret_expand(secret: bytes) -> Tuple[int, bytes]:
    if len(secret) != KEY_LEN:
        raise CryptoError(f"secret key must be {KEY_LEN} bytes, got {len(secret)}")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def public_key_bytes(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    a, _ = _secret_expand(secret)
    return _point_compress(_base_mul(a))


def _sign_expanded(a: int, prefix: bytes, public: bytes, message: bytes) -> bytes:
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_point = _point_compress(_base_mul(r))
    k = int.from_bytes(_sha512(r_point + public + message), "little") % _L
    s = (r + k * a) % _L
    return r_point + s.to_bytes(32, "little")


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature over ``message``."""
    a, prefix = _secret_expand(secret)
    public = _point_compress(_base_mul(a))
    return _sign_expanded(a, prefix, public, message)


def _verify_decompressed(
    a_point: _Point, public: bytes, message: bytes, signature: bytes
) -> bool:
    try:
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message), "little") % _L
    # s*B == R + k*A  <=>  s*B + k*(-A) == R (one Shamir chain).
    candidate = _double_scalar_mul(s, _BASE, k, _point_negate(a_point))
    return _point_equal(candidate, r_point)


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature. Returns ``False`` on any mismatch.

    Raises :class:`CryptoError` only for structurally malformed inputs
    (wrong lengths, non-canonical points), so callers can distinguish
    "forged" from "not even a signature".
    """
    if len(public) != KEY_LEN:
        raise CryptoError(f"public key must be {KEY_LEN} bytes, got {len(public)}")
    if len(signature) != SIGNATURE_LEN:
        raise CryptoError(
            f"signature must be {SIGNATURE_LEN} bytes, got {len(signature)}"
        )
    try:
        a_point = _point_decompress(public)
    except CryptoError:
        return False
    return _verify_decompressed(a_point, public, message, signature)


@dataclass(frozen=True)
class VerifyKey:
    """An Ed25519 verification (public) key.

    The decompressed curve point is computed once per key object and
    cached, so a registry holding long-lived keys pays the square-root
    recovery on first use only — not once per verification.
    """

    key_bytes: bytes

    def __post_init__(self) -> None:
        if len(self.key_bytes) != KEY_LEN:
            raise CryptoError(
                f"public key must be {KEY_LEN} bytes, got {len(self.key_bytes)}"
            )

    def point(self) -> _Point:
        """The decompressed public point, computed once and cached.

        Raises :class:`CryptoError` for encodings that are 32 bytes but
        not a curve point.
        """
        cached = self.__dict__.get("_point")
        if cached is None:
            cached = _point_decompress(self.key_bytes)
            object.__setattr__(self, "_point", cached)
        return cached

    def verify(self, message: bytes, signature: bytes) -> bool:
        if len(signature) != SIGNATURE_LEN:
            raise CryptoError(
                f"signature must be {SIGNATURE_LEN} bytes, got {len(signature)}"
            )
        try:
            a_point = self.point()
        except CryptoError:
            return False
        return _verify_decompressed(a_point, self.key_bytes, message, signature)

    def fingerprint(self) -> str:
        """Short stable identifier for logs and certificates."""
        return hashlib.sha256(self.key_bytes).hexdigest()[:16]


@dataclass(frozen=True)
class SigningKey:
    """An Ed25519 signing (secret) key, derived from a 32-byte seed.

    The expanded secret scalar, prefix and compressed public key are
    derived once per key object and cached: signing then costs two
    fixed-base window multiplications instead of three generic ones.
    """

    seed: bytes

    def __post_init__(self) -> None:
        if len(self.seed) != KEY_LEN:
            raise CryptoError(f"seed must be {KEY_LEN} bytes, got {len(self.seed)}")

    @classmethod
    def from_deterministic_seed(cls, label: str) -> "SigningKey":
        """Derive a key from a label — simulations must be reproducible."""
        return cls(hashlib.sha256(b"repro-ed25519-seed:" + label.encode()).digest())

    def _expanded(self) -> Tuple[int, bytes, bytes]:
        cached = self.__dict__.get("_expand")
        if cached is None:
            a, prefix = _secret_expand(self.seed)
            public = _point_compress(_base_mul(a))
            cached = (a, prefix, public)
            object.__setattr__(self, "_expand", cached)
        return cached

    def sign(self, message: bytes) -> bytes:
        a, prefix, public = self._expanded()
        return _sign_expanded(a, prefix, public, message)

    def verify_key(self) -> VerifyKey:
        _, _, public = self._expanded()
        return VerifyKey(public)
