"""Per-user pseudonyms for switches and programs.

Paper footnotes 1 and 2: "Instead of revealing their actual serial
number, switches could be assigned a per-user pseudonym by the
operator" and "Programs can also be assigned pseudonyms that can be
lifted by an auditor's request or court order."

The :class:`PseudonymAuthority` (run by the network operator) derives
stable, per-user pseudonyms with a keyed hash so that (a) the same user
always sees the same pseudonym for the same device — evidence remains
linkable across attestations — while (b) different users cannot
correlate their views, and (c) only the authority can *lift* a
pseudonym back to the real identity.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Tuple

from repro.util.errors import CryptoError


class PseudonymAuthority:
    """Operator-held authority that mints and lifts pseudonyms."""

    def __init__(self, operator_secret: bytes) -> None:
        if len(operator_secret) < 16:
            raise CryptoError(
                "operator secret must be at least 16 bytes "
                f"(got {len(operator_secret)})"
            )
        self._secret = bytes(operator_secret)
        # (user, pseudonym) -> real identity, for auditor lift requests.
        self._lift_table: Dict[Tuple[str, str], str] = {}

    def pseudonym_for(self, user: str, real_identity: str) -> str:
        """Return ``user``'s stable pseudonym for ``real_identity``."""
        mac = hmac.new(
            self._secret,
            f"{len(user)}:{user}|{real_identity}".encode("utf-8"),
            hashlib.sha256,
        ).hexdigest()[:16]
        pseudonym = f"pseu-{mac}"
        self._lift_table[(user, pseudonym)] = real_identity
        return pseudonym

    def lift(self, user: str, pseudonym: str, warrant: str) -> str:
        """Reveal the real identity behind a pseudonym.

        ``warrant`` is the auditor's justification (court order id);
        it must be non-empty — the authority logs it with the lift.
        """
        if not warrant:
            raise CryptoError("a pseudonym lift requires a non-empty warrant")
        real = self._lift_table.get((user, pseudonym))
        if real is None:
            raise CryptoError(
                f"unknown pseudonym {pseudonym!r} for user {user!r}"
            )
        return real

    def is_pseudonym(self, name: str) -> bool:
        return name.startswith("pseu-")
