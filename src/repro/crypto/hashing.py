"""Measurement digests and hash chains.

Copland's ``#`` operator hashes accrued evidence; PERA's measurement
engine hashes dataplane programs, table contents and register state.
Both bottom out here. Domain separation tags keep a program digest from
ever colliding with, say, an evidence-bundle digest.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Optional

DIGEST_LEN = 32


def digest(data: bytes, domain: str = "") -> bytes:
    """SHA-256 of ``data`` under an optional domain-separation tag.

    The tag is length-prefixed so ``("ab", b"c")`` and ``("a", b"bc")``
    hash differently.
    """
    h = hashlib.sha256()
    tag = domain.encode("utf-8")
    h.update(len(tag).to_bytes(2, "big"))
    h.update(tag)
    h.update(data)
    return h.digest()


def digest_hex(data: bytes, domain: str = "") -> str:
    """Hex form of :func:`digest`, for logs and reports."""
    return digest(data, domain).hex()


def measure_mapping(items: Mapping[str, bytes], domain: str) -> bytes:
    """Deterministically hash a string-keyed mapping.

    Used to measure match-action table contents: the measurement must
    not depend on insertion order, so keys are sorted first.
    """
    h = hashlib.sha256()
    tag = domain.encode("utf-8")
    h.update(len(tag).to_bytes(2, "big"))
    h.update(tag)
    for key in sorted(items):
        key_bytes = key.encode("utf-8")
        value = items[key]
        h.update(len(key_bytes).to_bytes(4, "big"))
        h.update(key_bytes)
        h.update(len(value).to_bytes(4, "big"))
        h.update(value)
    return h.digest()


class HashChain:
    """An append-only hash chain, the backbone of chained path evidence.

    Each hop along an attested path extends the chain with its own
    evidence digest; the final head commits to the whole path in order
    (paper Fig. 4, "Chained" composition). Tampering with or reordering
    any link changes the head.
    """

    GENESIS = b"\x00" * DIGEST_LEN

    def __init__(self, head: Optional[bytes] = None) -> None:
        self._head = head if head is not None else self.GENESIS
        if len(self._head) != DIGEST_LEN:
            raise ValueError(
                f"hash chain head must be {DIGEST_LEN} bytes, got {len(self._head)}"
            )
        self._length = 0

    @property
    def head(self) -> bytes:
        return self._head

    @property
    def length(self) -> int:
        """Number of links appended *through this object* (not inherited)."""
        return self._length

    def extend(self, link: bytes) -> bytes:
        """Append ``link`` and return the new head."""
        self._head = digest(self._head + link, domain="hashchain-link")
        self._length += 1
        return self._head

    @staticmethod
    def replay(links: Iterable[bytes], start: Optional[bytes] = None) -> bytes:
        """Recompute the head an honest chain over ``links`` would have.

        The appraiser uses this to check a claimed chain head against
        the per-hop evidence digests it has collected.
        """
        chain = HashChain(head=start)
        for link in links:
            chain.extend(link)
        return chain.head
