"""Policy-only wire framing (the §5.2 options header).

A compiled policy serializes as one TLV (type
:data:`~repro.evidence.codec.POLICY_TLV_TYPE`, ``0x20``) whose value is
a nested TLV stream. Evidence itself no longer lives here: hop records
are canonical :mod:`repro.evidence` nodes and their framing (type
``0x10``) belongs to :mod:`repro.evidence.codec`. Both share the RA
shim header body — a packet carries ``[policy TLV][record TLV]*`` and
each decoder skips the other's types.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.compiler import CompiledPolicy, HopDirective
from repro.evidence.codec import POLICY_TLV_TYPE
from repro.pera.config import CompositionMode, DetailLevel
from repro.util.errors import CodecError
from repro.util.tlv import Tlv, TlvCodec

_T_POLICY_ID = 1
_T_RELYING_PARTY = 2
_T_NONCE = 3
_T_APPRAISER = 4
_T_TEST = 5
_T_ATTEST_ARG = 6
_T_DETAIL = 7
_T_COMPOSITION = 8
_T_FLAGS = 9
_T_OOB_TO = 10
_T_TERMINAL = 11
_T_REQUIRED = 12  # value: place '\x00' function
_T_MIN_HOPS = 13

_FLAG_SIGN = 0x01

_DETAIL_CODES = {level: i for i, level in enumerate(DetailLevel)}
_DETAIL_FROM_CODE = {i: level for level, i in _DETAIL_CODES.items()}
_COMPOSITION_CODES = {mode: i for i, mode in enumerate(CompositionMode)}
_COMPOSITION_FROM_CODE = {i: mode for mode, i in _COMPOSITION_CODES.items()}


def encode_compiled_policy(policy: CompiledPolicy) -> bytes:
    """Serialize to the single policy TLV (header + nested TLVs)."""
    elements: List[Tlv] = [
        Tlv(_T_POLICY_ID, policy.policy_id.encode()),
        Tlv(_T_RELYING_PARTY, policy.relying_party.encode()),
        Tlv(_T_NONCE, policy.nonce),
        Tlv(_T_APPRAISER, policy.appraiser.encode()),
        Tlv(_T_DETAIL, bytes([_DETAIL_CODES[policy.hop.detail]])),
        Tlv(_T_COMPOSITION, bytes([_COMPOSITION_CODES[policy.hop.composition]])),
        Tlv(_T_FLAGS, bytes([_FLAG_SIGN if policy.hop.sign else 0])),
        Tlv(_T_MIN_HOPS, policy.min_attested_hops.to_bytes(2, "big")),
    ]
    if policy.hop.test_text:
        elements.append(Tlv(_T_TEST, policy.hop.test_text.encode()))
    for arg in policy.hop.attest:
        elements.append(Tlv(_T_ATTEST_ARG, arg.encode()))
    if policy.hop.out_of_band_to:
        elements.append(Tlv(_T_OOB_TO, policy.hop.out_of_band_to.encode()))
    if policy.terminal_place:
        elements.append(Tlv(_T_TERMINAL, policy.terminal_place.encode()))
    for place, function in policy.required_functions:
        elements.append(
            Tlv(_T_REQUIRED, place.encode() + b"\x00" + function.encode())
        )
    return Tlv(POLICY_TLV_TYPE, TlvCodec.encode(elements)).encode()


def decode_compiled_policy(body: bytes) -> Optional[CompiledPolicy]:
    """Find and decode the policy TLV in a shim body (None if absent)."""
    for element in TlvCodec.iter_decode(body):
        if element.type == POLICY_TLV_TYPE:
            return _decode_inner(element.value)
    return None


def _decode_inner(data: bytes) -> CompiledPolicy:
    policy_id = relying_party = appraiser = ""
    nonce = b""
    test_text = ""
    attest: List[str] = []
    detail = DetailLevel.MINIMAL
    composition = CompositionMode.CHAINED
    sign = True
    out_of_band_to = ""
    terminal = ""
    required: List[Tuple[str, str]] = []
    min_hops = 0
    for element in TlvCodec.iter_decode(data):
        if element.type == _T_POLICY_ID:
            policy_id = element.value.decode()
        elif element.type == _T_RELYING_PARTY:
            relying_party = element.value.decode()
        elif element.type == _T_NONCE:
            nonce = element.value
        elif element.type == _T_APPRAISER:
            appraiser = element.value.decode()
        elif element.type == _T_TEST:
            test_text = element.value.decode()
        elif element.type == _T_ATTEST_ARG:
            attest.append(element.value.decode())
        elif element.type == _T_DETAIL:
            code = element.value[0]
            if code not in _DETAIL_FROM_CODE:
                raise CodecError(f"unknown detail code {code}")
            detail = _DETAIL_FROM_CODE[code]
        elif element.type == _T_COMPOSITION:
            code = element.value[0]
            if code not in _COMPOSITION_FROM_CODE:
                raise CodecError(f"unknown composition code {code}")
            composition = _COMPOSITION_FROM_CODE[code]
        elif element.type == _T_FLAGS:
            sign = bool(element.value[0] & _FLAG_SIGN)
        elif element.type == _T_OOB_TO:
            out_of_band_to = element.value.decode()
        elif element.type == _T_TERMINAL:
            terminal = element.value.decode()
        elif element.type == _T_REQUIRED:
            place, _, function = element.value.partition(b"\x00")
            required.append((place.decode(), function.decode()))
        elif element.type == _T_MIN_HOPS:
            min_hops = int.from_bytes(element.value, "big")
        else:
            raise CodecError(f"unknown policy TLV type {element.type}")
    if not policy_id:
        raise CodecError("policy TLV missing policy id")
    return CompiledPolicy(
        policy_id=policy_id,
        relying_party=relying_party,
        nonce=nonce,
        appraiser=appraiser,
        hop=HopDirective(
            test_text=test_text,
            attest=tuple(attest),
            detail=detail,
            composition=composition,
            sign=sign,
            out_of_band_to=out_of_band_to,
        ),
        terminal_place=terminal,
        required_functions=tuple(required),
        min_attested_hops=min_hops,
    )
