"""Fig. 4 design-space sweeps.

"Inertia, Detail and Composition are the primary indices in our design
space for PERA." This module runs a traffic workload across a grid of
:class:`~repro.pera.config.EvidenceConfig` points and reports, per
point, the quantities the figure motivates: cache hit rate, signatures
per packet, evidence bytes per packet, and RA processing cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode, DetailLevel, EvidenceConfig
from repro.pera.sampling import SamplingMode, SamplingSpec
from repro.pera.switch import PeraSwitch
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind


@dataclass(frozen=True)
class SweepResult:
    """One design-space point's measured behaviour."""

    detail: DetailLevel
    composition: CompositionMode
    sampling: SamplingSpec
    packets_sent: int
    packets_delivered: int
    signatures_per_packet: float
    cache_hit_rate: float
    evidence_bytes_per_packet: float
    ra_cost_per_packet: float

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular reporting."""
        sampling = self.sampling.mode.value
        if self.sampling.mode is SamplingMode.ONE_IN_N:
            sampling = f"1-in-{self.sampling.n}"
        return {
            "detail": self.detail.value,
            "composition": self.composition.value,
            "sampling": sampling,
            "sent": self.packets_sent,
            "delivered": self.packets_delivered,
            "sigs/pkt": round(self.signatures_per_packet, 3),
            "cache hit": round(self.cache_hit_rate, 3),
            "ev bytes/pkt": round(self.evidence_bytes_per_packet, 1),
            "ra cost/pkt": round(self.ra_cost_per_packet, 1),
        }


def run_design_point(
    config: EvidenceConfig,
    packet_count: int = 50,
    switch_count: int = 3,
    inter_packet_s: float = 1e-4,
) -> SweepResult:
    """Send ``packet_count`` RA packets through a PERA chain at one
    design point and measure the evidence-handling behaviour."""
    topo = linear_topology(switch_count)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches: List[PeraSwitch] = []
    for i in range(1, switch_count + 1):
        switch = PeraSwitch(f"s{i}", config=config)
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config(
            "ctl", ipv4_forwarding_program()
        )
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)

    for index in range(packet_count):
        def fire(seq=index):
            src.send_udp(
                dst_mac=dst.mac, dst_ip=dst.ip,
                src_port=1000, dst_port=2000,
                payload=seq.to_bytes(4, "big") + bytes(60),
                ra_shim=RaShimHeader(flags=RaShimHeader.FLAG_POLICY),
            )
        sim.schedule(index * inter_packet_s, fire)
    sim.run()

    delivered = len(dst.received_packets)
    total_signatures = sum(s.ra_stats.signatures_produced for s in switches)
    total_cost = sum(s.ra_cost for s in switches)
    total_evidence_bytes = sum(
        s.ra_stats.evidence_bytes_added for s in switches
    )
    hits = sum(s.cache.stats.hits for s in switches)
    misses = sum(s.cache.stats.misses for s in switches)
    return SweepResult(
        detail=config.detail,
        composition=config.composition,
        sampling=config.sampling,
        packets_sent=packet_count,
        packets_delivered=delivered,
        signatures_per_packet=total_signatures / max(1, packet_count),
        cache_hit_rate=hits / max(1, hits + misses),
        evidence_bytes_per_packet=total_evidence_bytes / max(1, packet_count),
        ra_cost_per_packet=total_cost / max(1, packet_count),
    )


def sweep(
    details: Optional[Sequence[DetailLevel]] = None,
    compositions: Optional[Sequence[CompositionMode]] = None,
    samplings: Optional[Sequence[SamplingSpec]] = None,
    packet_count: int = 50,
    switch_count: int = 3,
) -> List[SweepResult]:
    """Run the full (or a restricted) Fig. 4 grid."""
    details = list(details or DetailLevel)
    compositions = list(compositions or CompositionMode)
    samplings = list(samplings or [SamplingSpec()])
    results: List[SweepResult] = []
    for detail, composition, sampling in itertools.product(
        details, compositions, samplings
    ):
        config = EvidenceConfig(
            detail=detail, composition=composition, sampling=sampling
        )
        results.append(
            run_design_point(
                config, packet_count=packet_count, switch_count=switch_count
            )
        )
    return results


def format_table(results: Iterable[SweepResult]) -> str:
    """Render sweep results as an aligned text table."""
    rows = [result.row() for result in results]
    if not rows:
        return "(no results)"
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(str(row[h])) for row in rows)) for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
