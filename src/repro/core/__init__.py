"""Network-aware Copland: the paper's primary contribution (§5).

Copland extended with three NetKAT-derived primitives:

- **Prim1, path abstraction** (``*⇒``): the phrase left of the operator
  holds for zero or more hops along the traffic path.
- **Prim2, place abstraction** (``∀``): policies quantify over places
  instead of naming them, because "the identities of intermediate hops
  along a path might not be known".
- **Prim3, reachability** (``▶``): a NetKAT Boolean test guards a
  phrase — test first to "fail early", and attest the test's outcome.

Modules:

- :mod:`repro.core.hybrid_ast` / :mod:`repro.core.hybrid_parser` — the
  extended language.
- :mod:`repro.core.policies` — Table 1's AP1-AP3 ready-made.
- :mod:`repro.core.compiler` — instantiate a policy over a concrete
  path and serialize it into the RA options header (§5.2).
- :mod:`repro.core.wire` — the TLV wire format for compiled policies.
- :mod:`repro.core.raswitch` — a PERA switch that interprets compiled
  policies arriving in-band.
- :mod:`repro.core.appraisal` — path-evidence appraisal: signatures,
  reference values, chain replay, stripping detection, and the NetKAT
  path constraint.
- :mod:`repro.core.design_space` — Fig. 4 sweep helpers.
- :mod:`repro.core.usecases` — UC1-UC5 scenario builders.
"""

from repro.core.hybrid_ast import (
    Forall,
    PathStar,
    Guard,
    HybridPolicy,
)
from repro.core.hybrid_parser import parse_hybrid_policy
from repro.core.policies import ap1_bank_path_attestation, ap2_scanner_audit, ap3_path_check
from repro.core.compiler import CompiledPolicy, HopDirective, compile_policy_for_path
from repro.core.wire import encode_compiled_policy, decode_compiled_policy
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.appraisal import PathAppraiser, PathAppraisalPolicy, PathVerdict
from repro.core.redaction import RedactedEvidence, redact
from repro.core.relying_party import RelyingParty

__all__ = [
    "Forall",
    "PathStar",
    "Guard",
    "HybridPolicy",
    "parse_hybrid_policy",
    "ap1_bank_path_attestation",
    "ap2_scanner_audit",
    "ap3_path_check",
    "CompiledPolicy",
    "HopDirective",
    "compile_policy_for_path",
    "encode_compiled_policy",
    "decode_compiled_policy",
    "NetworkAwarePeraSwitch",
    "PathAppraiser",
    "PathAppraisalPolicy",
    "PathVerdict",
    "RedactedEvidence",
    "redact",
    "RelyingParty",
]
