"""A PERA switch that interprets compiled policies arriving in-band.

This closes the §5.2 loop: the relying party compiles a hybrid policy
into the RA options header; every :class:`NetworkAwarePeraSwitch` on
the path decodes it, evaluates the ▶ test against its local state
("fail early and avoid the attestation effort"), and — when the test
holds — attests at the policy's requested detail/composition, pushing
evidence in-band or diverting it out-of-band to the appraiser the
policy names.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.compiler import CompiledPolicy, HopDirective
from repro.core.wire import decode_compiled_policy
from repro.netkat.ast import Predicate, Value
from repro.netkat.parser import parse_predicate
from repro.netkat.semantics import NkPacket, eval_predicate
from repro.pera.config import EvidenceConfig
from repro.pera.records import HopRecord
from repro.pera.switch import PeraSwitch
from repro.pisa.pipeline import DROP_PORT, PacketContext
from repro.telemetry.audit import AuditKind


class NetworkAwarePeraSwitch(PeraSwitch):
    """PERA + the hybrid-policy interpreter."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Extra facts the ▶ tests may reference (e.g. AP2's pattern
        # flag); table hits are added automatically per packet.
        self.test_env: Dict[str, Value] = {}
        self.tests_evaluated = 0
        self.tests_failed = 0
        self.policies_seen: Dict[str, int] = {}
        self._predicate_cache: Dict[str, Predicate] = {}

    # --- the ▶ test -----------------------------------------------------------

    def _test_packet_fields(self, ctx: PacketContext) -> NkPacket:
        """The evaluation environment for guard predicates."""
        fields: Dict[str, Value] = {
            "switch": self.name,
            "port": ctx.ingress_port,
            "attests": 1,
        }
        for name, value in ctx.fields.items():
            fields[name] = value
        for entry in ctx.trace:
            table, _, outcome = entry.partition(":")
            if outcome.startswith("hit"):
                fields[f"hit_{table}"] = 1
        fields.update(self.test_env)
        return NkPacket(fields)

    def evaluate_test(self, test_text: str, ctx: PacketContext) -> bool:
        """Evaluate a serialized ▶ predicate against this hop."""
        if not test_text:
            return True
        predicate = self._predicate_cache.get(test_text)
        if predicate is None:
            predicate = parse_predicate(test_text)
            self._predicate_cache[test_text] = predicate
        self.tests_evaluated += 1
        outcome = eval_predicate(predicate, self._test_packet_fields(ctx))
        if not outcome:
            self.tests_failed += 1
        return outcome

    # --- packet path ------------------------------------------------------------

    def process_context(self, ctx: PacketContext) -> PacketContext:
        packet = ctx.packet
        compiled: Optional[CompiledPolicy] = None
        if packet is not None and packet.ra_shim is not None:
            compiled = decode_compiled_policy(packet.ra_shim.body)
        if compiled is None:
            return super().process_context(ctx)
        return self._process_with_policy(ctx, compiled)

    def _process_with_policy(
        self, ctx: PacketContext, compiled: CompiledPolicy
    ) -> PacketContext:
        # Run the ordinary pipeline first (forwarding decision).
        ctx = PeraSwitch.__mro__[1].process_context(self, ctx)  # PisaSwitch
        if ctx.egress_spec == DROP_PORT:
            return ctx
        packet = ctx.packet
        if packet is None or packet.ra_shim is None:
            return ctx
        self.policies_seen[compiled.policy_id] = (
            self.policies_seen.get(compiled.policy_id, 0) + 1
        )
        tel = self.telemetry
        trace = packet.trace
        records = self.inspect_evidence(packet)
        if tel.active and records:
            tel.audit_event(
                AuditKind.EVIDENCE_INSPECTED,
                self.name,
                trace=trace,
                records=len(records),
                digest=records[-1].content_digest,
            )
        if self.evidence_gate is not None and not self.evidence_gate(ctx, records):
            self.ra_stats.gated_drops += 1
            if tel.active:
                tel.audit_event(
                    AuditKind.GATE_DROPPED,
                    self.name,
                    trace=trace,
                    records=len(records),
                )
            ctx.egress_spec = DROP_PORT
            return ctx
        directive = compiled.hop
        if not self.evaluate_test(directive.test_text, ctx):
            # Fail early: no attestation effort, but the hop still
            # counts itself so the appraiser sees path coverage.
            if tel.active:
                tel.audit_event(
                    AuditKind.POLICY_TEST_FAILED,
                    self.name,
                    trace=trace,
                    policy=compiled.policy_id,
                    test=directive.test_text,
                )
            ctx.packet = packet.with_shim(packet.ra_shim.with_hop())
            return ctx
        now = self.sim.clock.now if self.sim is not None else 0.0
        if not self.sampler.should_attest(now, packet.five_tuple):
            self.ra_stats.packets_skipped_by_sampling += 1
            ctx.packet = packet.with_shim(packet.ra_shim.with_hop())
            return ctx
        record = self._produce_with_directive(ctx, records, directive)
        self.ra_stats.packets_attested += 1
        if self.config.batching is not None and not record.signature:
            self._enqueue_batched(
                ctx,
                record,
                trace,
                oob=bool(directive.out_of_band_to),
                oob_target=directive.out_of_band_to or None,
            )
            return ctx
        if directive.out_of_band_to:
            previous_target = self.appraiser_node
            self.appraiser_node = directive.out_of_band_to
            try:
                self._send_out_of_band(record, trace=trace)
            finally:
                self.appraiser_node = previous_target
            ctx.packet = packet.with_shim(packet.ra_shim.with_hop())
        else:
            ctx.packet = self._push_in_band(packet, record)
            if self.mirror_out_of_band and self.appraiser_node is not None:
                self._send_out_of_band(record, trace=trace)
        return ctx

    def _produce_with_directive(
        self,
        ctx: PacketContext,
        prior_records: List[HopRecord],
        directive: HopDirective,
    ) -> HopRecord:
        """Produce a record at the policy's requested design point."""
        requested = EvidenceConfig(
            detail=directive.detail,
            composition=directive.composition,
            sampling=self.config.sampling,
            cache_ttls=self.config.cache_ttls,
            use_pseudonyms=self.config.use_pseudonyms,
            batching=self.config.batching,
        )
        previous_config = self.config
        self.config = requested
        try:
            return self._produce_record(ctx, prior_records)
        finally:
            self.config = previous_config
