"""Concrete syntax for network-aware Copland.

ASCII renderings of the paper's typeset operators::

    ∀ p, q : C      →   forall p, q : C
    K ▶ C           →   { <netkat predicate> } |> C
    A *⇒ B          →   A *=> B
    A -+> B         →   A -+> B   (sequenced, evidence passes to B)

Everything inside ``@place [ ... ]`` that is not a hybrid operator is
parsed as a plain Copland phrase, so AP1 from Table 1 reads::

    *bank<n, X> :
      forall hop, client :
        (@hop [ {switch = hop} |> attest(X) -> !]
          -+> @Appraiser [appraise -> store(n)])
        *=> @client [ {switch = client} |>
              (@ks [av us bmon -> !] -<- @us [bmon us exts -> !]) ]

Grammar::

    policy   ::= "*" IDENT ("<" ident-list ">")? ":" node
    node     ::= "forall" ident-list ":" node | pathstar
    pathstar ::= seqnode ("*=>" seqnode)*
    seqnode  ::= guarded ("-+>" guarded)*
    guarded  ::= "{" netkat-predicate "}" "|>" guarded
               | "@" IDENT "[" node "]"
               | "(" node ")"
               | <copland phrase atom sequence>
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.copland.parser import parse_phrase
from repro.core.hybrid_ast import (
    Embedded,
    Forall,
    Guard,
    HybridAt,
    HybridNode,
    HybridPolicy,
    HybridSeq,
    PathStar,
)
from repro.netkat.parser import parse_predicate
from repro.util.errors import PolicyError

_STAR_ARROW = "*=>"
_SEQ_ARROW = "-+>"
_GUARD_ARROW = "|>"


def parse_hybrid_policy(text: str, name: str = "") -> HybridPolicy:
    """Parse a complete ``*RP<params> : body`` hybrid policy."""
    parser = _HybridParser(text)
    return parser.policy(name=name)


class _HybridParser:
    """A lightweight splitter-based parser.

    The hybrid layer has few operators; this parser finds them at
    bracket depth zero and delegates bracketed leaves to the Copland
    and NetKAT parsers. That keeps all three concrete syntaxes exactly
    aligned with their standalone forms.
    """

    def __init__(self, text: str) -> None:
        self._text = text.strip()

    # --- top level -----------------------------------------------------------

    def policy(self, name: str) -> HybridPolicy:
        text = self._text
        if not text.startswith("*"):
            raise PolicyError("hybrid policy must start with '*RP : ...'")
        head, sep, body = text[1:].partition(":")
        if not sep:
            raise PolicyError("hybrid policy missing ':' after relying party")
        head = head.strip()
        params: Tuple[str, ...] = ()
        match = re.match(r"^([A-Za-z_][\w.\-]*)\s*(?:<([^>]*)>)?$", head)
        if match is None:
            raise PolicyError(f"malformed relying-party head {head!r}")
        relying_party = match.group(1)
        if match.group(2):
            params = tuple(
                p.strip() for p in match.group(2).split(",") if p.strip()
            )
        return HybridPolicy(
            name=name or relying_party,
            relying_party=relying_party,
            params=params,
            body=_parse_node(body.strip()),
        )


def _strip_outer_parens(text: str) -> str:
    text = text.strip()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        for index, char in enumerate(text):
            if char in "([{":
                depth += 1
            elif char in ")]}":
                depth -= 1
                if depth == 0 and index != len(text) - 1:
                    return text  # outer parens do not wrap the whole
        text = text[1:-1].strip()
    return text


def _split_top(text: str, operator: str) -> List[str]:
    """Split ``text`` on ``operator`` occurrences at bracket depth 0."""
    parts: List[str] = []
    depth = 0
    start = 0
    index = 0
    while index < len(text):
        char = text[index]
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth < 0:
                raise PolicyError(f"unbalanced brackets in {text!r}")
        elif depth == 0 and text.startswith(operator, index):
            parts.append(text[start:index])
            index += len(operator)
            start = index
            continue
        index += 1
    if depth != 0:
        raise PolicyError(f"unbalanced brackets in {text!r}")
    parts.append(text[start:])
    return parts


def _parse_node(text: str) -> HybridNode:
    text = _strip_outer_parens(text)
    if not text:
        raise PolicyError("empty hybrid node")
    # forall binds loosest.
    match = re.match(r"^forall\s+([^:]+):(.*)$", text, re.DOTALL)
    if match is not None:
        variables = tuple(
            v.strip() for v in match.group(1).split(",") if v.strip()
        )
        return Forall(variables=variables, body=_parse_node(match.group(2)))
    # Then *=> (right-associated chain).
    star_parts = _split_top(text, _STAR_ARROW)
    if len(star_parts) > 1:
        node = _parse_seq(star_parts[-1])
        for part in reversed(star_parts[:-1]):
            node = PathStar(per_hop=_parse_seq(part), terminal=node)
        return node
    return _parse_seq(text)


def _parse_seq(text: str) -> HybridNode:
    text = _strip_outer_parens(text)
    parts = _split_top(text, _SEQ_ARROW)
    node = _parse_guarded(parts[0])
    for part in parts[1:]:
        node = HybridSeq(left=node, right=_parse_guarded(part))
    return node


def _parse_guarded(text: str) -> HybridNode:
    text = _strip_outer_parens(text)
    if not text:
        raise PolicyError("empty hybrid node")
    if text.startswith("{"):
        depth = 0
        for index, char in enumerate(text):
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    predicate = parse_predicate(text[1:index])
                    rest = text[index + 1 :].lstrip()
                    if not rest.startswith(_GUARD_ARROW):
                        raise PolicyError(
                            f"expected '|>' after guard predicate in {text!r}"
                        )
                    body = rest[len(_GUARD_ARROW) :].strip()
                    return Guard(test=predicate, body=_parse_guarded(body))
        raise PolicyError(f"unterminated guard predicate in {text!r}")
    if text.startswith("@"):
        match = re.match(r"^@([A-Za-z_][\w.\-]*)\s*\[(.*)\]$", text, re.DOTALL)
        if match is not None and _balanced(match.group(2)):
            inner = match.group(2).strip()
            if _contains_hybrid_operator(inner):
                return HybridAt(place=match.group(1), body=_parse_node(inner))
            # Plain Copland inside: keep the @place wrapper in Copland.
            return Embedded(phrase=parse_phrase(text))
    if _contains_hybrid_operator(text):
        raise PolicyError(f"misplaced hybrid operator in {text!r}")
    return Embedded(phrase=parse_phrase(text))


def _balanced(text: str) -> bool:
    depth = 0
    for char in text:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


def _contains_hybrid_operator(text: str) -> bool:
    depth = 0
    index = 0
    while index < len(text):
        char = text[index]
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        elif depth == 0:
            for operator in (_STAR_ARROW, _SEQ_ARROW, _GUARD_ARROW):
                if text.startswith(operator, index):
                    return True
            if text.startswith("forall ", index):
                return True
        index += 1
    return False
